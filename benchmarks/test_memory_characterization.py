"""[GJTV91]-style memory-system characterization (Section 4.1 anchors)."""

import pytest

from repro.experiments.characterization import (
    render_characterization,
    run_characterization,
)


def test_memory_characterization(benchmark, artifact):
    c = benchmark.pedantic(run_characterization, rounds=1, iterations=1)
    artifact("memory_characterization", render_characterization(c))

    # "Minimal Latency is 8 cycles and minimal Interarrival time is 1
    # cycle"
    assert c.unloaded_latency_cycles == pytest.approx(8.0, abs=0.3)
    assert c.unloaded_interarrival_cycles == pytest.approx(1.0, abs=0.1)

    # "The cycles needed to move data between the CE and prefetch
    # buffer complete the 13 cycle latency"
    assert c.ce_observed_latency_cycles == pytest.approx(13.0, abs=0.5)

    # GM/no-pref: two outstanding requests per 13-cycle round trip
    assert c.nopref_cycles_per_word == pytest.approx(6.5, rel=0.1)

    # "The peak global memory bandwidth is 768 MB/sec"
    assert c.peak_bandwidth_mb_s == pytest.approx(768.0, rel=0.05)

    # sustained bandwidth sits below nominal peak (the [Turn93]
    # implementation constraints) but above half of it
    assert 0.45 * c.peak_bandwidth_mb_s < c.sustained_bandwidth_mb_s
    assert c.sustained_bandwidth_mb_s < c.peak_bandwidth_mb_s
