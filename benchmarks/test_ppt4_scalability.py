"""PPT4: CG scalability on Cedar; banded matvec on the CM-5."""

import pytest

from repro.experiments.ppt4 import (
    CEDAR_SIZES,
    CedarCGModel,
    cedar_high_performance_crossover,
    render_ppt4,
    run_ppt4,
)
from repro.metrics.bands import Band


@pytest.fixture(scope="module")
def study():
    return run_ppt4()


def test_ppt4_scalability(benchmark, artifact, study):
    benchmark.pedantic(lambda: study, rounds=1, iterations=1)
    artifact("ppt4_scalability", render_ppt4(study))

    # "Cedar exhibits scalable high performance for matrices larger
    # than something between 10K and 16K, and on up to the largest
    # problems run"
    for n in (16_384, 65_536, 176_128):
        for p in (2, 4, 8, 16, 32):
            assert study.cedar.grid[(p, n)] is Band.HIGH, (p, n)

    # "scalable intermediate performance for smaller matrices";
    # "No unacceptable performance was observed"
    assert study.cedar.grid[(32, 1024)] is Band.INTERMEDIATE
    assert all(b is not Band.UNACCEPTABLE for b in study.cedar.grid.values())

    # "The 32-processor Cedar delivers between 34 and 48 MFLOPS as the
    # CG problem size ranges from 10K to 172K"
    rates = [study.cedar_mflops_32[n] for n in CEDAR_SIZES if n >= 10_000]
    assert min(rates) == pytest.approx(34.0, rel=0.4)
    assert max(rates) == pytest.approx(48.0, rel=0.25)

    # CM-5: "scalable with intermediate performance", never high, never
    # unacceptable, for both bandwidths and all processor counts
    for bw, result in study.cm5.items():
        assert all(b is Band.INTERMEDIATE for b in result.grid.values()), bw

    # CM-5 32-processor rates match [FWPS92]
    assert study.cm5_mflops_32[(3, 16_384)] == pytest.approx(28.0, rel=0.1)
    assert study.cm5_mflops_32[(3, 262_144)] == pytest.approx(32.0, rel=0.1)
    assert study.cm5_mflops_32[(11, 16_384)] == pytest.approx(58.0, rel=0.1)
    assert study.cm5_mflops_32[(11, 262_144)] == pytest.approx(67.0, rel=0.1)


def test_ppt4_crossover_location(benchmark):
    """The high-performance crossover lies near the paper's 10K-16K
    bracket."""
    n = benchmark.pedantic(cedar_high_performance_crossover, rounds=1, iterations=1)
    assert 4_000 <= n <= 20_000


def test_ppt4_per_processor_parity_with_cm5(study):
    """"the per-processor MFLOPS of the two systems on these problems
    are roughly equivalent": Cedar ~1.1-1.7, CM-5 ~0.9-2.1."""
    cedar_pp = study.cedar_mflops_32[65_536] / 32
    cm5_pp = study.cm5_mflops_32[(11, 65_536)] / 32
    assert cedar_pp == pytest.approx(cm5_pp, rel=0.8)


def test_ppt4_stability_within_size_range(study):
    """PPT4's acceptance also requires size-stability (factor <= 2)
    at each processor count for the large-problem regime."""
    cg = CedarCGModel()
    rates = [cg.mflops(n, 32) for n in CEDAR_SIZES if n >= 10_000]
    assert max(rates) / min(rates) <= 2.0
