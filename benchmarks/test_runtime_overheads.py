"""Section 3.2: runtime-library scheduling overheads."""

import pytest

from repro.experiments.overheads import (
    nest_comparison_us,
    render_overheads,
    run_overheads,
)


def test_runtime_overheads(benchmark, artifact):
    rows = benchmark.pedantic(run_overheads, rounds=1, iterations=1)
    artifact("runtime_overheads", render_overheads(rows))
    by_name = {r.construct: r for r in rows}

    # "a typical loop startup latency of 90 us and fetching the next
    # iteration takes about 30 us"
    assert by_name["XDOALL"].startup_us == pytest.approx(90.0)
    assert by_name["XDOALL"].per_iteration_us == pytest.approx(30.0)

    # "The CDOALL ... can typically start in a few microseconds"
    assert by_name["CDOALL"].startup_us <= 5.0
    assert by_name["CDOALL"].per_iteration_us < 1.0


def test_sdoall_cdoall_nest_beats_xdoall(benchmark):
    """Paper: "An SDOALL/CDOALL nest has a lower scheduling cost due
    to the use of the concurrency control bus"."""
    xdoall_us, nest_us = benchmark.pedantic(
        nest_comparison_us, args=(256, 20.0), rounds=1, iterations=1
    )
    assert nest_us < xdoall_us


def test_xdoall_overhead_dominates_fine_grains(benchmark):
    """The flip side: for a single-wave fine-grain loop, scheduling
    overhead dominates wall time for both constructs (the nest's
    advantage only appears across multiple waves — see above)."""
    xdoall_us, nest_us = benchmark.pedantic(
        nest_comparison_us, args=(32, 1.0), rounds=1, iterations=1
    )
    assert xdoall_us > 100.0  # startup + fetch >> 32 x 1us of work
    assert nest_us == pytest.approx(xdoall_us, rel=0.1)
