"""Table 3: the Perfect Benchmarks on Cedar, four versions per code."""

import pytest

from repro.experiments.table3 import render_table3, run_table3
from repro.perfect.profiles import PAPER_TABLE3


@pytest.fixture(scope="module")
def rows():
    return run_table3()


def test_table3_perfect(benchmark, artifact, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    artifact("table3_perfect", render_table3(rows))
    for row in rows:
        ref = PAPER_TABLE3[row.code]
        # execution times within 10% of the published measurements
        assert row.kap_time == pytest.approx(ref.kap_time, rel=0.10), row.code
        if ref.auto_time is None:
            continue
        assert row.auto_time == pytest.approx(ref.auto_time, rel=0.10), row.code
        # ablations within a few percentage points of the published
        # slowdowns (both are fractions of the automatable time)
        assert row.no_sync_slowdown == pytest.approx(
            ref.no_sync_slowdown, abs=0.05
        ), row.code
        assert row.no_prefetch_slowdown == pytest.approx(
            ref.no_prefetch_slowdown, abs=0.08
        ), row.code
        assert row.mflops == pytest.approx(ref.mflops, rel=0.10), row.code


def test_table3_compiler_gap(rows):
    """The headline of Section 3.3: the original KAP leaves most codes
    nearly serial; the automatable transforms unlock order-of-magnitude
    improvements on most of the suite."""
    weak_kap = [r for r in rows if r.kap_improvement < 2.5]
    strong_auto = [
        r for r in rows if r.auto_improvement and r.auto_improvement > 8.0
    ]
    assert len(weak_kap) >= 7
    assert len(strong_auto) >= 9


def test_table3_sync_sensitivity_is_granularity_driven(rows):
    """DYFESM and OCEAN (fine-grain loops) lose the most without the
    synchronization hardware; TRFD and MG3D (coarse loops) nothing."""
    by_code = {r.code: r for r in rows}
    assert by_code["DYFESM"].no_sync_slowdown > 0.08
    assert by_code["OCEAN"].no_sync_slowdown > 0.10
    assert by_code["TRFD"].no_sync_slowdown < 0.02
    assert by_code["MG3D"].no_sync_slowdown < 0.02
