"""CI memory gate: streaming observability must stay flat in requests.

Runs the registered soak flood twice under :mod:`tracemalloc` — once at
the small request count, once at 10x–∞ that — with the streaming span
store attached **and a metric timeline sampling at the default
interval**, and fails if the large run's peak allocation exceeds
``RATIO`` times the small run's.  A buffered collector retains one span
per request, so its peak scales linearly and trips the gate immediately;
the streaming store folds each request into sketch state of constant
size, and the timeline coalesces intervals by powers of two, so both
peaks are dominated by the machine itself and the ratio stays near 1.
The timeline rides inside the measured window on purpose: a regression
that made interval storage grow with run length would trip this gate,
not just slow the chart down.

A short untraced warmup run is taken first so one-time allocations
(imports, the packet pool, code caches) are paid before either
measurement starts — otherwise they inflate whichever run goes first.

Usage::

    python benchmarks/memory_gate.py              # 100k vs 1M requests
    python benchmarks/memory_gate.py --fast       # 10k vs 100k (smoke)

Exit status 0 iff the gate holds and both runs completed un-aborted.
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc

#: the large run's tracemalloc peak may be at most this multiple of the
#: small run's (the acceptance bound for the streaming path).
RATIO = 1.2

SMALL = 100_000
LARGE = 1_000_000
WARMUP = 2_000


def measured_soak(requests: int, seed: int = 7):
    """One streaming soak flood under tracemalloc; returns the
    :class:`~repro.experiments.soak.SoakResult`, the peak traced
    allocation in bytes, and the timeline document sampled during the
    run (its interval count must stay bounded at any run length)."""
    from repro.experiments.soak import run_soak
    from repro.monitor.timeline import TimelineRecorder

    tracemalloc.start()
    try:
        with TimelineRecorder() as recorder:
            result = run_soak(requests=requests, seed=seed, stream=True)
        (timeline,) = recorder.documents()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak, timeline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small", type=int, default=SMALL)
    parser.add_argument("--large", type=int, default=LARGE)
    parser.add_argument("--ratio", type=float, default=RATIO)
    parser.add_argument(
        "--fast", action="store_true",
        help="10k vs 100k requests (a smoke run, same invariant)",
    )
    args = parser.parse_args(argv)
    small_n, large_n = args.small, args.large
    if args.fast:
        small_n, large_n = 10_000, 100_000

    from repro.experiments.soak import run_soak

    run_soak(requests=WARMUP, stream=True)  # pay one-time allocations

    from repro.monitor.timeline import MAX_INTERVALS, validate_timeline

    failures = []
    peaks = {}
    for label, requests in (("small", small_n), ("large", large_n)):
        result, peak, timeline = measured_soak(requests)
        peaks[label] = peak
        print(
            f"memory-gate: {label} run {requests:,} requests -> "
            f"{result.traced:,} traced, peak {peak / 1e6:.1f} MB, "
            f"{result.footprint_items:,} resident traced items, "
            f"{timeline['intervals']} timeline intervals x "
            f"{timeline['interval_cycles']:g} cycles "
            f"({timeline['coalesces']} coalesces)"
        )
        if result.aborted:
            failures.append(f"{label} run aborted (watchdog)")
        if result.traced < requests * 0.99:
            failures.append(
                f"{label} run traced only {result.traced:,} of "
                f"{requests:,} requests"
            )
        validate_timeline(timeline)
        if not 0 < timeline["intervals"] <= MAX_INTERVALS:
            failures.append(
                f"{label} run timeline holds {timeline['intervals']} "
                f"intervals (bound {MAX_INTERVALS}): coalescing is not "
                f"keeping interval storage flat"
            )

    ratio = peaks["large"] / peaks["small"]
    print(
        f"memory-gate: peak ratio {ratio:.3f} at {large_n // small_n}x the "
        f"requests (bound {args.ratio}x)"
    )
    if ratio > args.ratio:
        failures.append(
            f"peak allocation grew {ratio:.3f}x from {small_n:,} to "
            f"{large_n:,} requests (bound {args.ratio}x): the tracing "
            f"path is not flat in request count"
        )
    for failure in failures:
        print(f"memory-gate: FAIL: {failure}")
    if not failures:
        print(
            "memory-gate: OK (streaming observability and timeline "
            "sampling are flat in requests)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
