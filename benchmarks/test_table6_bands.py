"""Table 6: restructuring-efficiency band census, Cedar vs Cray YMP."""

from repro.experiments.table6 import PAPER_TABLE6, render_table6, run_table6


def test_table6_bands(benchmark, artifact):
    result = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    artifact("table6_bands", render_table6(result))

    cedar = result.cedar.counts
    ymp = result.ymp.counts

    # YMP census matches the paper exactly: 0 high, 6 intermediate,
    # 7 unacceptable
    assert ymp == PAPER_TABLE6["Cray YMP"]

    # Cedar: exactly one high code (TRFD), the bulk intermediate, and
    # the scalar codes unacceptable (paper: 1 / 9 / 3; model: 1 / 10 / 2)
    assert cedar[0] == PAPER_TABLE6["Cedar"][0]
    assert result.cedar.high == ["TRFD"]
    assert abs(cedar[1] - PAPER_TABLE6["Cedar"][1]) <= 1
    assert abs(cedar[2] - PAPER_TABLE6["Cedar"][2]) <= 1
    assert set(result.cedar.unacceptable) <= {"QCD", "SPICE", "TRACK", "BDNA"}

    # the conclusion the paper draws: Cedar's restructured codes sit
    # mostly at acceptable levels, the YMP's mostly below
    assert cedar[0] + cedar[1] > cedar[2]
    assert ymp[2] > ymp[0] + ymp[1] - 1
