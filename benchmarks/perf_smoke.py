"""CI perf smoke: the engine's self-metered throughput vs the baseline.

Runs the same 64-chain / 20k-event drain as the pytest-benchmark suite,
but measures it with the engine's own self-metrics (events dispatched
and wall time inside the run loop) instead of pytest-benchmark, so it
needs no plugins and finishes in well under a second.

The realized events/sec is compared against the archived
``engine_event_throughput`` rate in ``benchmarks/output/BENCH_engine.json``
with a generous 3x tolerance — shared CI runners are noisy; this guards
against order-of-magnitude regressions (an accidentally-hot monitoring
path, a lost fast path), not percent-level drift.

Usage: ``python benchmarks/perf_smoke.py`` (exit 0 = within tolerance).
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_JSON = pathlib.Path(__file__).parent / "output" / "BENCH_engine.json"

#: a smoke run on a noisy shared runner may be this much slower than the
#: archived baseline before we call it a regression.
TOLERANCE = 3.0

EVENTS = 20_000
CHAINS = 64


def measured_events_per_sec() -> float:
    from repro.core.engine import Engine

    engine = Engine()
    count = {"n": 0}

    def tick():
        if count["n"] < EVENTS:
            count["n"] += 1
            engine.schedule_after(1.0, tick)

    for worker in range(CHAINS):
        engine.schedule(worker / CHAINS, tick)
    engine.run()
    metrics = engine.self_metrics()
    assert metrics["events_processed"] == EVENTS + CHAINS
    return metrics["events_per_sec"]


def main() -> int:
    try:
        baseline = json.loads(BENCH_JSON.read_text())
        baseline_rate = float(baseline["engine_event_throughput"]["rate"])
    except (OSError, ValueError, KeyError):
        print(f"perf-smoke: no baseline in {BENCH_JSON}; skipping comparison")
        rate = max(measured_events_per_sec() for _ in range(3))
        print(f"perf-smoke: measured {rate:,.0f} events/s")
        return 0

    # best of three: absorbs one-off scheduler hiccups on shared runners
    rate = max(measured_events_per_sec() for _ in range(3))
    floor = baseline_rate / TOLERANCE
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"perf-smoke: {rate:,.0f} events/s vs baseline "
        f"{baseline_rate:,.0f} (floor {floor:,.0f}, tolerance {TOLERANCE}x): "
        f"{verdict}"
    )
    return 0 if rate >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
