"""CI perf smoke: the engine's self-metered throughput vs the baseline,
plus the simulator-level perf trajectory with span-collection overhead.

Part one runs the same 64-chain / 20k-event drain as the
pytest-benchmark suite, but measures it with the engine's own
self-metrics (events dispatched and wall time inside the run loop)
instead of pytest-benchmark, so it needs no plugins and finishes in
well under a second.  The realized events/sec is compared against the
archived ``engine_event_throughput`` rate in
``benchmarks/output/BENCH_engine.json`` with a generous 3x tolerance —
shared CI runners are noisy; this guards against order-of-magnitude
regressions (an accidentally-hot monitoring path, a lost fast path),
not percent-level drift.

Part two runs a small whole-machine kernel simulation twice — bare and
with a :class:`~repro.monitor.spans.SpanCollector` attached — and
appends one trajectory point (realized simulator events/sec and the
span-collection wall-clock overhead percentage) to ``BENCH_sim.json``
at the repository root.  The two runs must report *identical* simulated
cycles (the zero-cost contract); a mismatch fails the smoke.

Usage: ``python benchmarks/perf_smoke.py`` (exit 0 = within tolerance).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

BENCH_JSON = pathlib.Path(__file__).parent / "output" / "BENCH_engine.json"

#: simulator perf trajectory at the repo root, one point appended per run.
BENCH_SIM_JSON = pathlib.Path(__file__).parent.parent / "BENCH_sim.json"

#: trajectory length cap: drop the oldest points past this.
SIM_HISTORY = 200

#: a smoke run on a noisy shared runner may be this much slower than the
#: archived baseline before we call it a regression.
TOLERANCE = 3.0

EVENTS = 20_000
CHAINS = 64

#: sim-trajectory workload: CEs running the CG kernel, strip-mined.
SIM_CES = 8
SIM_STRIPS = 4


def measured_events_per_sec() -> float:
    from repro.core.engine import Engine

    engine = Engine()
    count = {"n": 0}

    def tick():
        if count["n"] < EVENTS:
            count["n"] += 1
            engine.schedule_after(1.0, tick)

    for worker in range(CHAINS):
        engine.schedule(worker / CHAINS, tick)
    engine.run()
    metrics = engine.self_metrics()
    assert metrics["events_processed"] == EVENTS + CHAINS
    return metrics["events_per_sec"]


def sim_measurement(with_spans: bool):
    """One whole-machine kernel run; returns (sim cycles, events/sec,
    requests traced)."""
    from repro.core.config import CedarConfig
    from repro.core.machine import CedarMachine
    from repro.kernels.programs import KERNELS, kernel_program
    from repro.monitor.spans import SpanCollector

    machine = CedarMachine(CedarConfig())
    collector = SpanCollector().attach(machine.bus) if with_spans else None
    programs = {
        port: kernel_program(KERNELS["CG"], port, SIM_STRIPS, prefetch=True)
        for port in range(SIM_CES)
    }
    cycles = machine.run_programs(programs)
    metrics = machine.engine.self_metrics()
    traced = collector.completed if collector is not None else 0
    if collector is not None:
        collector.detach()
    return cycles, float(metrics["events_per_sec"]), traced


def append_sim_point() -> dict:
    """Measure the sim trajectory point and append it to BENCH_sim.json.

    Raises ``RuntimeError`` if the traced run's simulated cycles differ
    from the bare run's (a zero-cost violation).
    """
    # best of three on both sides: shared-runner noise, not regressions
    bare = max(sim_measurement(False) for _ in range(3))
    traced = max(sim_measurement(True) for _ in range(3))
    if traced[0] != bare[0]:
        raise RuntimeError(
            f"span collection changed simulated cycles: "
            f"{bare[0]} bare vs {traced[0]} traced"
        )
    overhead = (bare[1] / traced[1] - 1.0) * 100.0 if traced[1] else 0.0
    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": f"CG x{SIM_CES}ces x{SIM_STRIPS}strips",
        "sim_cycles": bare[0],
        "events_per_sec": round(bare[1], 1),
        "events_per_sec_with_spans": round(traced[1], 1),
        "span_overhead_pct": round(overhead, 1),
        "requests_traced": traced[2],
    }
    try:
        doc = json.loads(BENCH_SIM_JSON.read_text())
    except (OSError, ValueError):
        doc = {
            "description": "simulator perf trajectory: one point per "
            "perf-smoke run (bare events/sec and span-collection "
            "overhead %)",
            "points": [],
        }
    doc["points"] = (doc.get("points", []) + [point])[-SIM_HISTORY:]
    BENCH_SIM_JSON.write_text(json.dumps(doc, indent=1) + "\n")
    return point


def main() -> int:
    point = append_sim_point()
    print(
        f"perf-smoke: sim {point['events_per_sec']:,.0f} events/s, "
        f"span overhead {point['span_overhead_pct']:+.1f}% "
        f"({point['requests_traced']} requests traced) -> {BENCH_SIM_JSON.name}"
    )
    try:
        baseline = json.loads(BENCH_JSON.read_text())
        baseline_rate = float(baseline["engine_event_throughput"]["rate"])
    except (OSError, ValueError, KeyError):
        print(f"perf-smoke: no baseline in {BENCH_JSON}; skipping comparison")
        rate = max(measured_events_per_sec() for _ in range(3))
        print(f"perf-smoke: measured {rate:,.0f} events/s")
        return 0

    # best of three: absorbs one-off scheduler hiccups on shared runners
    rate = max(measured_events_per_sec() for _ in range(3))
    floor = baseline_rate / TOLERANCE
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"perf-smoke: {rate:,.0f} events/s vs baseline "
        f"{baseline_rate:,.0f} (floor {floor:,.0f}, tolerance {TOLERANCE}x): "
        f"{verdict}"
    )
    return 0 if rate >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
