"""CI perf smoke: the engine's self-metered throughput vs the baseline,
plus the simulator-level perf trajectory with span-collection overhead.

Part one runs the same 64-chain / 20k-event drain as the
pytest-benchmark suite, but measures it with the engine's own
self-metrics (events dispatched and wall time inside the run loop)
instead of pytest-benchmark, so it needs no plugins and finishes in
well under a second.  The realized events/sec is compared against the
archived ``engine_event_throughput`` rate in
``benchmarks/output/BENCH_engine.json`` with a generous 3x tolerance —
shared CI runners are noisy; this guards against order-of-magnitude
regressions (an accidentally-hot monitoring path, a lost fast path),
not percent-level drift.

Part two runs a small whole-machine kernel simulation in four modes —
bare, with a full :class:`~repro.monitor.spans.SpanCollector`, with
a 1-in-16 :class:`~repro.monitor.sampling.SampledSpanCollector`, and
with a :class:`~repro.monitor.timeline.MetricTimeline` sampling at the
default 64-cycle interval — and appends one trajectory point (bare
events/sec plus full-span, sampled-span and timeline overhead
percentages) to ``BENCH_sim.json`` at the repository root.  Each mode takes the **median of 3 timed runs after a
warmup iteration**, so a point reflects steady-state throughput rather
than first-run noise (imports, packet-pool warm-up).  All modes must
report *identical* simulated cycles (the zero-cost contract); a
mismatch fails the smoke.

Usage: ``python benchmarks/perf_smoke.py`` (exit 0 = within tolerance).
With ``--gate``, additionally enforce the CI perf-gate band: the new
bare rate must stay within 1.5x of the previous ``BENCH_sim.json``
point.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

BENCH_JSON = pathlib.Path(__file__).parent / "output" / "BENCH_engine.json"

#: simulator perf trajectory at the repo root, one point appended per run.
BENCH_SIM_JSON = pathlib.Path(__file__).parent.parent / "BENCH_sim.json"

#: trajectory length cap: drop the oldest points past this.
SIM_HISTORY = 200

#: top-level description written into ``BENCH_sim.json`` — refreshed on
#: every append so the file's self-description tracks the point schema.
BENCH_SIM_DESCRIPTION = (
    "simulator perf trajectory: one point per perf-smoke run (bare "
    "events/sec; full, 1-in-N sampled and timeline collection overhead "
    "%; peak span-tracing bytes)"
)

#: a smoke run on a noisy shared runner may be this much slower than the
#: archived baseline before we call it a regression.
TOLERANCE = 3.0

#: perf-gate band (``--gate``): the new bare rate may be at most this
#: much slower than the previous trajectory point before the gate fails.
SIM_GATE_TOLERANCE = 1.5

#: perf-gate ceiling (``--gate``) on timeline-sampling overhead at the
#: default interval — the time-resolved view must stay near-free.
TIMELINE_GATE_PCT = 5.0

EVENTS = 20_000
CHAINS = 64

#: sim-trajectory workload: CEs running the CG kernel, strip-mined.
SIM_CES = 8
SIM_STRIPS = 4


def measured_events_per_sec() -> float:
    from repro.core.engine import Engine

    engine = Engine()
    count = {"n": 0}

    def tick():
        if count["n"] < EVENTS:
            count["n"] += 1
            engine.schedule_after(1.0, tick)

    for worker in range(CHAINS):
        engine.schedule(worker / CHAINS, tick)
    engine.run()
    metrics = engine.self_metrics()
    assert metrics["events_processed"] == EVENTS + CHAINS
    return metrics["events_per_sec"]


#: sampled-tracing interval measured alongside full tracing.
SIM_SAMPLE_EVERY = 16


def peak_tracing_bytes() -> int:
    """Peak allocation attributable to span collection: one untimed
    tracemalloc run of the trajectory workload with the full collector,
    minus a bare run's peak.  Recorded per trajectory point so span-path
    memory regressions show up in ``BENCH_sim.json`` alongside the
    throughput overhead they usually accompany."""
    import tracemalloc

    peaks = {}
    for mode in ("bare", "spans"):
        tracemalloc.start()
        try:
            sim_measurement(mode)
            _current, peaks[mode] = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return max(peaks["spans"] - peaks["bare"], 0)


#: timeline sampling interval measured alongside span collection (the
#: :data:`repro.monitor.timeline.DEFAULT_INTERVAL_CYCLES` default).
SIM_TIMELINE_INTERVAL = 64.0


def sim_measurement(mode="bare"):
    """One whole-machine kernel run; returns (sim cycles, events/sec,
    requests traced).  ``mode`` is ``"bare"`` (no collector),
    ``"spans"`` (full :class:`SpanCollector`), ``"sampled"``
    (1-in-``SIM_SAMPLE_EVERY`` :class:`SampledSpanCollector`) or
    ``"timeline"`` (a :class:`MetricTimeline` riding the engine pulse
    at the default interval — the bus stays quiescent)."""
    from repro.core.config import CedarConfig
    from repro.core.machine import CedarMachine
    from repro.kernels.programs import KERNELS, kernel_program
    from repro.monitor.sampling import SampledSpanCollector
    from repro.monitor.spans import SpanCollector

    machine = CedarMachine(CedarConfig())
    timeline = None
    if mode == "spans":
        collector = SpanCollector().attach(machine.bus)
    elif mode == "sampled":
        collector = SampledSpanCollector(every=SIM_SAMPLE_EVERY).attach(
            machine.bus
        )
    elif mode == "timeline":
        from repro.monitor.timeline import MetricTimeline, machine_probes

        collector = None
        timeline = MetricTimeline(
            machine_probes(machine.ctx),
            interval_cycles=SIM_TIMELINE_INTERVAL,
        )
        machine.engine.attach_pulse(timeline.pulse)
    else:
        collector = None
    programs = {
        port: kernel_program(KERNELS["CG"], port, SIM_STRIPS, prefetch=True)
        for port in range(SIM_CES)
    }
    cycles = machine.run_programs(programs)
    metrics = machine.engine.self_metrics()
    traced = collector.completed if collector is not None else 0
    if collector is not None:
        collector.detach()
    if timeline is not None:
        machine.engine.detach_pulse()
        timeline.finalize(machine.engine.now)
        if timeline.intervals == 0:
            raise RuntimeError("timeline mode sampled no intervals")
        traced = timeline.intervals
    return cycles, float(metrics["events_per_sec"]), traced


def _median_rates(modes, reps: int = 3):
    """Median events/sec per mode over ``reps`` timed runs each.  The
    modes are **interleaved round-robin** (bare, spans, sampled, bare,
    ...) so slow system windows — frequency scaling, a noisy co-tenant —
    bias every mode equally instead of poisoning whichever mode ran in
    that window; first-run effects (imports, pool warm-up) are absorbed
    by the warmup iteration the caller runs.  All reps of a mode must
    report identical simulated cycles.  Returns ``{mode: (cycles,
    median events/sec, traced)}``."""
    runs = {mode: [] for mode in modes}
    for _ in range(reps):
        for mode in modes:
            runs[mode].append(sim_measurement(mode))
    out = {}
    for mode, measured in runs.items():
        cycles = {r[0] for r in measured}
        if len(cycles) != 1:
            raise RuntimeError(
                f"nondeterministic simulated cycles in {mode} reps: {cycles}"
            )
        rates = sorted(r[1] for r in measured)
        out[mode] = (measured[0][0], rates[len(rates) // 2], measured[0][2])
    return out


def append_sim_point() -> dict:
    """Measure the sim trajectory point and append it to BENCH_sim.json.

    One warmup iteration, then the **median of 3** timed runs per mode,
    modes interleaved (first-run noise used to dominate trajectory
    points when this took the max of cold runs).  Raises
    ``RuntimeError`` if any monitored run's simulated cycles differ
    from the bare run's (a zero-cost violation).
    """
    sim_measurement("bare")  # warmup: imports, packet pool, code caches
    medians = _median_rates(("bare", "spans", "sampled", "timeline"))
    bare = medians["bare"]
    traced = medians["spans"]
    sampled = medians["sampled"]
    timeline = medians["timeline"]
    for label, run in (
        ("spans", traced),
        ("sampled", sampled),
        ("timeline", timeline),
    ):
        if run[0] != bare[0]:
            raise RuntimeError(
                f"{label} collection changed simulated cycles: "
                f"{bare[0]} bare vs {run[0]} {label}"
            )
    overhead = (bare[1] / traced[1] - 1.0) * 100.0 if traced[1] else 0.0
    sampled_overhead = (
        (bare[1] / sampled[1] - 1.0) * 100.0 if sampled[1] else 0.0
    )
    timeline_overhead = (
        (bare[1] / timeline[1] - 1.0) * 100.0 if timeline[1] else 0.0
    )
    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": f"CG x{SIM_CES}ces x{SIM_STRIPS}strips",
        "sim_cycles": bare[0],
        "events_per_sec": round(bare[1], 1),
        "events_per_sec_with_spans": round(traced[1], 1),
        "span_overhead_pct": round(overhead, 1),
        "events_per_sec_sampled": round(sampled[1], 1),
        "sampled_every": SIM_SAMPLE_EVERY,
        "sampled_overhead_pct": round(sampled_overhead, 1),
        "events_per_sec_timeline": round(timeline[1], 1),
        "timeline_interval": SIM_TIMELINE_INTERVAL,
        "timeline_overhead_pct": round(timeline_overhead, 1),
        "requests_traced": traced[2],
        # measured untimed, after the timed reps, so tracemalloc's
        # dispatch cost never touches the throughput numbers above
        "peak_tracing_bytes": peak_tracing_bytes(),
    }
    try:
        doc = json.loads(BENCH_SIM_JSON.read_text())
    except (OSError, ValueError):
        doc = {"description": BENCH_SIM_DESCRIPTION, "points": []}
    doc["description"] = BENCH_SIM_DESCRIPTION
    doc["points"] = (doc.get("points", []) + [point])[-SIM_HISTORY:]
    BENCH_SIM_JSON.write_text(json.dumps(doc, indent=1) + "\n")
    return point


def last_sim_point():
    """The most recent trajectory point, or ``None`` on a fresh tree."""
    try:
        points = json.loads(BENCH_SIM_JSON.read_text()).get("points", [])
        return points[-1] if points else None
    except (OSError, ValueError):
        return None


def gate_against(previous, point) -> list:
    """Perf-gate checks for CI (``--gate``): the new point must stay
    within :data:`SIM_GATE_TOLERANCE` of the previous trajectory point's
    bare rate (shared runners are noisy — this catches structural
    regressions, not percent drift), and timeline sampling at the
    default interval must cost at most :data:`TIMELINE_GATE_PCT` of
    bare throughput.  Returns failure messages."""
    failures = []
    if previous is not None:
        floor = float(previous["events_per_sec"]) / SIM_GATE_TOLERANCE
        if point["events_per_sec"] < floor:
            failures.append(
                f"bare throughput {point['events_per_sec']:,.0f} events/s "
                f"fell below {floor:,.0f} (last point "
                f"{previous['events_per_sec']:,.0f} / "
                f"{SIM_GATE_TOLERANCE}x tolerance)"
            )
    if point.get("timeline_overhead_pct", 0.0) > TIMELINE_GATE_PCT:
        failures.append(
            f"timeline sampling overhead "
            f"{point['timeline_overhead_pct']:+.1f}% exceeds the "
            f"{TIMELINE_GATE_PCT:.0f}% ceiling at the default "
            f"{point.get('timeline_interval', SIM_TIMELINE_INTERVAL):g}-cycle "
            f"interval"
        )
    # zero-cost cycle divergence already raises inside append_sim_point.
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    gate = "--gate" in argv
    previous = last_sim_point()
    point = append_sim_point()
    print(
        f"perf-smoke: sim {point['events_per_sec']:,.0f} events/s, "
        f"span overhead {point['span_overhead_pct']:+.1f}% full / "
        f"{point['sampled_overhead_pct']:+.1f}% sampled 1/"
        f"{point['sampled_every']}, timeline overhead "
        f"{point['timeline_overhead_pct']:+.1f}% at "
        f"{point['timeline_interval']:g} cycles "
        f"({point['requests_traced']} requests traced) -> {BENCH_SIM_JSON.name}"
    )
    if gate:
        failures = gate_against(previous, point)
        for failure in failures:
            print(f"perf-gate: FAIL: {failure}")
        if failures:
            return 1
        print(
            f"perf-gate: OK (within {SIM_GATE_TOLERANCE}x of last point, "
            f"timeline overhead <= {TIMELINE_GATE_PCT:.0f}%, cycles "
            f"identical across bare/spans/sampled/timeline)"
        )
    try:
        baseline = json.loads(BENCH_JSON.read_text())
        baseline_rate = float(baseline["engine_event_throughput"]["rate"])
    except (OSError, ValueError, KeyError):
        print(f"perf-smoke: no baseline in {BENCH_JSON}; skipping comparison")
        rate = max(measured_events_per_sec() for _ in range(3))
        print(f"perf-smoke: measured {rate:,.0f} events/s")
        return 0

    # best of three: absorbs one-off scheduler hiccups on shared runners
    rate = max(measured_events_per_sec() for _ in range(3))
    floor = baseline_rate / TOLERANCE
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"perf-smoke: {rate:,.0f} events/s vs baseline "
        f"{baseline_rate:,.0f} (floor {floor:,.0f}, tolerance {TOLERANCE}x): "
        f"{verdict}"
    )
    return 0 if rate >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
