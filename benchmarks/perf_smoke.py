"""CI perf smoke: the engine's self-metered throughput vs the baseline,
plus the simulator-level perf trajectory with span-collection overhead.

Part one runs the same 64-chain / 20k-event drain as the
pytest-benchmark suite, but measures it with the engine's own
self-metrics (events dispatched and wall time inside the run loop)
instead of pytest-benchmark, so it needs no plugins and finishes in
well under a second.  The realized events/sec is compared against the
archived ``engine_event_throughput`` rate in
``benchmarks/output/BENCH_engine.json`` with a generous 3x tolerance —
shared CI runners are noisy; this guards against order-of-magnitude
regressions (an accidentally-hot monitoring path, a lost fast path),
not percent-level drift.

Part two runs a small whole-machine kernel simulation in four modes —
bare, with a full :class:`~repro.monitor.spans.SpanCollector`, with
a 1-in-16 :class:`~repro.monitor.sampling.SampledSpanCollector`, and
with a :class:`~repro.monitor.timeline.MetricTimeline` sampling at the
default 64-cycle interval — plus the opposite engine drain (scalar when
``CEDAR_BATCHED`` is on, batched otherwise), and appends one trajectory
point (bare events/sec, batched/scalar rates and their ratio, full-span,
sampled-span and timeline overhead percentages clamped at 0, and
inter-rep spread) to ``BENCH_sim.json`` at the repository root.  Gated
modes (bare, timeline, the scalar/batched reference) take the **median
of 5 timed runs after a warmup iteration**; ungated overhead modes take
the median of 3.  All modes must report *identical* simulated cycles
(the zero-cost contract and the batched-identity contract); a mismatch
fails the smoke.

Usage: ``python benchmarks/perf_smoke.py`` (exit 0 = within tolerance).
With ``--gate``, additionally enforce the CI perf-gate bands: the new
bare rate must stay within 1.5x of the previous ``BENCH_sim.json``
point, timeline overhead within 5%, and the batched/scalar ratio above
its floor; when inter-rep spread exceeds the gate band the gate warns
that its verdict is noise-limited (it does not fail on spread alone).
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import sys
import time

BENCH_JSON = pathlib.Path(__file__).parent / "output" / "BENCH_engine.json"

#: simulator perf trajectory at the repo root, one point appended per run.
BENCH_SIM_JSON = pathlib.Path(__file__).parent.parent / "BENCH_sim.json"

#: trajectory length cap: drop the oldest points past this.
SIM_HISTORY = 200

#: top-level description written into ``BENCH_sim.json`` — refreshed on
#: every append so the file's self-description tracks the point schema.
BENCH_SIM_DESCRIPTION = (
    "simulator perf trajectory: one point per perf-smoke run (bare "
    "events/sec; batched and scalar engine rates with their ratio; "
    "full, 1-in-N sampled and timeline collection overhead % clamped "
    "at 0; inter-rep spread %; peak span-tracing bytes)"
)

#: a smoke run on a noisy shared runner may be this much slower than the
#: archived baseline before we call it a regression.
TOLERANCE = 3.0

#: perf-gate band (``--gate``): the new bare rate may be at most this
#: much slower than the previous trajectory point before the gate fails.
SIM_GATE_TOLERANCE = 1.5

#: perf-gate ceiling (``--gate``) on timeline-sampling overhead at the
#: default interval — the time-resolved view must stay near-free.
TIMELINE_GATE_PCT = 5.0

#: perf-gate floor (``--gate``) on the batched-vs-scalar throughput
#: ratio: the batched drain must never be *slower* than the scalar
#: reference beyond runner noise.  The measured steady-state advantage
#: on this workload is ~1.1-1.15x (dispatch/frame overhead is ~1/3 of
#: per-event cost; the rest is callback-body work the batch dispatch
#: cannot remove — see docs/API.md "Performance"), so the hard floor
#: sits below 1.0 to absorb shared-runner noise while still catching a
#: batched-path regression.
BATCHED_RATIO_FLOOR = 0.85

#: tracked aspiration for the batched-vs-scalar ratio (ISSUE 10's 1.5x
#: target).  Below this the gate *warns* — the remaining gap lives in
#: callback bodies, not dispatch, and closing it needs array-resident
#: component state (see ROADMAP), not a different drain.
BATCHED_RATIO_TARGET = 1.5

#: reps per mode: gated modes (bare throughput, timeline overhead, and
#: the scalar reference for the batched ratio) take the median of 5;
#: ungated overhead modes stay at 3 to bound smoke runtime.
GATED_REPS = 5
UNGATED_REPS = 3

EVENTS = 20_000
CHAINS = 64

#: sim-trajectory workload: CEs running the CG kernel, strip-mined.
SIM_CES = 8
SIM_STRIPS = 4


def measured_events_per_sec() -> float:
    from repro.core.engine import Engine

    engine = Engine()
    count = {"n": 0}

    def tick():
        if count["n"] < EVENTS:
            count["n"] += 1
            engine.schedule_after(1.0, tick)

    for worker in range(CHAINS):
        engine.schedule(worker / CHAINS, tick)
    engine.run()
    metrics = engine.self_metrics()
    assert metrics["events_processed"] == EVENTS + CHAINS
    return metrics["events_per_sec"]


#: sampled-tracing interval measured alongside full tracing.
SIM_SAMPLE_EVERY = 16


def peak_tracing_bytes() -> int:
    """Peak allocation attributable to span collection: one untimed
    tracemalloc run of the trajectory workload with the full collector,
    minus a bare run's peak.  Recorded per trajectory point so span-path
    memory regressions show up in ``BENCH_sim.json`` alongside the
    throughput overhead they usually accompany."""
    import tracemalloc

    peaks = {}
    for mode in ("bare", "spans"):
        tracemalloc.start()
        try:
            sim_measurement(mode)
            _current, peaks[mode] = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return max(peaks["spans"] - peaks["bare"], 0)


#: timeline sampling interval measured alongside span collection (the
#: :data:`repro.monitor.timeline.DEFAULT_INTERVAL_CYCLES` default).
SIM_TIMELINE_INTERVAL = 64.0


@contextlib.contextmanager
def _engine_gate(value):
    """Force ``CEDAR_BATCHED`` to ``value`` ("0"/"1") for the enclosed
    machine build; ``None`` leaves the ambient gate untouched."""
    if value is None:
        yield
        return
    previous = os.environ.get("CEDAR_BATCHED")
    os.environ["CEDAR_BATCHED"] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("CEDAR_BATCHED", None)
        else:
            os.environ["CEDAR_BATCHED"] = previous


def sim_measurement(mode="bare"):
    """One whole-machine kernel run; returns (sim cycles, events/sec,
    requests traced).  ``mode`` is ``"bare"`` (no collector),
    ``"spans"`` (full :class:`SpanCollector`), ``"sampled"``
    (1-in-``SIM_SAMPLE_EVERY`` :class:`SampledSpanCollector`),
    ``"timeline"`` (a :class:`MetricTimeline` riding the engine pulse
    at the default interval — the bus stays quiescent), or
    ``"scalar"`` / ``"batched"`` (bare, with ``CEDAR_BATCHED`` forced
    off / on for the batched-vs-scalar ratio)."""
    from repro.core.config import CedarConfig
    from repro.core.machine import CedarMachine
    from repro.kernels.programs import KERNELS, kernel_program
    from repro.monitor.sampling import SampledSpanCollector
    from repro.monitor.spans import SpanCollector

    gate = {"scalar": "0", "batched": "1"}.get(mode)
    if gate is not None:
        mode = "bare"
    with _engine_gate(gate):
        machine = CedarMachine(CedarConfig())
    timeline = None
    if mode == "spans":
        collector = SpanCollector().attach(machine.bus)
    elif mode == "sampled":
        collector = SampledSpanCollector(every=SIM_SAMPLE_EVERY).attach(
            machine.bus
        )
    elif mode == "timeline":
        from repro.monitor.timeline import MetricTimeline, machine_probes

        collector = None
        timeline = MetricTimeline(
            machine_probes(machine.ctx),
            interval_cycles=SIM_TIMELINE_INTERVAL,
        )
        machine.engine.attach_pulse(timeline.pulse)
    else:
        collector = None
    programs = {
        port: kernel_program(KERNELS["CG"], port, SIM_STRIPS, prefetch=True)
        for port in range(SIM_CES)
    }
    cycles = machine.run_programs(programs)
    metrics = machine.engine.self_metrics()
    traced = collector.completed if collector is not None else 0
    if collector is not None:
        collector.detach()
    if timeline is not None:
        machine.engine.detach_pulse()
        timeline.finalize(machine.engine.now)
        if timeline.intervals == 0:
            raise RuntimeError("timeline mode sampled no intervals")
        traced = timeline.intervals
    return cycles, float(metrics["events_per_sec"]), traced


def _median_rates(modes, reps=None):
    """Median events/sec per mode, modes **interleaved round-robin**
    (bare, spans, sampled, bare, ...) so slow system windows —
    frequency scaling, a noisy co-tenant — bias every mode equally
    instead of poisoning whichever mode ran in that window; first-run
    effects (imports, pool warm-up) are absorbed by the warmup
    iteration the caller runs.  ``reps`` maps mode -> rep count
    (default :data:`GATED_REPS` for bare/timeline/scalar/batched,
    :data:`UNGATED_REPS` otherwise); modes with fewer reps drop out of
    the later rounds.  All reps of a mode must report identical
    simulated cycles.  Returns ``{mode: (cycles, median events/sec,
    traced, spread)}`` where ``spread`` is (max - min) / median across
    the reps — the inter-rep noise the gate warns about."""
    if reps is None:
        reps = {}
    gated = ("bare", "timeline", "scalar", "batched")
    want = {
        mode: reps.get(mode, GATED_REPS if mode in gated else UNGATED_REPS)
        for mode in modes
    }
    runs = {mode: [] for mode in modes}
    for round_idx in range(max(want.values())):
        for mode in modes:
            if round_idx < want[mode]:
                runs[mode].append(sim_measurement(mode))
    out = {}
    for mode, measured in runs.items():
        cycles = {r[0] for r in measured}
        if len(cycles) != 1:
            raise RuntimeError(
                f"nondeterministic simulated cycles in {mode} reps: {cycles}"
            )
        rates = sorted(r[1] for r in measured)
        median = rates[len(rates) // 2]
        spread = (rates[-1] - rates[0]) / median if median else 0.0
        out[mode] = (measured[0][0], median, measured[0][2], spread)
    return out


def append_sim_point() -> dict:
    """Measure the sim trajectory point and append it to BENCH_sim.json.

    One warmup iteration, then the **median of 3** timed runs per mode,
    modes interleaved (first-run noise used to dominate trajectory
    points when this took the max of cold runs).  Raises
    ``RuntimeError`` if any monitored run's simulated cycles differ
    from the bare run's (a zero-cost violation).
    """
    from repro.perf.batch import batched_enabled

    sim_measurement("bare")  # warmup: imports, packet pool, code caches
    # "bare" runs under the ambient CEDAR_BATCHED gate; the opposite
    # drain is measured explicitly so every point carries both sides of
    # the batched-vs-scalar ratio without doubling the round-robin.
    other = "scalar" if batched_enabled() else "batched"
    medians = _median_rates(("bare", "spans", "sampled", "timeline", other))
    bare = medians["bare"]
    traced = medians["spans"]
    sampled = medians["sampled"]
    timeline = medians["timeline"]
    for label in ("spans", "sampled", "timeline", other):
        if medians[label][0] != bare[0]:
            raise RuntimeError(
                f"{label} run changed simulated cycles: "
                f"{bare[0]} bare vs {medians[label][0]} {label}"
            )

    def _overhead_pct(monitored):
        """Collection overhead vs bare, clamped at 0: a monitored run
        timing *faster* than bare is runner noise, and a negative
        overhead in the trajectory reads as a measurement bug."""
        if not monitored:
            return 0.0
        return max(0.0, (bare[1] / monitored - 1.0) * 100.0)

    if batched_enabled():
        batched_rate, scalar_rate = bare[1], medians[other][1]
        spreads = {"batched": bare[3], "scalar": medians[other][3]}
    else:
        batched_rate, scalar_rate = medians[other][1], bare[1]
        spreads = {"batched": medians[other][3], "scalar": bare[3]}
    ratio = batched_rate / scalar_rate if scalar_rate else 0.0
    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": f"CG x{SIM_CES}ces x{SIM_STRIPS}strips",
        "sim_cycles": bare[0],
        "events_per_sec": round(bare[1], 1),
        "events_per_sec_scalar": round(scalar_rate, 1),
        "events_per_sec_batched": round(batched_rate, 1),
        "batched_vs_scalar": round(ratio, 3),
        "events_per_sec_with_spans": round(traced[1], 1),
        "span_overhead_pct": round(_overhead_pct(traced[1]), 1),
        "events_per_sec_sampled": round(sampled[1], 1),
        "sampled_every": SIM_SAMPLE_EVERY,
        "sampled_overhead_pct": round(_overhead_pct(sampled[1]), 1),
        "events_per_sec_timeline": round(timeline[1], 1),
        "timeline_interval": SIM_TIMELINE_INTERVAL,
        "timeline_overhead_pct": round(_overhead_pct(timeline[1]), 1),
        "bare_spread_pct": round(bare[3] * 100.0, 1),
        "batched_spread_pct": round(spreads["batched"] * 100.0, 1),
        "scalar_spread_pct": round(spreads["scalar"] * 100.0, 1),
        "timeline_spread_pct": round(timeline[3] * 100.0, 1),
        "requests_traced": traced[2],
        # measured untimed, after the timed reps, so tracemalloc's
        # dispatch cost never touches the throughput numbers above
        "peak_tracing_bytes": peak_tracing_bytes(),
    }
    try:
        doc = json.loads(BENCH_SIM_JSON.read_text())
    except (OSError, ValueError):
        doc = {"description": BENCH_SIM_DESCRIPTION, "points": []}
    doc["description"] = BENCH_SIM_DESCRIPTION
    doc["points"] = (doc.get("points", []) + [point])[-SIM_HISTORY:]
    BENCH_SIM_JSON.write_text(json.dumps(doc, indent=1) + "\n")
    return point


def last_sim_point():
    """The most recent trajectory point, or ``None`` on a fresh tree."""
    try:
        points = json.loads(BENCH_SIM_JSON.read_text()).get("points", [])
        return points[-1] if points else None
    except (OSError, ValueError):
        return None


def gate_against(previous, point):
    """Perf-gate checks for CI (``--gate``): the new point must stay
    within :data:`SIM_GATE_TOLERANCE` of the previous trajectory point's
    bare rate (shared runners are noisy — this catches structural
    regressions, not percent drift), timeline sampling at the default
    interval must cost at most :data:`TIMELINE_GATE_PCT` of bare
    throughput, and the batched drain must hold
    :data:`BATCHED_RATIO_FLOOR` x the scalar reference.  Returns
    ``(failures, warnings)``: warnings flag inter-rep spread wider than
    the gate band (the gate's verdict is then noise-limited) and a
    batched ratio below the :data:`BATCHED_RATIO_TARGET` aspiration."""
    failures = []
    warnings = []
    if previous is not None:
        floor = float(previous["events_per_sec"]) / SIM_GATE_TOLERANCE
        if point["events_per_sec"] < floor:
            failures.append(
                f"bare throughput {point['events_per_sec']:,.0f} events/s "
                f"fell below {floor:,.0f} (last point "
                f"{previous['events_per_sec']:,.0f} / "
                f"{SIM_GATE_TOLERANCE}x tolerance)"
            )
    if point.get("timeline_overhead_pct", 0.0) > TIMELINE_GATE_PCT:
        message = (
            f"timeline sampling overhead "
            f"{point['timeline_overhead_pct']:+.1f}% exceeds the "
            f"{TIMELINE_GATE_PCT:.0f}% ceiling at the default "
            f"{point.get('timeline_interval', SIM_TIMELINE_INTERVAL):g}-cycle "
            f"interval"
        )
        # a sub-5% overhead cannot be resolved when the reps themselves
        # disagree by more than 5%: demote to a warning on noisy runners
        # rather than flake the gate (quiet runners still hard-fail).
        noise = max(
            point.get("bare_spread_pct", 0.0),
            point.get("timeline_spread_pct", 0.0),
        )
        if noise > TIMELINE_GATE_PCT:
            warnings.append(
                f"{message} — but inter-rep spread {noise:.1f}% exceeds "
                f"the ceiling, so the verdict is noise-limited"
            )
        else:
            failures.append(message)
    ratio = point.get("batched_vs_scalar")
    if ratio is not None:
        if ratio < BATCHED_RATIO_FLOOR:
            failures.append(
                f"batched/scalar throughput ratio {ratio:.3f} fell below "
                f"the {BATCHED_RATIO_FLOOR} floor (batched "
                f"{point['events_per_sec_batched']:,.0f} vs scalar "
                f"{point['events_per_sec_scalar']:,.0f} events/s)"
            )
        elif ratio < BATCHED_RATIO_TARGET:
            warnings.append(
                f"batched/scalar ratio {ratio:.3f} is below the "
                f"{BATCHED_RATIO_TARGET}x target (tracked aspiration; "
                f"remaining scalar time is callback-body work — see "
                f"`python -m repro profile --compare-batched`)"
            )
    # a gate verdict is only as good as the measurement: when one mode's
    # reps disagree by more than the gate band, say so out loud.
    gate_band_pct = (SIM_GATE_TOLERANCE - 1.0) * 100.0
    for label in ("bare_spread_pct", "batched_spread_pct",
                  "scalar_spread_pct"):
        spread = point.get(label, 0.0)
        if spread > gate_band_pct:
            warnings.append(
                f"{label.replace('_pct', '')} {spread:.1f}% exceeds the "
                f"{gate_band_pct:.0f}% gate band — this runner is too "
                f"noisy for the gate verdict to be meaningful"
            )
    # zero-cost cycle divergence already raises inside append_sim_point.
    return failures, warnings


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    gate = "--gate" in argv
    previous = last_sim_point()
    point = append_sim_point()
    print(
        f"perf-smoke: sim {point['events_per_sec']:,.0f} events/s "
        f"(batched {point['events_per_sec_batched']:,.0f} / scalar "
        f"{point['events_per_sec_scalar']:,.0f} = "
        f"{point['batched_vs_scalar']:.3f}x), "
        f"span overhead {point['span_overhead_pct']:+.1f}% full / "
        f"{point['sampled_overhead_pct']:+.1f}% sampled 1/"
        f"{point['sampled_every']}, timeline overhead "
        f"{point['timeline_overhead_pct']:+.1f}% at "
        f"{point['timeline_interval']:g} cycles "
        f"({point['requests_traced']} requests traced) -> {BENCH_SIM_JSON.name}"
    )
    if gate:
        failures, warnings = gate_against(previous, point)
        for warning in warnings:
            print(f"perf-gate: WARN: {warning}")
        for failure in failures:
            print(f"perf-gate: FAIL: {failure}")
        if failures:
            return 1
        print(
            f"perf-gate: OK (within {SIM_GATE_TOLERANCE}x of last point, "
            f"timeline overhead <= {TIMELINE_GATE_PCT:.0f}%, batched >= "
            f"{BATCHED_RATIO_FLOOR}x scalar, cycles identical across "
            f"bare/spans/sampled/timeline/scalar)"
        )
    try:
        baseline = json.loads(BENCH_JSON.read_text())
        baseline_rate = float(baseline["engine_event_throughput"]["rate"])
    except (OSError, ValueError, KeyError):
        print(f"perf-smoke: no baseline in {BENCH_JSON}; skipping comparison")
        rate = max(measured_events_per_sec() for _ in range(3))
        print(f"perf-smoke: measured {rate:,.0f} events/s")
        return 0

    # best of three: absorbs one-off scheduler hiccups on shared runners
    rate = max(measured_events_per_sec() for _ in range(3))
    floor = baseline_rate / TOLERANCE
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"perf-smoke: {rate:,.0f} events/s vs baseline "
        f"{baseline_rate:,.0f} (floor {floor:,.0f}, tolerance {TOLERANCE}x): "
        f"{verdict}"
    )
    return 0 if rate >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
