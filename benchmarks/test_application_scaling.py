"""Application-level scaling curves (extends PPT4 to the Perfect suite)."""

import pytest

from repro.experiments.scaling import (
    PROCESSOR_COUNTS,
    render_scaling,
    run_scaling_study,
)
from repro.metrics.bands import Band


@pytest.fixture(scope="module")
def curves():
    return run_scaling_study()


def test_application_scaling(benchmark, artifact, curves):
    benchmark.pedantic(lambda: curves, rounds=1, iterations=1)
    artifact("application_scaling", render_scaling(curves))

    # every code scales monotonically (no slowdown from more CEs under
    # self-scheduled DOALLs with these granularities)
    for curve in curves.values():
        speedups = curve.speedups
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])), curve.code

    # the well-parallelized codes keep gaining deep into the machine
    assert curves["TRFD"].knee == 32
    for name in ("MG3D", "MDG", "OCEAN"):
        assert curves[name].knee >= 16, name

    # the serial-bound codes flatten early
    for name in ("QCD", "SPICE"):
        assert curves[name].knee <= 4, name
        assert curves[name].speedups[-1] < 3.0

    # band census at 32 CEs is consistent with Table 6
    bands = [c.band_at(32) for c in curves.values()]
    assert bands.count(Band.HIGH) == 1          # TRFD
    assert bands.count(Band.UNACCEPTABLE) <= 3


def test_scaling_respects_amdahl(curves):
    """Speedup at 32 never exceeds the Amdahl bound of the code's
    parallel coverage."""
    from repro.perf.model import CedarApplicationModel
    from repro.perfect.profiles import PERFECT_CODES
    from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE

    model = CedarApplicationModel()
    for name, curve in curves.items():
        coverage = model.restructure(
            PERFECT_CODES[name], AUTOMATABLE_PIPELINE
        ).parallel_coverage
        bound = 1.0 / ((1.0 - coverage) + coverage / 32.0) if coverage < 1 else 32.0
        assert curve.speedups[-1] <= bound * 1.05, name
