"""Table 5: instability of the Perfect ensembles."""

import pytest

from repro.experiments.table5 import render_table5, run_table5


@pytest.fixture(scope="module")
def rows():
    return run_table5()


def test_table5_stability(benchmark, artifact, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    artifact("table5_stability", render_table5(rows))
    by_machine = {r.machine: r for r in rows}
    cedar = by_machine["Cedar"]
    ymp = by_machine["Cray YMP-8"]

    # "Cedar and the Cray YMP/8 both have terrible instabilities for
    # their baseline-automatable computations"
    assert cedar.instabilities[0] > 20
    assert ymp.instabilities[0] > 100

    # Cedar's raw In(13,0): MG3D's 31.7 over SPICE's 0.5 = 63
    assert cedar.instabilities[0] == pytest.approx(63.4, rel=0.15)

    # instability collapses as exceptions are allowed
    for row in rows:
        a, b, c = row.instabilities
        assert a >= b >= c

    # the YMP needs about six exceptions for workstation stability;
    # Cedar far fewer ("two exceptions are sufficient on the Cray 1 and
    # Cedar, whereas the YMP needs six" — we measure 3 for Cedar)
    assert ymp.exceptions_for_workstation_stability == 6
    assert cedar.exceptions_for_workstation_stability <= 3
    assert (
        cedar.exceptions_for_workstation_stability
        < ymp.exceptions_for_workstation_stability
    )


def test_table5_six_exceptions_suffice_everywhere(rows):
    """In(13,6) is workstation-stable for every machine."""
    for row in rows:
        assert row.instabilities[2] <= 5.0
