"""Performance of the reproduction itself (proper pytest-benchmark
timing runs: these measure OUR code, not the paper's machine).

Regression guards for the hot paths: the event engine, the network
pipeline, the dependence tester, and the stability metric.
"""

import json
import pathlib

import pytest

from repro.core.engine import Engine
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import AwaitStream, StartPrefetch
from repro.metrics.stability import stability
from repro.restructurer.parser import parse_loop
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE

BENCH_JSON = pathlib.Path(__file__).parent / "output" / "BENCH_engine.json"


def _record_rate(name: str, rate: float, unit: str) -> None:
    """Merge one throughput figure into the BENCH_engine.json baseline,
    so CI can archive engine events/sec alongside the benchmark run."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    try:
        data = json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        data = {}
    data[name] = {"rate": round(rate, 1), "unit": unit}
    BENCH_JSON.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")


def test_engine_event_throughput(benchmark):
    """Drain 20k events across 64 interleaved chains.

    64 concurrent chains keep the pending-event set at a realistic
    machine-simulation depth (CEs + PFUs + network resources all have
    events in flight); a single chain would only ever exercise a
    depth-1 queue.
    """

    def run():
        engine = Engine()
        count = {"n": 0}

        def tick():
            if count["n"] < 20_000:
                count["n"] += 1
                engine.schedule_after(1.0, tick)

        for worker in range(64):
            engine.schedule(worker / 64.0, tick)
        engine.run()
        return count["n"]

    assert benchmark(run) == 20_000
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _record_rate(
            "engine_event_throughput", 20_000 / benchmark.stats.stats.median,
            "events/s",
        )


def test_prefetch_stream_simulation_rate(benchmark):
    """One CE streaming 512 words end to end through the full machine."""

    def run():
        machine = CedarMachine(CedarConfig())

        def prog():
            s = yield StartPrefetch(length=256, stride=1, address=0)
            yield AwaitStream(s)
            s = yield StartPrefetch(length=256, stride=1, address=512)
            yield AwaitStream(s)

        return machine.run_programs({0: prog()})

    cycles = benchmark(run)
    assert cycles > 0
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _record_rate(
            "prefetch_stream_cycles_per_second",
            cycles / benchmark.stats.stats.median,
            "sim-cycles/s",
        )


def test_restructurer_throughput(benchmark):
    source = (
        "DO I = 1, 512\n"
        "T = X(I) * X(I)\n"
        "S = S + T\n"
        "W(1) = X(I)\n"
        "Y(I) = W(1) + T\n"
        "END DO"
    )

    def run():
        loop = parse_loop(source)
        return AUTOMATABLE_PIPELINE.restructure_loop(loop)

    verdict = benchmark(run)
    assert verdict.parallel


def test_stability_metric_speed(benchmark):
    values = [1.0 + (i * 37 % 101) for i in range(200)]

    def run():
        return stability(values, exclusions=6)

    st = benchmark(run)
    assert 0 < st <= 1
