"""Performance of the reproduction itself (proper pytest-benchmark
timing runs: these measure OUR code, not the paper's machine).

Regression guards for the hot paths: the event engine, the network
pipeline, the dependence tester, and the stability metric.
"""

import pytest

from repro.core.engine import Engine
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import AwaitStream, StartPrefetch
from repro.metrics.stability import stability
from repro.restructurer.parser import parse_loop
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE


def test_engine_event_throughput(benchmark):
    def run():
        engine = Engine()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 20_000:
                engine.schedule_after(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count["n"]

    assert benchmark(run) == 20_000


def test_prefetch_stream_simulation_rate(benchmark):
    """One CE streaming 512 words end to end through the full machine."""

    def run():
        machine = CedarMachine(CedarConfig())

        def prog():
            s = yield StartPrefetch(length=256, stride=1, address=0)
            yield AwaitStream(s)
            s = yield StartPrefetch(length=256, stride=1, address=512)
            yield AwaitStream(s)

        return machine.run_programs({0: prog()})

    cycles = benchmark(run)
    assert cycles > 0


def test_restructurer_throughput(benchmark):
    source = (
        "DO I = 1, 512\n"
        "T = X(I) * X(I)\n"
        "S = S + T\n"
        "W(1) = X(I)\n"
        "Y(I) = W(1) + T\n"
        "END DO"
    )

    def run():
        loop = parse_loop(source)
        return AUTOMATABLE_PIPELINE.restructure_loop(loop)

    verdict = benchmark(run)
    assert verdict.parallel


def test_stability_metric_speed(benchmark):
    values = [1.0 + (i * 37 % 101) for i in range(200)]

    def run():
        return stability(values, exclusions=6)

    st = benchmark(run)
    assert 0 < st <= 1
