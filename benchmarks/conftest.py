"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures.  The
rendered artifact is printed (visible with ``pytest -s`` or in the
teed output) and written under ``benchmarks/output/`` so the harness
leaves the regenerated evaluation on disk.
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def artifact():
    """Returns a writer: artifact(name, text) persists and echoes."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write
