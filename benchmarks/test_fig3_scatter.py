"""Figure 3: Cray YMP/8 vs Cedar efficiency scatter for the manually
optimized Perfect codes."""

from repro.experiments.fig3 import band_census, render_fig3, run_fig3
from repro.metrics.bands import Band


def test_fig3_scatter(benchmark, artifact):
    points = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    artifact("fig3_scatter", render_fig3(points))
    census = band_census(points)

    # "The 8-processor YMP has about half high and half intermediate
    # levels of performance"
    ymp = census["YMP"]
    assert 3 <= ymp[Band.HIGH] <= 8
    assert 4 <= ymp[Band.INTERMEDIATE] <= 9
    # "the YMP has one unacceptable performance"
    assert ymp[Band.UNACCEPTABLE] == 1

    # "the 32-processor Cedar has about one-quarter high and
    # three-quarters intermediate ... Cedar has none [unacceptable]"
    cedar = census["Cedar"]
    assert 2 <= cedar[Band.HIGH] <= 5
    assert cedar[Band.INTERMEDIATE] >= 8
    assert cedar[Band.UNACCEPTABLE] == 0

    # both machines therefore pass PPT1 on the Perfect codes
    assert sum(v for b, v in ymp.items() if b is not Band.UNACCEPTABLE) > 6
    assert sum(v for b, v in cedar.items() if b is not Band.UNACCEPTABLE) > 6


def test_fig3_spice_is_the_ymp_outlier(benchmark):
    points = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    worst = min(points, key=lambda p: p.ymp_efficiency)
    assert worst.code == "SPICE"
    assert worst.ymp_band is Band.UNACCEPTABLE
