"""Batched-engine identity harness: every registered experiment, both
drains, byte-for-byte.

The batched engine (:class:`repro.core.engine.BatchedEngine`) promises
*bit-identical simulation*: same cycles, same event counts, same final
state, same rendered artifacts as the scalar reference drain.  This
harness is the promise's enforcement: it runs the **full experiment
registry** twice — ``CEDAR_BATCHED=0`` then ``=1`` — and diffs each
experiment's rendered report byte-for-byte.  Any divergence prints a
unified diff and fails the run; CI's ``batched-identity`` job calls
this on every push.

Wall-clock-derived content (events/sec lines, elapsed-seconds fields)
is normalized out before diffing — the contract covers *simulated*
behaviour, not host timing.  Normalization is deliberately narrow:
every substitution is logged, so a normalization that starts matching
simulation output would be visible in the job log.

Usage: ``python benchmarks/batched_identity.py [--full] [names...]``
(default: every registered experiment at ``--fast`` smoke sizes; exit
0 = all identical).
"""

from __future__ import annotations

import difflib
import os
import re
import sys

#: wall-clock normalizations: (label, pattern) applied to both renders.
#: Patterns replace only the numeric payload, keeping the surrounding
#: text, so a diff in normalized output still reads naturally.
_WALL_CLOCK = [
    ("events/sec", re.compile(r"[\d,.]+\s*(events?/s(?:ec)?)")),
    ("elapsed seconds", re.compile(r"[\d.]+\s*(?:wall[- ])?s(?:ec(?:onds)?)?\b")),
    ("wall ms", re.compile(r"[\d.]+\s*ms\b")),
]


def _normalize(text: str, notes: set) -> str:
    for label, pattern in _WALL_CLOCK:
        text, n = pattern.subn("<wall-clock>", text)
        if n:
            notes.add(f"normalized {n}x {label}")
    return text


def _render(name: str, fast: bool, gate: str) -> str:
    from repro.experiments.runner import experiment

    os.environ["CEDAR_BATCHED"] = gate
    exp = experiment(name)
    return exp.runner(**exp.arguments(fast=fast))


def check(name: str, fast: bool = True) -> list:
    """Run ``name`` under both drains; return diff lines (empty = identical)."""
    notes: set = set()
    scalar = _normalize(_render(name, fast, "0"), notes)
    batched = _normalize(_render(name, fast, "1"), notes)
    for note in sorted(notes):
        print(f"  {name}: {note}")
    if scalar == batched:
        return []
    return list(
        difflib.unified_diff(
            scalar.splitlines(keepends=True),
            batched.splitlines(keepends=True),
            fromfile=f"{name} CEDAR_BATCHED=0",
            tofile=f"{name} CEDAR_BATCHED=1",
        )
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fast = "--full" not in argv
    names = [a for a in argv if not a.startswith("--")]
    previous_gate = os.environ.get("CEDAR_BATCHED")
    from repro.experiments.runner import experiment_names

    if not names:
        names = experiment_names()
    failures = []
    try:
        for name in names:
            diff = check(name, fast=fast)
            if diff:
                failures.append(name)
                print(f"batched-identity: DIVERGED: {name}")
                sys.stdout.writelines(diff)
            else:
                print(f"batched-identity: identical: {name}")
    finally:
        if previous_gate is None:
            os.environ.pop("CEDAR_BATCHED", None)
        else:
            os.environ["CEDAR_BATCHED"] = previous_gate
    if failures:
        print(
            f"batched-identity: FAIL: {len(failures)}/{len(names)} "
            f"experiments diverged: {', '.join(failures)}"
        )
        return 1
    print(
        f"batched-identity: OK: {len(names)} experiments byte-identical "
        f"across CEDAR_BATCHED=0/1"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
