"""Omega-network permutation ablation (the [Lawr75] alignment story)."""

import pytest

from repro.experiments.permutations import (
    render_permutations,
    run_permutation_study,
    static_conflicts,
    PERMUTATIONS,
)


def test_network_permutations(benchmark, artifact):
    results = benchmark.pedantic(run_permutation_study, rounds=1, iterations=1)
    artifact("network_permutations", render_permutations(results))
    by_name = {r.name: r for r in results}

    # conflict-free permutations (identity, uniform shift) stream at
    # full width
    assert by_name["identity"].static_conflicts == 0
    assert by_name["shift+1"].static_conflicts == 0
    assert by_name["identity"].throughput > 20.0

    # blocking permutations lose several-fold throughput — the
    # alignment problem Lawrie's tag-routing paper addresses
    assert by_name["bit reversal"].static_conflicts > 0
    assert by_name["bit reversal"].throughput < by_name["identity"].throughput / 2

    # all-to-one is fully serialized by the destination port
    assert by_name["all-to-one"].throughput == pytest.approx(1.0, rel=0.1)

    # static conflict analysis predicts the dynamic ordering
    ordered = sorted(results, key=lambda r: r.static_conflicts)
    throughputs = [r.throughput for r in ordered]
    assert throughputs == sorted(throughputs, reverse=True)


def test_conflict_analysis_is_symmetric_for_shifts():
    """Every uniform shift is conflict-free in a delta network."""
    for k in range(32):
        assert static_conflicts(lambda s, k=k: (s + k) % 32) == 0
