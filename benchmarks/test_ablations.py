"""Ablations over the design choices DESIGN.md calls out."""

import pytest

from repro.experiments.ablations import (
    ablate_memory_recovery,
    ablate_prefetch_block_size,
    ablate_scaled_up_cedar,
    ablate_shared_network,
    ablate_switch_queue_depth,
    render_ablation,
)


def test_prefetch_block_size(benchmark, artifact):
    points = benchmark.pedantic(ablate_prefetch_block_size, rounds=1, iterations=1)
    artifact(
        "ablation_prefetch_block",
        render_ablation("Ablation: RK prefetch block size at 32 CEs", points),
    )
    # every RK block size saturates the memory system: interarrival
    # sits far above the 1-cycle floor (compare TM's ~2.1 at 32 CEs)
    inters = [p.interarrival for p in points]
    assert all(i > 2.5 for i in inters)
    # longer blocks amortize arm/turnaround overheads: per-CE
    # throughput grows monotonically with the block size, which is why
    # the hand-coded RK uses 256-word prefetches
    rates = [p.mflops for p in points]
    assert rates == sorted(rates)
    assert rates[-1] > rates[0] * 1.1


def test_switch_queue_depth(benchmark, artifact):
    points = benchmark.pedantic(ablate_switch_queue_depth, rounds=1, iterations=1)
    artifact(
        "ablation_queue_depth",
        render_ablation("Ablation: switch port queue depth (RK @ 32 CEs)", points),
    )
    # deeper queues let more traffic sit in the network: latency grows
    # monotonically with depth under saturation
    lats = [p.latency for p in points]
    assert lats[-1] > lats[0]
    # throughput is not materially improved by deep queues (the
    # bottleneck is module bandwidth, not buffering)
    rates = [p.mflops for p in points]
    assert max(rates) / min(rates) < 1.3


def test_memory_recovery(benchmark, artifact):
    points = benchmark.pedantic(ablate_memory_recovery, rounds=1, iterations=1)
    artifact(
        "ablation_memory_recovery",
        render_ablation("Ablation: DRAM recovery cycles (RK @ 32 CEs)", points),
    )
    # recovery=0 restores the idealized memory: visibly higher
    # throughput and lower interarrival than the calibrated machine —
    # the [Turn93] "implementation constraints" in one knob
    ideal, calibrated, worse = points
    assert ideal.mflops > calibrated.mflops
    assert ideal.interarrival < calibrated.interarrival
    assert worse.mflops < calibrated.mflops


def test_two_networks_vs_one(benchmark, artifact):
    points = benchmark.pedantic(
        ablate_shared_network, kwargs={"kernel": "RK", "n_ces": 16},
        rounds=1, iterations=1,
    )
    artifact(
        "ablation_shared_network",
        render_ablation(
            "Ablation: two unidirectional networks vs one shared fabric "
            "(RK @ 16 CEs)", points,
        ),
    )
    two, one, escape = points
    # Cedar's design completes; the shared fabric hits the classic
    # request/reply protocol deadlock — even with reply injection
    # escape buffers (the cycle closes through the shared stages)
    assert two.mflops > 0
    assert "DEADLOCK" in one.setting
    assert "DEADLOCK" in escape.setting


def test_ppt5_scaled_up_cedar(benchmark, artifact):
    points = benchmark.pedantic(ablate_scaled_up_cedar, rounds=1, iterations=1)
    artifact(
        "ablation_ppt5_scaleup",
        render_ablation("PPT5: 4x8 Cedar vs scaled 8x8 Cedar (TM kernel)", points),
    )
    base = points["4x8 (Cedar)"]
    big = points["8x8 (scaled)"]
    # the scaled machine (64 CEs, 64 memory modules) delivers more
    # aggregate throughput...
    assert big.mflops > base.mflops * 1.3
    # ...at a latency that has not collapsed (the architecture scales)
    assert big.latency < base.latency * 2.5
