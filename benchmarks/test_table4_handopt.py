"""Table 4: manually optimized Perfect codes."""

import pytest

from repro.experiments.table4 import TABLE4_CODES, render_table4, run_table4


@pytest.fixture(scope="module")
def rows():
    return run_table4()


def test_table4_handopt(benchmark, artifact, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    artifact("table4_handopt", render_table4(rows))
    by_code = {r.code: r for r in rows}
    for code in TABLE4_CODES:
        row = by_code[code]
        assert row.seconds == pytest.approx(row.paper_seconds, rel=0.30), code
        assert row.improvement > 1.0

    # QCD's parallel RNG is the standout (11.4x in the paper)
    assert by_code["QCD"].improvement > 5.0
    # BDNA's gain is pure I/O replacement
    assert by_code["BDNA"].improvement == pytest.approx(1.7, abs=0.4)


def test_table4_narrative_codes(rows):
    by_code = {r.code: r for r in rows}
    # FL052 restructured barriers: about half the automatable time
    assert by_code["FLO52"].seconds == pytest.approx(33.0, rel=0.3)
    # DYFESM reshaped + SDOALL/CDOALL: ~31s
    assert by_code["DYFESM"].seconds == pytest.approx(31.0, rel=0.3)
    # SPICE reworked: ~26s
    assert by_code["SPICE"].seconds == pytest.approx(26.0, rel=0.3)
