"""Figures 1 and 2: the machine's structure, rebuilt and verified."""

from repro.core.config import CedarConfig
from repro.experiments.fig1 import render_fig1, topology_summary


def test_fig1_topology(benchmark, artifact):
    info = benchmark.pedantic(topology_summary, rounds=1, iterations=1)
    artifact("fig1_topology", render_fig1())
    # Figure 1: four clusters, two networks, shared global memory
    assert info["clusters"] == 4
    assert info["networks"] == 2
    assert info["network_stages"] == 2
    assert info["memory_modules"] == 32
    assert info["global_memory_mb"] == 64
    # Figure 2: the Alliant cluster
    assert info["ces_per_cluster"] == 8
    assert info["cache_kb"] == 512
    assert info["cluster_memory_mb"] == 32
    # headline rates: 376 peak, 274 effective peak MFLOPS
    assert abs(info["peak_mflops"] - 376) < 2
    assert abs(info["effective_peak_mflops"] - 274) < 2


def test_fig1_topology_is_configuration_driven(benchmark):
    """PPT5 sanity: the same constructor builds scaled machines."""
    big = benchmark.pedantic(
        lambda: topology_summary(CedarConfig(clusters=8)), rounds=1, iterations=1
    )
    assert big["total_ces"] == 64
