"""Cluster-level characterization (the Figure 2 subsystems).

The Alliant cache's design point: "eight 64-bit words per instruction
cycle, sufficient to supply one input stream to a vector instruction
in each processor" — eight CEs each consuming one word per cycle
exactly balance the cache.  The bench shows (a) per-CE stream rates
hold at ~1 word/cycle all the way to 8 CEs on the real cache, and
(b) an under-provisioned (halved) cache breaks the balance.
"""

from dataclasses import replace

import pytest

from repro.cluster.ce import ClusterVectorOp
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.util.tables import Table


def per_ce_rate(n_ces: int, cache_words_per_cycle: int = 8,
                words_per_ce: int = 512) -> float:
    config = CedarConfig()
    config = replace(
        config, cache=replace(config.cache, words_per_cycle=cache_words_per_cycle)
    )
    machine = CedarMachine(config)

    def prog():
        # a CE's vector stream consumes one word per cycle (2 chained
        # flops): the physical per-processor limit
        for _ in range(4):
            yield ClusterVectorOp(words=words_per_ce // 4, cycles_per_word=1.0)

    cycles = machine.run_programs({p: prog() for p in range(n_ces)})
    return words_per_ce / cycles


def test_cluster_cache_design_point(benchmark, artifact):
    rates = benchmark.pedantic(
        lambda: {
            (n, c): per_ce_rate(n, c)
            for n in (1, 2, 4, 8)
            for c in (8, 4)
        },
        rounds=1,
        iterations=1,
    )
    table = Table(
        title="Cluster cache design point: per-CE stream rate (words/cycle)",
        columns=["CEs streaming", "cache 8 w/cyc (Alliant)", "cache 4 w/cyc (ablated)"],
        precision=2,
    )
    for n in (1, 2, 4, 8):
        table.add_row([n, rates[(n, 8)], rates[(n, 4)]])
    artifact("cluster_characterization", table.render())

    # (a) the real cache feeds every CE at (near) its full stream even
    # with all 8 running; the ~20% shortfall at exact saturation is the
    # chunked-transit artifact of the queueing model (real streams
    # interleave word-by-word)
    for n in (1, 2, 4):
        assert rates[(n, 8)] == pytest.approx(rates[(1, 8)], rel=0.1), n
    assert rates[(8, 8)] >= 0.78 * rates[(1, 8)]

    # (b) the halved cache is fine up to 4 CEs but starves 8 outright
    assert rates[(4, 4)] == pytest.approx(rates[(1, 4)], rel=0.2)
    assert rates[(8, 4)] < 0.6 * rates[(1, 4)]
    # the design-point contrast: the real cache at 8 CEs clearly beats
    # the under-provisioned one
    assert rates[(8, 8)] > 1.5 * rates[(8, 4)]


def test_one_ce_cannot_exceed_its_stream(benchmark):
    """A single CE consumes at most one word per cycle of vector
    stream, even though the cache could deliver eight."""
    machine = CedarMachine(CedarConfig())

    def prog():
        yield ClusterVectorOp(words=512, cycles_per_word=1.0)

    cycles = benchmark.pedantic(
        lambda: machine.run_programs({0: prog()}), rounds=1, iterations=1
    )
    assert 512 / cycles <= 1.05
