"""Table 2: global memory performance (prefetch speedup, latency,
interarrival for TM/CG/VF/RK at 8/16/32 CEs)."""

import pytest

from repro.experiments.table2 import (
    CE_COUNTS,
    KERNEL_ORDER,
    PAPER_TABLE2,
    render_table2,
    run_table2,
)

STRIPS = 10


@pytest.fixture(scope="module")
def rows():
    return run_table2(strips=STRIPS)


def test_table2_gm_performance(benchmark, artifact, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    artifact("table2_gm_performance", render_table2(rows))
    by_kernel = {r.kernel: r for r in rows}

    # shape 1: prefetch always helps, and its benefit shrinks with CEs
    for row in rows:
        assert all(s > 1.0 for s in row.speedups)
        assert row.speedups[0] >= row.speedups[2]

    # shape 2: the paper's kernel ordering of prefetch speedups at 8 CEs
    # (RK > CG > TM > VF)
    s8 = {k: by_kernel[k].speedups[0] for k in KERNEL_ORDER}
    assert s8["RK"] > s8["CG"] > s8["VF"]
    assert s8["RK"] > s8["TM"] > s8["VF"]

    # shape 3: latency and interarrival grow with the CE count
    for row in rows:
        assert row.latencies[2] > row.latencies[0]
        assert row.interarrivals[2] > row.interarrivals[0]

    # shape 4: RK (256-word blocks, fully overlapped) degrades most
    assert by_kernel["RK"].latencies[2] >= max(
        by_kernel[k].latencies[2] for k in ("TM", "CG")
    ) - 1.0
    assert by_kernel["RK"].interarrivals[2] == max(
        r.interarrivals[2] for r in rows
    )


def test_table2_absolute_anchors(rows):
    for row in rows:
        paper_lat = PAPER_TABLE2[row.kernel][1]
        paper_int = PAPER_TABLE2[row.kernel][2]
        # unloaded (8-CE) latency within ~2 cycles of the paper
        assert row.latencies[0] == pytest.approx(paper_lat[0], abs=2.0)
        # interarrival at 8 CEs near 1 cycle, at 32 CEs within 40%
        assert row.interarrivals[0] == pytest.approx(paper_int[0], abs=0.3)
        assert row.interarrivals[2] == pytest.approx(paper_int[2], rel=0.4)
