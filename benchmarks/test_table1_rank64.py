"""Table 1: MFLOPS for the rank-64 update (three memory regimes)."""

import pytest

from repro.experiments.table1 import PAPER_TABLE1, render_table1, run_table1


@pytest.fixture(scope="module")
def rows():
    return run_table1(a_strips=2)


def test_table1_rank64(benchmark, artifact, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    artifact("table1_rank64", render_table1(rows))
    by_version = {r.version: r.mflops for r in rows}

    # shape 1: one-cluster ordering GM/no-pref << GM/pref ~ GM/cache
    assert by_version["GM/no-pref"][0] < by_version["GM/pref"][0] / 2
    # shape 2: cache version scales nearly linearly to 4 clusters
    cache = by_version["GM/cache"]
    assert cache[3] / cache[0] > 3.4
    # shape 3: prefetch version saturates (sub-2x from 2 to 4 clusters)
    pref = by_version["GM/pref"]
    assert pref[3] / pref[1] < 1.6
    # shape 4: no-pref stays latency-bound and roughly linear
    nopref = by_version["GM/no-pref"]
    assert nopref[3] / nopref[0] > 3.4
    # crossover: beyond two clusters the cache version wins over prefetch
    assert cache[2] > pref[2] and cache[3] > pref[3]


def test_table1_absolute_anchors(rows):
    """The calibrated points the model reproduces quantitatively."""
    by_version = {r.version: r.mflops for r in rows}
    for version, paper in PAPER_TABLE1.items():
        got = by_version[version]
        # one-cluster rates within 15%; 4-cluster within 35%
        assert got[0] == pytest.approx(paper[0], rel=0.15), version
        assert got[3] == pytest.approx(paper[3], rel=0.35), version
