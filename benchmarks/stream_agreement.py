"""Acceptance check: streaming quantiles agree with the exact buffered
quantiles on every registered experiment.

Each experiment is re-run once with **both** observability backends
attached to every machine it builds — the buffered
:class:`~repro.monitor.spans.SpanCollector` (the exact population) and
the :class:`~repro.monitor.streamstore.StreamingSpanStore` — so the two
observe identical traffic.  For every experiment that traces requests,
the streaming p50/p90/p95/p99 must fall within the sketch's declared
relative-error bound of the exact sorted-population quantile (the
shared rank convention ``sorted[ceil(q*n) - 1]``).  Simulated cycles
are unaffected by either backend (the zero-cost contract), so this is
purely a statistics check.

Usage: ``python benchmarks/stream_agreement.py [--full] [NAMES...]``
(default: every registered experiment at fast size; exit 0 = all
within bound).
"""

from __future__ import annotations

import math
import sys

#: the sketch's declared relative-error bound (matches the
#: StreamingSpanStore default).
RELATIVE_ERROR = 0.01

QUANTILES = (0.5, 0.9, 0.95, 0.99)


def exact_quantile(ordered, q):
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[min(rank, len(ordered)) - 1]


def dual_observed_run(name: str, fast: bool = True):
    """Run one experiment with both backends on every machine; returns
    (sorted exact latencies, merged StreamingLatencyAnalysis) or
    (None, None) when the experiment traces nothing."""
    from repro.core.context import add_context_observer, remove_context_observer
    from repro.experiments.runner import clear_memoized_runs, experiment
    from repro.monitor.spans import SpanCollector
    from repro.monitor.streamstore import (
        StreamingLatencyAnalysis,
        StreamingSpanStore,
    )

    exp = experiment(name)
    pairs = []

    def observe(ctx):
        pairs.append((
            SpanCollector().attach(ctx.bus),
            StreamingSpanStore(relative_error=RELATIVE_ERROR).attach(ctx.bus),
        ))

    clear_memoized_runs()  # memoized runs would build no machines
    observer = add_context_observer(observe)
    try:
        exp.runner(**exp.arguments(fast))
    finally:
        remove_context_observer(observer)
        for buffered, store in pairs:
            buffered.detach()
            store.detach()
    latencies = sorted(
        span.latency
        for buffered, _store in pairs
        for span in buffered.complete_spans()
        if span.phases() is not None
    )
    if not latencies:
        return None, None
    analysis = StreamingLatencyAnalysis.from_stores(
        [store for _buffered, store in pairs]
    )
    return latencies, analysis


def check_experiment(name: str, fast: bool = True):
    """Returns a list of failure messages (empty = agreement holds)."""
    latencies, analysis = dual_observed_run(name, fast=fast)
    if latencies is None:
        print(f"stream-agreement: {name}: no traced requests, skipped")
        return []
    if analysis.requests != len(latencies):
        return [
            f"{name}: streaming folded {analysis.requests} requests, "
            f"buffered retained {len(latencies)}"
        ]
    failures = []
    worst = 0.0
    estimates = analysis.quantile_curve(QUANTILES)
    for q, estimate in zip(QUANTILES, estimates):
        exact = exact_quantile(latencies, q)
        rel = abs(estimate - exact) / exact if exact else abs(estimate)
        worst = max(worst, rel)
        if rel > RELATIVE_ERROR * (1.0 + 1e-9) + 1e-12:
            failures.append(
                f"{name}: p{int(q * 100)} streamed {estimate:.3f} vs exact "
                f"{exact:.3f} ({rel:.4%} > {RELATIVE_ERROR:.0%} bound)"
            )
    if not failures:
        print(
            f"stream-agreement: {name}: {len(latencies)} requests, "
            f"worst quantile error {worst:.4%} (bound {RELATIVE_ERROR:.0%})"
        )
    return failures


def main(argv=None) -> int:
    from repro.experiments.runner import experiment_names

    argv = sys.argv[1:] if argv is None else argv
    fast = "--full" not in argv
    names = [a for a in argv if not a.startswith("--")] or experiment_names()
    failures = []
    for name in names:
        failures.extend(check_experiment(name, fast=fast))
    for failure in failures:
        print(f"stream-agreement: FAIL: {failure}")
    if not failures:
        print(f"stream-agreement: OK ({len(names)} experiments)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
