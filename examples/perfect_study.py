"""The Perfect Benchmarks study (Sections 3.3 and 4.2) end to end.

Run:  python examples/perfect_study.py

For each of the 13 codes: restructure under both pipelines, execute the
four Table 3 versions, and show the hand-optimization results of
Table 4 with their component breakdowns.
"""

from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.table4 import render_table4, run_table4
from repro.perf.model import CedarApplicationModel
from repro.perfect.handopt import HANDOPT_MODELS
from repro.perfect.profiles import PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


def show_compiler_verdicts() -> None:
    print("== what each pipeline parallelizes ==")
    model = CedarApplicationModel()
    for name in sorted(PERFECT_CODES):
        code = PERFECT_CODES[name]
        kap = model.restructure(code, KAP_PIPELINE)
        auto = model.restructure(code, AUTOMATABLE_PIPELINE)
        unlocked = [
            v for v in auto.verdicts
            if v.parallel and not kap.verdict_for(v.label).parallel
        ]
        extra = ", ".join(
            t for v in unlocked for t in v.transforms
            if t not in ("scalar privatization", "induction substitution")
        )
        print(
            f"  {name:8s} coverage {kap.parallel_coverage:4.0%} -> "
            f"{auto.parallel_coverage:4.0%}"
            + (f"  (unlocked by: {extra})" if extra else "")
        )


def show_table3() -> None:
    print("\n== Table 3 ==")
    print(render_table3(run_table3()))


def show_table4() -> None:
    print("\n== Table 4 + hand-optimization anatomy ==")
    print(render_table4(run_table4()))
    for name, opt in HANDOPT_MODELS.items():
        result = opt.apply()
        parts = ", ".join(
            f"{k}={v:.1f}s" for k, v in result.breakdown.items() if v > 0.05
        )
        print(f"  {name:8s} {opt.description}")
        print(f"           -> {result.seconds:6.1f}s  [{parts}]")


if __name__ == "__main__":
    show_compiler_verdicts()
    show_table3()
    show_table4()
