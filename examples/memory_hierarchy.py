"""The Cedar memory hierarchy, hands on.

Run:  python examples/memory_hierarchy.py

Walks the full hierarchy the way a Cedar programmer had to think about
it: global memory, explicit moves into cluster memory, the software
coherence discipline, the shared cache's behaviour under a blocked
rank-64 working set, and the hardware latency histogram of a
prefetch-heavy run.
"""

import numpy as np

from repro.cluster.cache_model import ClusterCacheModel
from repro.cluster.ce import AwaitStream, StartPrefetch
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.fortran import CedarFortran, CoherenceError, CoherenceManager


def explicit_moves_and_coherence() -> None:
    print("== explicit moves + software coherence ==")
    cf = CedarFortran()
    mgr = CoherenceManager(clusters=4)
    field = cf.global_array(np.arange(1024.0), name="field")

    # distribute quarters into the four cluster memories (Section 3.2)
    pieces = mgr.distribute(field, 4)
    print(f"  distributed {field.words} words: "
          f"{[local.words for _, local, _ in pieces]} per cluster")

    # cluster 2 updates its quarter; the move back is explicit
    cluster, local, sl = pieces[2]
    local.data *= -1.0
    field.data.reshape(-1)[sl] = local.data
    print(f"  cluster {cluster} updated its slice {sl.start}..{sl.stop}")

    # the discipline: a second dirty writer on a full copy is an error
    copy0 = mgr.copy_to_cluster(field, 0)
    mgr.mark_written(field, 0)
    try:
        mgr.copy_to_cluster(field, 1)
    except CoherenceError as exc:
        print(f"  coherence manager refused: {exc}")
    mgr.write_back(field, 0)
    print(f"  stats: {mgr.stats}\n")


def cache_behaviour_of_blocking() -> None:
    print("== cluster cache vs rank-64 blocking ==")
    cache = ClusterCacheModel()

    def sweep(rows: int, cols: int, passes: int) -> float:
        cache.stats.reads = cache.stats.writes = 0
        cache.stats.hits = cache.stats.misses = 0
        for _ in range(passes):
            for j in range(cols):
                for i in range(0, rows * 8, 8):  # 8-byte elements
                    cache.access(j * rows * 8 + i, ce=0)
        return cache.stats.hit_rate

    # the GM/cache version's premise: a blocked submatrix (64 columns
    # of 512 doubles = 256 KB) fits in the 512 KB cache and is reused
    blocked = sweep(rows=512, cols=64, passes=4)
    print(f"  blocked working set (256 KB), 4 reuse passes: "
          f"hit rate {blocked:.1%}")

    # an unblocked sweep (4 MB) thrashes
    cache2 = ClusterCacheModel()
    misses = 0
    for p in range(2):
        for i in range(0, 4 * 1024 * 1024, 8):
            if not cache2.access(i, ce=0).hit:
                misses += 1
    print(f"  unblocked 4 MB sweep, 2 passes: hit rate "
          f"{cache2.stats.hit_rate:.1%} (thrashing)\n")


def hardware_latency_histogram() -> None:
    print("== hardware histogrammer on the prefetch path ==")
    machine = CedarMachine(CedarConfig(), monitor_port=0)

    def program(port):
        for strip in range(12):
            stream = yield StartPrefetch(
                length=32, stride=1, address=port * 65536 + strip * 32
            )
            yield AwaitStream(stream)

    machine.run_programs({p: program(p) for p in range(32)})
    hist = machine.probe.latency_histogram(bins=32, hi=32.0)
    print(f"  {hist.samples} prefetch blocks; "
          f"mean latency {hist.mean():.1f} cycles; "
          f"p90 {hist.percentile(0.9):.1f} cycles")
    for idx in hist.nonzero_bins():
        width = (32.0 / 32)
        bar = "#" * min(60, hist.count(idx))
        print(f"  {idx * width:5.1f}-{(idx + 1) * width:5.1f} cyc |{bar}")


if __name__ == "__main__":
    explicit_moves_and_coherence()
    cache_behaviour_of_blocking()
    hardware_latency_histogram()
