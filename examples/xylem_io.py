"""The BDNA I/O story, on the machine.

Run:  python examples/xylem_io.py

BDNA's entire Table 4 optimization was "simply replacing formatted
with unformatted 1/0".  This example runs a BDNA-shaped simulation
loop — compute a timestep, hand the trajectory record to the cluster's
interactive processor — under both I/O modes and shows where the time
goes.
"""

import numpy as np

from repro.cluster.ce import Compute, FileWrite
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.util.units import cycles_to_seconds
from repro.xylem.filesystem import IOMode


def run_simulation(mode: IOMode, steps: int = 12, atoms: int = 20_000) -> float:
    """A timestep loop: compute, then write the positions record."""
    machine = CedarMachine(CedarConfig())
    machine.filesystem.open("traj", mode)
    compute_cycles = 60_000  # ~10 ms of force evaluation per step

    def prog():
        positions = np.zeros(atoms)
        for _ in range(steps):
            yield Compute(compute_cycles)
            yield FileWrite("traj", positions)

    machine.run_programs({0: prog()})
    return cycles_to_seconds(machine.engine.now)


def main() -> None:
    formatted = run_simulation(IOMode.FORMATTED)
    unformatted = run_simulation(IOMode.UNFORMATTED)
    print("BDNA-shaped timestep loop (12 steps, 20K-atom records):")
    print(f"  formatted trajectory output:   {formatted:6.2f} s")
    print(f"  unformatted trajectory output: {unformatted:6.2f} s")
    print(f"  speedup from the one-line change: {formatted / unformatted:.1f}x")
    print()
    print("(Table 4: BDNA 118 s -> 70 s from exactly this change; the ~20x")
    print(" per-word ASCII-conversion penalty is in repro.xylem.filesystem.)")


if __name__ == "__main__":
    main()
