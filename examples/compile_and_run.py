"""From Fortran text to a Cedar execution estimate.

Run:  python examples/compile_and_run.py

The full software-stack pipeline on a user program: parse DO loops,
resolve CALLs against interprocedural summaries, restructure under
both compiler generations, and estimate the 32-CE execution time
through the application performance model.
"""

from repro.perf.model import CedarApplicationModel
from repro.perfect.profiles import CodeProfile, LoopProfile
from repro.restructurer.interprocedural import SubroutineSummary, SummaryRegistry
from repro.restructurer.parser import parse_program
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE
from repro.xylem.runtime import LoopKind

SOURCE = """
! a small simulation step: stencil update, force reduction, and a
! library call per particle
DO I = 1, 8192
  T = U(I+1) - U(I-1)
  UNEW(I) = U(I) + 0.5 * T
END DO
DO I = 1, 8192
  ENERGY = ENERGY + UNEW(I) * UNEW(I)
END DO
DO I = 1, 8192
  CALL APPLYBC(UNEW(I))
END DO
"""

#: what we know about the library routine (its author told us).
SUMMARIES = [
    SubroutineSummary("APPLYBC", reads=(0,), writes=(0,)),
]


def main() -> None:
    program = parse_program(SOURCE, name="usercode")
    registry = SummaryRegistry()
    for summary in SUMMARIES:
        registry.register(summary)
    cleared = registry.resolve_program(program)
    print("interprocedural resolution:", {k: v for k, v in cleared.items() if v})

    for pipeline in (KAP_PIPELINE, AUTOMATABLE_PIPELINE):
        report = pipeline.restructure(program)
        print(f"\n{pipeline.name}: coverage {report.parallel_coverage:.0%}")
        for verdict in report.verdicts:
            state = "DOALL " if verdict.parallel else "serial"
            extras = ", ".join(verdict.transforms) or "-"
            print(f"  {verdict.label:8s} {state} ({extras})")

    # wrap the parsed loops in a workload profile: 2000 timesteps of a
    # program whose serial step takes ~45 ms
    serial_seconds = 90.0
    loops = tuple(
        LoopProfile(
            label=loop.label,
            weight=loop.weight,
            invocations=2000,
            trips=loop.trips,
            kind=LoopKind.XDOALL,
            vector_speedup=4.0,
            global_vector_fraction=0.05,
        )
        for loop in program.loops
    )
    profile = CodeProfile(
        name="usercode",
        serial_seconds=serial_seconds,
        flops=serial_seconds * 8e6,
        loops=loops,
        serial_fraction=round(1.0 - sum(l.weight for l in loops), 6),
    )

    model = CedarApplicationModel()

    class _Wrapper:
        """Adapter: reuse the already-resolved program for both runs."""

        def __init__(self, pipeline):
            self.pipeline = pipeline
            self.name = pipeline.name

        def restructure(self, _program):
            return self.pipeline.restructure(program)

    print()
    for pipeline in (KAP_PIPELINE, AUTOMATABLE_PIPELINE):
        wrapper = _Wrapper(pipeline)
        spread = model.execute(profile, wrapper)
        confined = model.execute(profile, wrapper, confine_to_cluster=True)
        print(
            f"{pipeline.name:24s} XDOALL/32 CEs: {spread.seconds:6.1f} s "
            f"({spread.improvement:4.1f}x)   CDOALL/1 cluster: "
            f"{confined.seconds:6.1f} s ({confined.improvement:4.1f}x)"
        )
    print()
    print("the 1.8us iterations are smaller than the 30us XDOALL fetch, so")
    print("the machine-wide loops are scheduling-bound; confined to one")
    print("cluster's concurrency bus (CDOALL) the same code flies — the")
    print("Section 3.2 tradeoff, and why the Perfect rules allowed single-")
    print("cluster runs.  (Balanced stripmining would fix the XDOALL case.)")


if __name__ == "__main__":
    main()
