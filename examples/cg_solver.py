"""The PPT4 workload for real: a 5-diagonal conjugate-gradient solve.

Run:  python examples/cg_solver.py

Solves an SPD pentadiagonal system with the reference CG (validating
the numerics), then models its scalability on Cedar across processor
counts and problem sizes, and prints where the high-performance band
begins — the paper puts it "between 10K and 16K".
"""

import numpy as np

from repro.experiments.ppt4 import (
    CEDAR_PROCS,
    CedarCGModel,
    cedar_high_performance_crossover,
)
from repro.kernels.reference import (
    cg_flops_per_iteration,
    cg_solve,
    make_spd_pentadiag,
    pentadiag_matvec,
)
from repro.metrics.bands import band_for_speedup


def solve_for_real(n: int = 4096) -> None:
    diagonals = make_spd_pentadiag(n, seed=42)
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)
    b = pentadiag_matvec(diagonals, x_true)
    result = cg_solve(diagonals, b, tol=1e-10)
    err = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
    print(
        f"CG on a {n}-point 5-diagonal SPD system: {result.iterations} "
        f"iterations, relative error {err:.2e}, "
        f"{cg_flops_per_iteration(n) * result.iterations / 1e6:.1f} Mflop"
    )


def model_on_cedar() -> None:
    print("\nCedar CG scalability model (MFLOPS / band):")
    cg = CedarCGModel()
    sizes = (1024, 10_240, 16_384, 176_128)
    header = "  P  " + "".join(f"{n:>16d}" for n in sizes)
    print(header)
    for p in CEDAR_PROCS:
        cells = []
        for n in sizes:
            rate = cg.mflops(n, p)
            band = band_for_speedup(cg.speedup(n, p), p).value[:4]
            cells.append(f"{rate:9.1f} {band:>6s}")
        print(f" {p:3d} " + "".join(f"{c:>16s}" for c in cells))
    print(
        f"\nhigh-band crossover at 32 CEs: N = "
        f"{cedar_high_performance_crossover()} "
        "(paper: between 10K and 16K)"
    )


if __name__ == "__main__":
    solve_for_real()
    model_on_cedar()
