"""The Section 4.1 matrix primitive: a rank-64 update, three ways.

Run:  python examples/rank64_update.py [--small]

Computes A += B @ C for real (validating against numpy), then drives
the cycle-level simulator with the three Table 1 memory regimes
(GM/no-pref, GM/pref, GM/cache) and prints the measured MFLOPS next to
the paper's.
"""

import sys

import numpy as np

from repro.experiments.table1 import PAPER_TABLE1, render_table1, run_table1
from repro.kernels.reference import rank_k_flops, rank_k_update


def validate_the_mathematics(n: int = 256, k: int = 64) -> None:
    rng = np.random.default_rng(7)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, k))
    c = rng.standard_normal((k, n))
    expected = a + b @ c
    got = rank_k_update(a.copy(), b, c)
    assert np.allclose(got, expected)
    print(f"rank-{k} update on a {n}x{n} matrix: "
          f"{rank_k_flops(n, k) / 1e6:.1f} Mflop, verified against numpy")


def run_the_memory_study(a_strips: int) -> None:
    print("\nsimulating the three Table 1 versions "
          f"({a_strips} accumulator strips per CE) ...")
    rows = run_table1(a_strips=a_strips)
    print(render_table1(rows))
    print("\nreading the table:")
    print("  - GM/no-pref is pinned by the 13-cycle latency x 2 requests;")
    print("  - GM/pref overlaps 256-word prefetch blocks but saturates the")
    print("    global memory beyond two clusters;")
    print("  - GM/cache blocks into the cluster caches and scales linearly")
    print("    to 74% of the 274 MFLOPS effective peak.")


if __name__ == "__main__":
    validate_the_mathematics()
    strips = 1 if "--small" in sys.argv else 2
    run_the_memory_study(strips)
