"""Quickstart: build Cedar, touch every layer once.

Run:  python examples/quickstart.py

Walks through (1) the simulated machine and its unloaded memory path,
(2) a Cedar Fortran program that really computes, and (3) one Perfect
code through both compiler pipelines.
"""

import numpy as np

from repro import CedarConfig, CedarMachine
from repro.cluster.ce import AwaitStream, StartPrefetch
from repro.fortran import CedarFortran
from repro.perf.model import CedarApplicationModel
from repro.perfect.profiles import PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


def simulate_a_prefetch() -> None:
    print("== 1. the machine ==")
    machine = CedarMachine(CedarConfig(), monitor_port=0)
    for key, value in machine.describe_topology().items():
        print(f"  {key}: {value}")

    def program():
        stream = yield StartPrefetch(length=32, stride=1, address=0)
        yield AwaitStream(stream)

    machine.run_programs({0: program()})
    summary = machine.probe.summary()
    print(
        f"  one 32-word prefetch: first-word latency "
        f"{summary.first_word_latency:.1f} cycles, interarrival "
        f"{summary.interarrival:.2f} cycles (paper minima: 8 and 1)\n"
    )


def run_cedar_fortran() -> None:
    print("== 2. Cedar Fortran ==")
    cf = CedarFortran()
    n = 4096
    x = cf.global_array(np.linspace(0.0, 1.0, n), name="X")
    y = cf.global_array(np.zeros(n), name="Y")

    # y = 2x + 1 as a chained vector operation on GLOBAL data
    cf.vector_op(lambda a: 2.0 * a + 1.0, y, x)

    # a parallel reduction over all 32 CEs
    total = cf.reduction(np.sum, y)
    print(f"  sum(2x + 1) over {n} points = {total:.2f}")
    print(f"  simulated time: {cf.clock_us:.1f} us "
          f"({cf.vector_ops} vector ops)\n")


def restructure_a_perfect_code() -> None:
    print("== 3. the restructurer on a Perfect code ==")
    model = CedarApplicationModel()
    code = PERFECT_CODES["MDG"]
    kap = model.execute(code, KAP_PIPELINE)
    auto = model.execute(code, AUTOMATABLE_PIPELINE)
    print(f"  MDG serial: {code.serial_seconds:.0f}s")
    print(f"  Kap/Cedar:   {kap.seconds:7.1f}s ({kap.improvement:4.1f}x)"
          f"  [paper: 3200s (1.3x)]")
    print(f"  automatable: {auto.seconds:7.1f}s ({auto.improvement:4.1f}x)"
          f"  [paper: 182s (22.7x)]")
    report = model.restructure(code, AUTOMATABLE_PIPELINE)
    for verdict in report.verdicts:
        status = "DOALL" if verdict.parallel else "serial"
        print(f"    loop {verdict.label}: {status}"
              f" via {list(verdict.transforms) or 'no transforms'}")


if __name__ == "__main__":
    simulate_a_prefetch()
    run_cedar_fortran()
    restructure_a_perfect_code()
