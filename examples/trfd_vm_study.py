"""The TRFD virtual-memory story ([MaEG92]), reproduced.

Run:  python examples/trfd_vm_study.py

The hand-optimized multicluster TRFD was mysteriously slow: "almost
four times the number of page faults relative to the one-cluster
version ... close to 50% of the time in virtual memory activity.  The
extra faults are TLB miss faults as each additional cluster of a
multicluster version first accesses pages for which a valid PTE exists
in global memory."  The fix was a distributed-memory version.

This walks the same investigation on the VM substrate.
"""

from repro.core.config import VMConfig
from repro.vm.paging import VirtualMemory


def run_passes(vm, pages, clusters, distributed, passes=6):
    quarter = pages // 4
    for _ in range(passes):
        for cluster in range(clusters):
            if distributed:
                start = cluster * quarter * vm.config.page_bytes
                vm.touch_range(start, quarter * vm.config.page_bytes, cluster)
            else:
                vm.touch_range(0, pages * vm.config.page_bytes, cluster)
            for tlb in vm.tlbs:
                tlb.flush()  # working set far beyond TLB reach


def study(label, clusters, distributed):
    cfg = VMConfig()
    pages = 5120  # ~20 MB of integral-transform data
    vm = VirtualMemory(cfg, clusters=4)
    run_passes(vm, pages, clusters, distributed)
    cycles = vm.stats.fault_cycles
    seconds = cycles * 170e-9
    print(f"  {label:34s} page faults {vm.stats.page_faults:6d}  "
          f"TLB-miss faults {vm.stats.tlb_miss_faults:7d}  "
          f"VM time {seconds:5.2f} s")
    return vm


def main() -> None:
    print("TRFD working set: 5120 pages (20 MB), 6 passes, TLBs thrash\n")
    one = study("one cluster", clusters=1, distributed=False)
    four = study("four clusters, shared data", clusters=4, distributed=False)
    dist = study("four clusters, distributed data", clusters=4, distributed=True)

    ratio = four.faults / one.faults
    print(f"\n  multicluster/one-cluster fault ratio: {ratio:.1f}x "
          "(paper: 'almost four times')")

    def steady_cycles(vm):
        # exclude the one-time page population: the data is resident in
        # the measured phase; TLB-miss servicing is the recurring cost
        return vm.stats.tlb_miss_faults * vm.config.tlb_miss_cycles

    saving = 1 - steady_cycles(dist) / steady_cycles(four)
    print(f"  distributed data removes {saving:.0%} of the steady-state "
          "TLB-miss traffic —")
    print("  the step that took TRFD from 11.5 s to 7.5 s in Table 4")


if __name__ == "__main__":
    main()
