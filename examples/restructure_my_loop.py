"""Feed your own Fortran-style loops to the Cedar restructurer.

Run:  python examples/restructure_my_loop.py

Parses a handful of DO loops in the supported dialect and shows what
the 1988 KAP pipeline vs the paper's "automatable" pipeline can do
with each — exactly the Section 3.3 experiment, on your code.
"""

from repro.restructurer.parser import parse_loop
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE

EXAMPLES = {
    "clean vector loop": """
        DO I = 1, 1000
          Y(I) = 2.0 * X(I) + Z(I)
        END DO
    """,
    "scalar temporary": """
        DO I = 1, 1000
          T = X(I) * X(I)
          Y(I) = T + SQRT(T)
        END DO
    """,
    "array workspace (the MDG/BDNA pattern)": """
        DO I = 1, 512
          W(1) = X(I)
          W(2) = X(I+1)
          Y(I) = W(1) * W(2)
        END DO
    """,
    "sum reduction": """
        DO I = 1, 4096
          S = S + X(I) * Y(I)
        END DO
    """,
    "additive induction (KAP handles it)": """
        DO I = 1, 100
          K = K + 3
          Y(I) = A(K)
        END DO
    """,
    "multiplicative induction (the TRFD pattern)": """
        DO I = 1, 100
          K = K * 2
          Y(I) = A(K)
        END DO
    """,
    "gather/scatter (the OCEAN pattern)": """
        DO I = 1, 2048
          B(IDX(I)) = B(IDX(I)) + X(I)
        END DO
    """,
    "true recurrence (never parallel)": """
        DO I = 2, 1000
          Y(I) = Y(I-1) * 0.99 + X(I)
        END DO
    """,
}


def main() -> None:
    width = max(len(n) for n in EXAMPLES)
    print(f"{'loop':{width}s}  {'Kap/Cedar':>10s}  {'automatable':>12s}  transforms")
    for name, source in EXAMPLES.items():
        loop = parse_loop(source)
        kap = KAP_PIPELINE.restructure_loop(loop)
        loop.reset_analysis()
        auto = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        kap_s = "DOALL" if kap.parallel else "serial"
        auto_s = "DOALL" if auto.parallel else "serial"
        extra = ", ".join(auto.transforms) or "-"
        print(f"{name:{width}s}  {kap_s:>10s}  {auto_s:>12s}  {extra}")
        if not auto.parallel:
            blocker = auto.blockers[0]
            print(f"{'':{width}s}  blocked by: {blocker.kind.value} dependence "
                  f"on {blocker.array}"
                  + (f" at distance {blocker.distance}" if blocker.distance else ""))


if __name__ == "__main__":
    main()
