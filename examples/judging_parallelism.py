"""The Section 4.3 methodology: the Practical Parallelism Tests.

Run:  python examples/judging_parallelism.py

Applies PPT1..PPT4 to Cedar, the Cray YMP-8, and the CM-5, printing
each verdict with its evidence, and closes with the PPT5 statement.
"""

from repro.experiments.fig3 import band_census, render_fig3, run_fig3
from repro.experiments.ppt4 import run_ppt4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.metrics.bands import Band
from repro.metrics.ppt import (
    PPT5_STATEMENT,
    ppt1_delivered_performance,
    ppt2_stable_performance,
)
from repro.perfect.profiles import PERFECT_CODES


def ppt1() -> None:
    print("== PPT1: delivered performance (Fig. 3 ensemble) ==")
    points = run_fig3()
    cedar = ppt1_delivered_performance(
        "Cedar", {p.code: p.cedar_efficiency * 32 for p in points}, 32
    )
    ymp = ppt1_delivered_performance(
        "Cray YMP-8", {p.code: p.ymp_efficiency * 8 for p in points}, 8
    )
    for res in (cedar, ymp):
        bands = {b.value: len(v) for b, v in res.bands.items()}
        verdict = "PASS" if res.passes else "FAIL"
        print(f"  {res.machine:10s} {bands}  -> {verdict}")
    print(render_fig3(points))


def ppt2() -> None:
    print("\n== PPT2: stable performance (Table 5) ==")
    for row in run_table5():
        res = ppt2_stable_performance(row.machine, [1.0], small_e=2)  # shape only
        print(
            f"  {row.machine:10s} In(13,0)={row.instabilities[0]:7.1f}  "
            f"exceptions to reach In<=5: {row.exceptions_for_workstation_stability}"
            f"  -> {'PASS' if row.exceptions_for_workstation_stability <= 3 else 'FAIL'}"
        )


def ppt3() -> None:
    print("\n== PPT3: portability/programmability (Table 6) ==")
    result = run_table6()
    for res in (result.cedar, result.ymp):
        h, i, u = res.counts
        print(f"  {res.machine:10s} high={h} intermediate={i} unacceptable={u}")
    print("  -> compilers reach acceptable levels for most codes on Cedar;")
    print("     'we can expect PPT3 to be passed by parallel systems in the")
    print("     near future'")


def ppt4() -> None:
    print("\n== PPT4: scalability (CG on Cedar, banded matvec on CM-5) ==")
    study = run_ppt4()
    high = study.cedar.scalable_at(Band.HIGH)
    print(f"  Cedar CG: high band at {len(high)} (P, N) points; "
          f"smallest high-band N at 32 CEs: "
          f"{min(n for p, n in high if p == 32)}")
    for bw, result in study.cm5.items():
        bands = {b.value for b in result.grid.values()}
        print(f"  CM-5 BW={bw}: bands observed = {sorted(bands)}")
    print("  -> Cedar scalable with high performance for large problems;")
    print("     CM-5 scalable with intermediate performance")


def ppt5() -> None:
    print("\n== PPT5 ==")
    print(f"  {PPT5_STATEMENT}")


if __name__ == "__main__":
    print(f"ensemble: {len(PERFECT_CODES)} Perfect codes\n")
    ppt1()
    ppt2()
    ppt3()
    ppt4()
    ppt5()
