"""Hunting the bottleneck of a kernel run, Cedar-style.

Run:  python examples/bottleneck_hunt.py

Runs the RK kernel on 8 and 32 CEs, then uses the analysis toolkit
(the software half of the paper's performance-monitoring story) to
show where the machine spends its time: utilization by subsystem, the
most contended resources, and a heat strip of the network stages and
memory modules.
"""

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.kernels.programs import KERNELS, kernel_program
from repro.monitor.analysis import bottlenecks, stage_heat_strip, utilization_report


def hunt(n_ces: int) -> None:
    machine = CedarMachine(CedarConfig(), monitor_port=0)
    programs = {
        port: kernel_program(KERNELS["RK"], port, 6, prefetch=True)
        for port in range(n_ces)
    }
    machine.run_programs(programs)
    print(f"== RK on {n_ces} CEs ==")
    summary = machine.probe.summary()
    print(f"  monitored CE: latency {summary.first_word_latency:.1f} cyc, "
          f"interarrival {summary.interarrival:.2f} cyc")
    print("  subsystem utilization:")
    for name, value in sorted(utilization_report(machine).items()):
        bar = "#" * int(value * 40)
        print(f"    {name:28s} {value:5.1%} |{bar}")
    print("  most contended resources (pressure = busy + blocked):")
    for report in bottlenecks(machine, top=3):
        print(f"    {report.name:16s} busy {report.utilization:5.1%}  "
              f"blocked {report.blocked_fraction:5.1%}")
    print(stage_heat_strip(machine))
    print()


if __name__ == "__main__":
    hunt(8)
    hunt(32)
    print("reading it: at 8 CEs the machine is comfortable; at 32 the")
    print("memory modules saturate and backpressure floods the injection")
    print("ports — Table 2's latency/interarrival growth, seen from inside.")
