"""Setuptools shim: lets ``pip install -e . --no-use-pep517`` work on
environments without the ``wheel`` package (metadata in pyproject.toml)."""

from setuptools import setup

setup()
