"""Global memory modules as queueing resources.

A :class:`MemoryModule` is a :class:`~repro.network.resource.Resource`
sitting at the end of a forward-network route.  When a request packet's
service (the memory access) completes, the module transforms it in place
into the reply packet and hands it off into the reverse network — if the
reverse injection queue is full, the module blocks, which is how memory
backpressure propagates into the forward network.

The request→reply turn is the allocation pivot of the whole simulator:
one packet per global reference used to become two (request + reply).
The module now rewrites the request **in place**
(:meth:`~repro.network.packet.Packet.become_reply` — same object, same
``request_id``, same ``meta`` dict) and splices the reverse route by
tuple concatenation, so a read round trip allocates no second packet and
no hop lists.  Consumed packets (stores, which send no acknowledgement)
are handed back to the packet free list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import GlobalMemoryConfig
from repro.core.engine import Engine
from repro.monitor.signals import NULL_SIGNAL
from repro.network.omega import OmegaNetwork
from repro.network.packet import Packet, PacketKind
from repro.network.resource import Hop, Resource, Transit
from repro.gmemory.sync import SyncProcessor
from repro.perf.batch import np as _np


class MemoryModule(Resource):
    """One interleaved global-memory module with its sync processor."""

    __slots__ = (
        "index",
        "config",
        "reverse_network",
        "sync",
        "reads",
        "writes",
        "sync_ops",
        "ecc_retries",
        "sync_timeouts",
        "service_signal",
        "sync_signal",
    )

    def __init__(
        self,
        engine: Engine,
        index: int,
        config: GlobalMemoryConfig,
        reverse_network: Optional[OmegaNetwork] = None,
    ) -> None:
        super().__init__(
            engine,
            name=f"gm[{index}]",
            capacity_words=config.module_queue_words,
            words_per_cycle=1.0,
            fixed_cycles=0.0,
            recovery_cycles=config.recovery_cycles,
        )
        self.index = index
        self.config = config
        self.reverse_network = reverse_network
        self.sync = SyncProcessor()
        self.reads = 0
        self.writes = 0
        self.sync_ops = 0
        #: fault-injection counters, bumped by the module's fault site.
        self.ecc_retries = 0
        self.sync_timeouts = 0
        #: monitoring channels, wired by :meth:`GlobalMemory.attach`.
        self.service_signal = NULL_SIGNAL
        self.sync_signal = NULL_SIGNAL

    # -- Resource overrides --------------------------------------------------

    def service_cycles(self, packet: Packet) -> float:
        cycles = float(self.config.access_cycles)
        if packet.kind in (PacketKind.SYNC_REQ,):
            cycles += self.config.sync_op_cycles
        if packet.kind is PacketKind.BLOCK_REQ:
            # block reads stream out of the module a word per access slot
            requested = packet.meta.get("block_words", 1)
            cycles += max(0, requested - 1)
        return cycles

    def on_service_complete(self, transit: Transit) -> bool:
        packet = transit.packet
        sig = self.service_signal
        if sig.callbacks:
            # recomputing the service time here costs nothing on the
            # unmonitored path (we are inside the subscriber guard); it
            # gives the monitors per-module service-time histograms.
            sig.emit(self.index, packet, self.engine.now, self.service_cycles(packet))
        request_words = packet.words
        kind = packet.kind
        if kind is PacketKind.READ_REQ:
            self.reads += 1
            packet.become_reply(PacketKind.READ_REPLY, words=1)
        elif kind is PacketKind.WRITE_REQ:
            # "Writes do not stall a CE" — no acknowledgement travels
            # back through the network, but the weakly-ordered memory
            # system lets a CE *fence*: completion callbacks let the
            # machine track outstanding stores per CE.
            self.writes += 1
            on_done = packet.meta.get("on_write_done")
            if on_done is not None:
                on_done(packet)
            # consumed here: the departure emissions in _pop_head still
            # read its fields (reuse cannot happen before _advance runs)
            packet.release()
            return False
        elif kind is PacketKind.BLOCK_REQ:
            self.reads += 1
            requested = packet.meta.get("block_words", 1)
            # reply: control word + data, capped at the 4-word packet limit
            packet.become_reply(PacketKind.BLOCK_REPLY, words=min(1 + requested, 4))
        elif kind is PacketKind.SYNC_REQ:
            self.sync_ops += 1
            result = self._execute_sync(packet)
            packet.become_reply(PacketKind.SYNC_REPLY, words=1)
            packet.meta["sync_result"] = result
        else:
            raise ValueError(f"memory module cannot service packet kind {kind}")
        self._words_queued += packet.words - request_words
        self._extend_route_into_reverse(transit, packet)
        return True

    def _execute_sync(self, packet: Packet):
        operation = packet.meta.get("sync")
        if operation is None:
            result = self.sync.test_and_set(packet.address)
        else:
            test, test_operand, op, op_operand = operation
            result = self.sync.test_and_op(
                packet.address, test, test_operand, op, op_operand
            )
        sig = self.sync_signal
        if sig.callbacks:
            sig.emit(
                self.index, packet.address, self.engine.now, packet, result.success
            )
        return result

    def _extend_route_into_reverse(self, transit: Transit, reply: Packet) -> None:
        """Splice the reverse-network route after this module.

        Request routes end at the module; the reply continues through the
        reverse network back to the requesting port.
        """
        if self.reverse_network is None:
            return
        if transit.idx != len(transit.route) - 1:
            return  # route already extends past the module
        rev_route = self.reverse_network.route_for(reply)
        transit.route = (*transit.route, *rev_route)
        reply.injected_at = self.engine.now


class GlobalMemory:
    """The set of interleaved modules plus address-steering helpers."""

    def __init__(
        self,
        engine: Engine,
        config: GlobalMemoryConfig,
        reverse_network: Optional[OmegaNetwork] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.modules: List[MemoryModule] = [
            MemoryModule(engine, i, config, reverse_network)
            for i in range(config.modules)
        ]
        self._n_modules = config.modules
        #: per-module route tails, shared by every request to the module
        #: (tuples, so :meth:`route_tail` allocates nothing per packet).
        self._tails: Tuple[Tuple[Hop, ...], ...] = tuple(
            (m,) for m in self.modules
        )

    # -- component lifecycle ---------------------------------------------------

    def attach(self, ctx) -> None:
        """Give every module its per-module ``gmem.service`` / ``sync.op``
        monitoring channels, plus the shared queue-occupancy channels
        (keyed ``"gmem"`` so one subscription covers every module)."""
        enqueue = ctx.bus.signal("net.enqueue", key="gmem")
        dequeue = ctx.bus.signal("net.dequeue", key="gmem")
        span = ctx.bus.signal("net.span", key="gmem")
        for module in self.modules:
            module.service_signal = ctx.bus.signal("gmem.service", key=module.index)
            module.sync_signal = ctx.bus.signal("sync.op", key=module.index)
            module.enqueue_signal = enqueue
            module.dequeue_signal = dequeue
            module.span_signal = span

    def reset(self) -> None:
        for module in self.modules:
            module.reset()
            module.reads = module.writes = module.sync_ops = 0
            module.ecc_retries = module.sync_timeouts = 0
            module.sync = SyncProcessor()

    def stats(self) -> dict:
        if _np is not None:
            arrays = self.module_state_arrays()
            return {
                "reads": int(arrays["reads"].sum()),
                "writes": int(arrays["writes"].sum()),
                "sync_ops": int(arrays["sync_ops"].sum()),
                "busy_cycles": float(arrays["busy_cycles"].sum()),
                "ecc_retries": int(arrays["ecc_retries"].sum()),
                "sync_timeouts": int(arrays["sync_timeouts"].sum()),
            }
        return {
            "reads": self.total_reads,
            "writes": self.total_writes,
            "sync_ops": self.total_sync_ops,
            "busy_cycles": sum(m.stats.busy_cycles for m in self.modules),
            "ecc_retries": sum(m.ecc_retries for m in self.modules),
            "sync_timeouts": sum(m.sync_timeouts for m in self.modules),
        }

    def module_state_arrays(self) -> dict:
        """Parallel-array snapshot of per-module state (length
        ``config.modules``): access counters (``reads``, ``writes``,
        ``sync_ops``, ``ecc_retries``, ``sync_timeouts``), service
        accounting (``busy_cycles``, ``words``), and instantaneous bank
        state (``queued_words``, ``busy``).

        The numpy seam for whole-population aggregation over the
        interleaved banks — module-utilization histograms, conflict
        analysis — mirroring ``OmegaNetwork.stage_state_arrays``.  The
        per-batch service path stays scalar (batch widths sit far below
        the ufunc break-even; see :mod:`repro.perf.batch`).  Requires
        numpy; callers without it use the scalar ``stats()`` fallback.
        """
        if _np is None:
            raise RuntimeError("module_state_arrays requires numpy")
        mods = self.modules
        n = len(mods)

        def _gather(values, dtype):
            return _np.fromiter(values, dtype=dtype, count=n)

        return {
            "reads": _gather((m.reads for m in mods), _np.int64),
            "writes": _gather((m.writes for m in mods), _np.int64),
            "sync_ops": _gather((m.sync_ops for m in mods), _np.int64),
            "ecc_retries": _gather((m.ecc_retries for m in mods), _np.int64),
            "sync_timeouts": _gather(
                (m.sync_timeouts for m in mods), _np.int64
            ),
            "busy_cycles": _gather(
                (m.stats.busy_cycles for m in mods), _np.float64
            ),
            "words": _gather((m.stats.words for m in mods), _np.int64),
            "queued_words": _gather((m.queued_words for m in mods), _np.int64),
            "busy": _gather((m._serving for m in mods), _np.bool_),
        }

    def describe(self) -> dict:
        return {
            "modules": self.config.modules,
            "size_mb": self.config.size_bytes // (1 << 20),
            "access_cycles": self.config.access_cycles,
            "recovery_cycles": self.config.recovery_cycles,
            "module_queue_words": self.config.module_queue_words,
        }

    # -- address steering ------------------------------------------------------

    def module_for(self, word_address: int) -> MemoryModule:
        return self.modules[word_address % self._n_modules]

    def route_tail(self, word_address: int) -> Sequence[Hop]:
        """Forward-route tail for a request to ``word_address``: just the
        owning module (the reply route is spliced on service completion).
        A shared immutable tuple — do not mutate."""
        return self._tails[word_address % self._n_modules]

    @property
    def total_reads(self) -> int:
        return sum(m.reads for m in self.modules)

    @property
    def total_writes(self) -> int:
        return sum(m.writes for m in self.modules)

    @property
    def total_sync_ops(self) -> int:
        return sum(m.sync_ops for m in self.modules)
