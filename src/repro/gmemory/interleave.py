"""Interleaving arithmetic for the global memory.

"Global memory is double-word (8 byte) interleaved and aligned"
(Section 2): consecutive 64-bit words live in consecutive modules, so a
stride-1 vector sweep visits every module round-robin — the access
pattern the network and memory bandwidth figures are quoted for.
"""

from __future__ import annotations

from typing import Iterator, List


def module_for_address(word_address: int, n_modules: int) -> int:
    """Module holding 64-bit word ``word_address``.

    >>> module_for_address(33, 32)
    1
    """
    if word_address < 0:
        raise ValueError("word address must be non-negative")
    if n_modules < 1:
        raise ValueError("need at least one module")
    return word_address % n_modules


def sweep_modules(start: int, length: int, stride: int, n_modules: int) -> List[int]:
    """Modules visited by a vector access of ``length`` words from word
    address ``start`` with word ``stride``.

    >>> sweep_modules(0, 4, 1, 32)
    [0, 1, 2, 3]
    >>> sweep_modules(0, 4, 32, 32)   # pathological stride: one hot module
    [0, 0, 0, 0]
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    return [module_for_address(start + k * stride, n_modules) for k in range(length)]


def iter_addresses(start: int, length: int, stride: int) -> Iterator[int]:
    """Word addresses of a strided vector access."""
    for k in range(length):
        yield start + k * stride
