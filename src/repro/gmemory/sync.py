"""The per-module synchronization processor.

"Cedar synchronization instructions implement Test-And-Operate, where
Test is any relational operation on 32-bit data (e.g. >) and Operate is
a Read, Write, Add, Subtract, or Logical operation on 32-bit data"
(Section 2, after [ZhYe87]).  The instruction is indivisible because it
executes entirely inside the memory module.

This component is *functional*: the runtime library's loop
self-scheduling and the synchronization tests really execute through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict

_MASK32 = 0xFFFFFFFF


def _to_signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & (1 << 31) else value


class TestOp(Enum):
    """Relational tests available to Test-And-Operate."""

    ALWAYS = "always"
    EQ = "=="
    NE = "!="
    GT = ">"
    GE = ">="
    LT = "<"
    LE = "<="


class SyncOp(Enum):
    """Operations performed when the test succeeds."""

    READ = "read"
    WRITE = "write"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"


_TESTS: Dict[TestOp, Callable[[int, int], bool]] = {
    TestOp.ALWAYS: lambda a, b: True,
    TestOp.EQ: lambda a, b: a == b,
    TestOp.NE: lambda a, b: a != b,
    TestOp.GT: lambda a, b: a > b,
    TestOp.GE: lambda a, b: a >= b,
    TestOp.LT: lambda a, b: a < b,
    TestOp.LE: lambda a, b: a <= b,
}


@dataclass(frozen=True)
class SyncResult:
    """Outcome of an indivisible synchronization instruction."""

    success: bool
    old_value: int
    new_value: int


class SyncProcessor:
    """The special processor in each memory module.

    Values are 32-bit; arithmetic wraps.  All addresses are word
    addresses local to no particular layout — the processor simply owns
    the synchronization variables that map to its module.
    """

    def __init__(self) -> None:
        self._store: Dict[int, int] = {}
        self.operations = 0

    def peek(self, address: int) -> int:
        """Non-destructive read (for tests and debugging)."""
        return _to_signed(self._store.get(address, 0))

    def poke(self, address: int, value: int) -> None:
        """Initialize a synchronization variable."""
        self._store[address] = value & _MASK32

    def test_and_set(self, address: int) -> SyncResult:
        """Classic Test-And-Set: returns the old value, sets to 1."""
        return self.test_and_op(address, TestOp.ALWAYS, 0, SyncOp.WRITE, 1)

    def test_and_op(
        self,
        address: int,
        test: TestOp,
        test_operand: int,
        op: SyncOp,
        op_operand: int = 0,
    ) -> SyncResult:
        """Indivisibly test the 32-bit word at ``address`` and, if the
        test succeeds, apply ``op``; returns old/new values and success.
        """
        self.operations += 1
        old = _to_signed(self._store.get(address, 0))
        if not _TESTS[test](old, _to_signed(test_operand)):
            return SyncResult(success=False, old_value=old, new_value=old)
        new = old
        if op is SyncOp.READ:
            new = old
        elif op is SyncOp.WRITE:
            new = op_operand
        elif op is SyncOp.ADD:
            new = old + op_operand
        elif op is SyncOp.SUB:
            new = old - op_operand
        elif op is SyncOp.AND:
            new = old & op_operand
        elif op is SyncOp.OR:
            new = old | op_operand
        elif op is SyncOp.XOR:
            new = old ^ op_operand
        self._store[address] = new & _MASK32
        return SyncResult(success=True, old_value=old, new_value=_to_signed(new & _MASK32))

    def fetch_and_add(self, address: int, increment: int = 1) -> int:
        """Convenience: unconditional add returning the old value — the
        primitive the runtime library uses for loop self-scheduling."""
        return self.test_and_op(address, TestOp.ALWAYS, 0, SyncOp.ADD, increment).old_value


def format_sync_op(operation) -> str:
    """Human-readable rendering of a packet's ``meta["sync"]`` tuple
    (``None`` is the bare Test-And-Set) for span waterfalls and reports."""
    if operation is None:
        return "test-and-set"
    test, test_operand, op, op_operand = operation
    if test is TestOp.ALWAYS:
        condition = "always"
    else:
        condition = f"{test.value} {test_operand}"
    return f"if {condition}: {op.value} {op_operand}"
