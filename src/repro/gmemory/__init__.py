"""Cedar global shared memory.

64 MB of double-word-interleaved globally addressable memory.  Each
module services ordinary reads/writes and contains a synchronization
processor executing indivisible Test-And-Set / Test-And-Operate
instructions (Zhu & Yew 1987), because "given multistage interconnection
networks it is impossible to provide standard lock cycles" (Section 2).
"""

from repro.gmemory.interleave import module_for_address, sweep_modules
from repro.gmemory.sync import SyncOp, SyncProcessor, SyncResult, TestOp
from repro.gmemory.module import GlobalMemory, MemoryModule

__all__ = [
    "module_for_address",
    "sweep_modules",
    "SyncOp",
    "SyncProcessor",
    "SyncResult",
    "TestOp",
    "GlobalMemory",
    "MemoryModule",
]
