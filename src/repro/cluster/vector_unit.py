"""Instruction-level model of the Alliant CE's vector unit.

"The CE is a pipelined implementation of the 68020 instruction set
augmented with vector instructions. ... The vector unit implements
64-bit floating-point as well as integer operations.  Vector
instructions can have a register-memory format with one memory
operand.  The vector unit contains eight 32-word registers."

This model executes small instruction sequences and accounts their
cycles: per-instruction pipeline startup, one element per cycle per
functional-unit pass, *chaining* of dependent vector operations (the
multiply feeding an add streams through both pipes at one element per
cycle — which is how the 170 ns CE reaches its 11.8 MFLOPS peak), and
the memory-operand stream rates of the cluster cache / cluster memory
/ global paths.

The higher layers' timing constants (the 12-cycle vector startup, the
2 flops/cycle chained peak, the scalar loop overhead per strip) are
*derived* here and pinned by tests, rather than asserted ad hoc.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple


class Operand(Enum):
    """Where a vector instruction's memory operand streams from."""

    NONE = "none"            # register-register
    CACHE = "cache"          # cluster cache hit stream: 1 word/cycle
    CLUSTER = "cluster"      # cluster memory: 1 word / 2 cycles
    GLOBAL_PREF = "gpref"    # prefetched global: ~1.15 cycles/word
    GLOBAL = "global"        # non-prefetched global: 6.5 cycles/word


#: per-word stream cost of each operand source, in cycles.
OPERAND_CYCLES: Dict[Operand, float] = {
    Operand.NONE: 0.0,
    Operand.CACHE: 1.0,
    Operand.CLUSTER: 2.0,
    Operand.GLOBAL_PREF: 1.15,
    Operand.GLOBAL: 6.5,
}

#: pipeline fill of a vector instruction (address generation, first
#: element through the arithmetic pipe).
VECTOR_STARTUP_CYCLES = 12.0

#: cycles per simple scalar (68020) instruction.
SCALAR_CYCLES = 2.0

_ids = itertools.count()


@dataclass(frozen=True)
class VectorInstruction:
    """One register-memory or register-register vector instruction."""

    op: str                       # "vmul", "vadd", "vmuladd", "vload", "vstore"
    length: int = 32
    operand: Operand = Operand.NONE
    #: register the result lands in (for chaining analysis).
    dest: int = 0
    #: registers read.
    sources: Tuple[int, ...] = ()
    uid: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if not 1 <= self.length <= 32:
            raise ValueError("vector length must be 1..32 (one register)")
        if self.op not in ("vmul", "vadd", "vmuladd", "vload", "vstore"):
            raise ValueError(f"unknown vector op {self.op!r}")

    @property
    def flops_per_element(self) -> int:
        return {"vmul": 1, "vadd": 1, "vmuladd": 2, "vload": 0, "vstore": 0}[self.op]


@dataclass(frozen=True)
class Scalar:
    """A block of scalar 68020 instructions (loop control, addressing)."""

    count: int = 1


@dataclass(frozen=True)
class ExecutionReport:
    cycles: float
    flops: int
    chained_pairs: int

    @property
    def flops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles else 0.0

    def mflops(self, cycle_ns: float = 170.0) -> float:
        seconds = self.cycles * cycle_ns * 1e-9
        return self.flops / seconds / 1e6 if seconds else 0.0


class VectorUnit:
    """Executes an instruction sequence, modelling chaining.

    Chaining rule: a vector instruction whose *sources* include the
    previous vector instruction's *dest* register, with the same
    length, chains — the pair shares one startup + one element stream
    instead of paying each separately (the classic multiply-into-add
    chain: 2 flops per element per cycle).  At most two functional
    units chain (multiplier + adder).
    """

    def execute(self, program: Sequence) -> ExecutionReport:
        cycles = 0.0
        flops = 0
        chained = 0
        prev: Optional[VectorInstruction] = None
        prev_charged = False
        for item in program:
            if isinstance(item, Scalar):
                cycles += item.count * SCALAR_CYCLES
                prev = None
                prev_charged = False
                continue
            if not isinstance(item, VectorInstruction):
                raise TypeError(f"cannot execute {item!r}")
            flops += item.flops_per_element * item.length
            if (
                prev is not None
                and prev_charged
                and prev.dest in item.sources
                and prev.length == item.length
                and prev.op != "vstore"
                and item.op != "vload"
            ):
                # chained: rides the existing element stream; only the
                # extra memory-operand traffic (if any) can slow it.
                extra = OPERAND_CYCLES[item.operand]
                base = max(1.0, OPERAND_CYCLES.get(prev.operand, 1.0))
                if extra > base:
                    cycles += (extra - base) * item.length
                chained += 1
                prev = item
                prev_charged = False  # a chain is two units deep at most
                continue
            per_element = max(1.0, OPERAND_CYCLES[item.operand])
            cycles += VECTOR_STARTUP_CYCLES + per_element * item.length
            prev = item
            prev_charged = True
        return ExecutionReport(cycles=cycles, flops=flops, chained_pairs=chained)


def peak_chained_kernel(strips: int = 64) -> List:
    """The peak-rate kernel: cached multiply chained into an add,
    strip-mined with minimal scalar glue — the '2 chained operations
    per memory request' coding style of Section 4.1."""
    program: List = []
    for _ in range(strips):
        program.append(Scalar(count=0))
        mul = VectorInstruction("vmul", operand=Operand.CACHE, dest=1, sources=(0,))
        add = VectorInstruction("vadd", operand=Operand.NONE, dest=2, sources=(1, 2))
        program.extend([mul, add])
    return program


def derived_peak_mflops(cycle_ns: float = 170.0) -> float:
    """The CE's absolute peak: the *streaming* rate of a chained
    multiply-add, net of the one-time pipeline fill — 2 flops/element
    at 1 element/cycle => 11.76 MFLOPS at 170 ns.  (Real strip-mined
    code cannot hide the per-strip startup, which is exactly why the
    machine's effective peak is 274 rather than 376 MFLOPS — see
    :func:`derived_effective_fraction`.)"""
    unit = VectorUnit()
    report = unit.execute(peak_chained_kernel(strips=1))
    streaming_cycles = report.cycles - VECTOR_STARTUP_CYCLES
    seconds = streaming_cycles * cycle_ns * 1e-9
    return report.flops / seconds / 1e6


def derived_effective_fraction() -> float:
    """Effective/absolute peak ratio from the per-strip startup:
    32 / (32 + 12) ~ 0.727 — the 274-of-376 MFLOPS story."""
    unit = VectorUnit()
    report = unit.execute(peak_chained_kernel(strips=256))
    ideal_cycles = 256 * 32  # one element per cycle, no startups
    return ideal_cycles / report.cycles
