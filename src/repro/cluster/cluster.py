"""One Alliant FX/8 cluster: shared cache, cluster memory, CCB."""

from __future__ import annotations

from typing import Callable, List, TYPE_CHECKING

from repro.network.packet import Packet, PacketKind
from repro.network.resource import Resource, Transit
from repro.cluster.cache_model import ClusterCacheModel
from repro.cluster.concurrency_bus import ConcurrencyBus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import CedarMachine
    from repro.cluster.ce import CE


class Cluster:
    """Cluster-local shared resources.

    The 4-way interleaved shared cache delivers "eight 64-bit words per
    instruction cycle, sufficient to supply one input stream to a vector
    instruction in each processor"; cluster memory sustains half that.
    Both are modelled as word-rate FIFO resources shared by the
    cluster's CEs, so per-CE bandwidth degrades naturally as more CEs
    stream from them.
    """

    def __init__(self, machine: "CedarMachine", cluster_id: int) -> None:
        self.machine = machine
        self.cluster_id = cluster_id
        config = machine.config
        self.cache = Resource(
            machine.engine,
            name=f"cl{cluster_id}.cache",
            capacity_words=max(64, config.cache.words_per_cycle * 8),
            words_per_cycle=float(config.cache.words_per_cycle),
            fixed_cycles=float(config.cache.hit_cycles),
        )
        self.cluster_memory = Resource(
            machine.engine,
            name=f"cl{cluster_id}.cmem",
            capacity_words=max(64, config.cluster_memory.words_per_cycle * 8),
            words_per_cycle=float(config.cluster_memory.words_per_cycle),
            fixed_cycles=float(config.cluster_memory.access_cycles),
        )
        self.concurrency_bus = ConcurrencyBus(machine.engine, config.concurrency_bus)
        self.cache_model = ClusterCacheModel(config.cache)
        from repro.cluster.ip import InteractiveProcessor

        self.ip = InteractiveProcessor(
            machine.engine,
            machine.filesystem,
            cluster_id,
            cycle_ns=config.ce.cycle_ns,
        )
        self.ces: List["CE"] = []

    # -- component lifecycle ---------------------------------------------------

    def attach(self, ctx) -> None:
        """Wire the shared cache and cluster memory onto the bus: each
        departure publishes ``cluster.access`` (keyed by cluster id) and
        the queue edges publish ``net.enqueue`` / ``net.dequeue`` keyed
        ``"cluster"`` so one subscription covers every cluster."""
        access = ctx.bus.signal("cluster.access", key=self.cluster_id)
        enqueue = ctx.bus.signal("net.enqueue", key="cluster")
        dequeue = ctx.bus.signal("net.dequeue", key="cluster")
        span = ctx.bus.signal("net.span", key="cluster")
        for resource in (self.cache, self.cluster_memory):
            resource.depart_signal = access
            resource.enqueue_signal = enqueue
            resource.dequeue_signal = dequeue
            resource.span_signal = span

    def reset(self) -> None:
        config = self.machine.config
        self.cache.reset()
        self.cluster_memory.reset()
        self.cache_model = ClusterCacheModel(config.cache)
        self.concurrency_bus = ConcurrencyBus(self.machine.engine, config.concurrency_bus)
        from repro.cluster.ip import InteractiveProcessor

        self.ip = InteractiveProcessor(
            self.machine.engine,
            self.machine.filesystem,
            self.cluster_id,
            cycle_ns=config.ce.cycle_ns,
        )

    def stats(self) -> dict:
        return {
            "cache_packets": self.cache.stats.packets,
            "cache_words": self.cache.stats.words,
            "cache_busy_cycles": self.cache.stats.busy_cycles,
            "cmem_packets": self.cluster_memory.stats.packets,
            "cmem_words": self.cluster_memory.stats.words,
            "cmem_busy_cycles": self.cluster_memory.stats.busy_cycles,
        }

    def describe(self) -> dict:
        config = self.machine.config
        return {
            "cluster": self.cluster_id,
            "ces": len(self.ces),
            "cache_kb": config.cache.size_bytes // 1024,
            "cache_words_per_cycle": config.cache.words_per_cycle,
            "cluster_memory_mb": config.cluster_memory.size_bytes // (1 << 20),
        }

    def cache_request(
        self, port: int, words: int, on_done: Callable[[Packet], None]
    ) -> None:
        """Stream ``words`` through the shared cache, then call back."""
        packet = Packet(
            kind=PacketKind.BLOCK_REQ,
            src=port % self.machine.config.ces_per_cluster,
            dst=0,
            address=0,
            words=words,
            meta={"cluster": self.cluster_id},
        )
        transit = Transit(packet=packet, route=[self.cache, on_done], idx=0)
        if not self.cache.offer(transit):
            # cache queue full: retry next cycle (models arbitration stall)
            self.machine.engine.schedule_after(
                1.0, lambda: self.cache_request(port, words, on_done)
            )

    def cached_vector_access(
        self,
        port: int,
        words: int,
        word_address: int,
        write: bool,
        on_done: Callable[[int], None],
    ) -> None:
        """An addressed vector stream through the functional cache:
        hit words stream from the cache banks; missed lines fill from
        cluster memory (dirty victims write back there too).  Calls
        ``on_done(missed_words)`` when both streams complete.

        Word addresses are 8-byte-granular cluster-space addresses;
        lines are 32 bytes (4 words).
        """
        if words < 1:
            raise ValueError("need at least one word")
        ce = port % self.machine.config.ces_per_cluster
        line_bytes = self.cache_model.line_bytes
        missed_words = 0
        writebacks = 0
        for w in range(words):
            byte_address = (word_address + w) * 8
            result = self.cache_model.access(byte_address, ce=ce, write=write)
            if not result.hit:
                missed_words += 1
                self.cache_model.retire_miss(byte_address, ce=ce)
            if result.writeback_line is not None:
                writebacks += 1

        pending = {"count": 0}

        def _part_done(_: Packet) -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                on_done(missed_words)

        hit_words = words - missed_words
        if hit_words > 0:
            pending["count"] += 1
            self.cache_request(port, hit_words, _part_done)
        # misses fill whole lines; writebacks push dirty lines out
        fill_words = missed_words * (line_bytes // 8)
        fill_words += writebacks * (line_bytes // 8)
        if fill_words > 0:
            pending["count"] += 1
            self.cluster_memory_request(port, fill_words, _part_done)
        if pending["count"] == 0:
            self.machine.engine.schedule_after(0.0, lambda: on_done(0))

    def cluster_memory_request(
        self, port: int, words: int, on_done: Callable[[Packet], None]
    ) -> None:
        """Stream ``words`` from cluster memory (cache-miss traffic or
        explicit cluster-array access), then call back."""
        packet = Packet(
            kind=PacketKind.BLOCK_REQ,
            src=port % self.machine.config.ces_per_cluster,
            dst=0,
            address=0,
            words=words,
            meta={"cluster": self.cluster_id},
        )
        transit = Transit(packet=packet, route=[self.cluster_memory, on_done], idx=0)
        if not self.cluster_memory.offer(transit):
            self.machine.engine.schedule_after(
                1.0, lambda: self.cluster_memory_request(port, words, on_done)
            )
