"""The concurrency control bus (CCB).

"Each CE is connected to a concurrency control bus designed to support
efficient execution of parallel loops.  Concurrency control instructions
implement fast fork, join and synchronization operations. ...
concurrent start is a single instruction that 'spreads' the iterations
of a parallel loop from one to all the CES in a cluster ... The whole
cluster is thus 'gang-scheduled.'  CES within a cluster can then
'self-schedule' iterations of the parallel loop among themselves."

The CCB is both *functional* (it hands out iterations, tracks joins) and
*timed* (start/fetch/join costs from the configuration); the Cedar
Fortran CDOALL construct executes through it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ConcurrencyBusConfig
from repro.core.engine import Engine


class CCBLoop:
    """State of one gang-scheduled concurrent loop on the bus."""

    def __init__(self, iterations: int, chunk: int = 1) -> None:
        if iterations < 0:
            raise ValueError("iteration count must be non-negative")
        if chunk < 1:
            raise ValueError("chunk must be at least 1")
        self.iterations = iterations
        self.chunk = chunk
        self._next = 0
        self._done = 0
        self.joined = False

    def claim(self) -> Optional[range]:
        """Self-schedule: atomically claim the next chunk of iterations.

        Returns None when the loop is exhausted.
        """
        if self._next >= self.iterations:
            return None
        start = self._next
        stop = min(start + self.chunk, self.iterations)
        self._next = stop
        return range(start, stop)

    def complete(self, count: int) -> None:
        self._done += count
        if self._done > self.iterations:
            raise RuntimeError("more iterations completed than scheduled")

    @property
    def all_done(self) -> bool:
        return self._done >= self.iterations


class ConcurrencyBus:
    """The per-cluster bus: loop spreading, claims, joins, and their costs."""

    def __init__(self, engine: Engine, config: ConcurrencyBusConfig) -> None:
        self.engine = engine
        self.config = config
        self.loops_started = 0
        self.claims = 0
        self.joins = 0

    def concurrent_start(self, iterations: int, chunk: int = 1) -> CCBLoop:
        """Single-instruction gang spread of a parallel loop; the caller
        accounts ``config.concurrent_start_cycles`` of time."""
        self.loops_started += 1
        return CCBLoop(iterations, chunk)

    def claim_cost_cycles(self) -> float:
        self.claims += 1
        return float(self.config.self_schedule_cycles)

    def join_cost_cycles(self) -> float:
        self.joins += 1
        return float(self.config.join_cycles)

    @property
    def start_cost_cycles(self) -> float:
        return float(self.config.concurrent_start_cycles)
