"""Interactive processors (IPs).

"The FX/8 also includes interactive processors (IPs) and IP caches.
IPs perform input/output and various other tasks."  CEs hand I/O
requests to an IP and continue computing; the IP drains its request
queue through the Xylem file system's cost model, so file I/O overlaps
computation unless the program waits for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.engine import Engine
from repro.util.units import us_to_cycles
from repro.xylem.filesystem import IOMode, XylemFileSystem


@dataclass
class IORequest:
    kind: str                      # "read" or "write"
    unit: str
    values: Optional[np.ndarray]   # payload for writes
    on_done: Optional[Callable] = None
    result: Optional[np.ndarray] = None


class InteractiveProcessor:
    """One cluster's I/O processor: a FIFO of file-system requests."""

    def __init__(
        self,
        engine: Engine,
        filesystem: XylemFileSystem,
        cluster_id: int,
        cycle_ns: float = 170.0,
    ) -> None:
        self.engine = engine
        self.fs = filesystem
        self.cluster_id = cluster_id
        self.cycle_ns = cycle_ns
        self._queue: List[IORequest] = []
        self._busy = False
        self.requests_served = 0

    def submit(self, request: IORequest) -> None:
        """Enqueue a request; the CE does not wait."""
        self._queue.append(request)
        self._maybe_start()

    def submit_write(
        self, unit: str, values: Sequence[float],
        on_done: Optional[Callable] = None,
    ) -> IORequest:
        request = IORequest("write", unit, np.asarray(values, dtype=float),
                            on_done=on_done)
        self.submit(request)
        return request

    def submit_read(self, unit: str, on_done: Optional[Callable] = None) -> IORequest:
        request = IORequest("read", unit, None, on_done=on_done)
        self.submit(request)
        return request

    @property
    def idle(self) -> bool:
        return not self._busy and not self._queue

    def _maybe_start(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        request = self._queue.pop(0)
        before = self.fs.stats.io_us
        if request.kind == "write":
            assert request.values is not None
            self.fs.write(request.unit, request.values)
        elif request.kind == "read":
            request.result = self.fs.read(request.unit)
        else:
            raise ValueError(f"unknown I/O request kind {request.kind!r}")
        service_us = self.fs.stats.io_us - before
        delay = us_to_cycles(service_us, self.cycle_ns)
        self.engine.schedule_after(delay, lambda: self._finish(request))

    def _finish(self, request: IORequest) -> None:
        self._busy = False
        self.requests_served += 1
        if request.on_done is not None:
            request.on_done(request)
        self._maybe_start()
