"""Functional model of the Alliant shared cluster cache.

"All references to data in cluster memory first check the 512KB
physically addressed shared cache.  Cache line size is 32 bytes.  The
cache is write-back and lockup-free, allowing each CE to have two
outstanding cache misses.  Writes do not stall a CE."  The cache is
4-way interleaved across banks (consecutive lines rotate through the
banks, supplying eight 64-bit words per cycle in aggregate).

The queueing behaviour of the cache (bandwidth sharing) lives in
:class:`repro.cluster.cluster.Cluster`; this module models its
*contents*: set-associative lookup, write-back of dirty victims, and
per-CE outstanding-miss tracking.  It is used by the data-placement
studies and is exhaustively testable on its own.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import CacheConfig


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    bank: int
    #: line (address) written back to cluster memory, if a dirty
    #: victim was evicted.
    writeback_line: Optional[int] = None
    #: True when the CE had to stall because both its outstanding-miss
    #: slots were already in use.
    stalled_for_miss_slot: bool = False


class _Set:
    """One set: LRU over ``ways`` lines, tracking dirtiness."""

    __slots__ = ("ways", "lines")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.lines: "OrderedDict[int, bool]" = OrderedDict()  # tag -> dirty

    def lookup(self, tag: int) -> bool:
        if tag in self.lines:
            self.lines.move_to_end(tag)
            return True
        return False

    def fill(self, tag: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Insert ``tag``; returns (victim_tag, victim_dirty) if evicted."""
        victim = None
        if tag not in self.lines and len(self.lines) >= self.ways:
            victim = self.lines.popitem(last=False)
        self.lines[tag] = self.lines.get(tag, False) or dirty
        self.lines.move_to_end(tag)
        return victim

    def mark_dirty(self, tag: int) -> None:
        if tag in self.lines:
            self.lines[tag] = True
            self.lines.move_to_end(tag)


@dataclass
class CacheStats:
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    miss_slot_stalls: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class ClusterCacheModel:
    """The 512 KB, 32 B-line, write-back, bank-interleaved shared cache.

    Associativity is a model choice (the FX/8 documentation the paper
    cites does not state it); the default of 4 ways matches the 4-way
    bank interleave and is configurable.
    """

    def __init__(self, config: CacheConfig = CacheConfig(), ways: int = 4) -> None:
        if ways < 1:
            raise ValueError("need at least one way")
        self.config = config
        self.ways = ways
        self.line_bytes = config.line_bytes
        total_lines = config.size_bytes // config.line_bytes
        self.n_sets = total_lines // ways
        if self.n_sets < 1:
            raise ValueError("cache too small for this associativity")
        self._sets: Dict[int, _Set] = {}
        self.stats = CacheStats()
        #: outstanding miss lines per CE (lockup-free, two slots each).
        self._outstanding: Dict[int, Set[int]] = {}
        self.max_outstanding_per_ce = 2

    # -- geometry ---------------------------------------------------------

    def line_of(self, byte_address: int) -> int:
        if byte_address < 0:
            raise ValueError("negative address")
        return byte_address // self.line_bytes

    def set_index(self, line: int) -> int:
        return line % self.n_sets

    def bank_of(self, line: int) -> int:
        """Consecutive lines rotate through the interleaved banks."""
        return line % self.config.banks

    # -- access ------------------------------------------------------------

    def access(self, byte_address: int, ce: int, write: bool = False) -> AccessResult:
        """One CE reference.  Misses allocate (write-allocate policy);
        a dirty victim produces a write-back; a CE with both miss slots
        busy records a lockup stall (the Table 1 GM/no-pref limiter is
        the same two-slot structure on the global side)."""
        line = self.line_of(byte_address)
        idx = self.set_index(line)
        cache_set = self._sets.setdefault(idx, _Set(self.ways))
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        if cache_set.lookup(line):
            self.stats.hits += 1
            if write:
                cache_set.mark_dirty(line)
            return AccessResult(hit=True, bank=self.bank_of(line))

        self.stats.misses += 1
        outstanding = self._outstanding.setdefault(ce, set())
        stalled = False
        if line not in outstanding and len(outstanding) >= self.max_outstanding_per_ce:
            # lockup-free up to two misses; the third stalls the CE
            # until a slot frees (we retire the oldest immediately in
            # this functional model and record the stall).
            self.stats.miss_slot_stalls += 1
            stalled = True
            outstanding.pop()
        outstanding.add(line)
        victim = cache_set.fill(line, dirty=write)
        writeback = None
        if victim is not None:
            victim_line, victim_dirty = victim
            if victim_dirty:
                self.stats.writebacks += 1
                writeback = victim_line
        return AccessResult(
            hit=False,
            bank=self.bank_of(line),
            writeback_line=writeback,
            stalled_for_miss_slot=stalled,
        )

    def retire_miss(self, byte_address: int, ce: int) -> None:
        """The miss data returned from cluster memory: free the slot."""
        self._outstanding.get(ce, set()).discard(self.line_of(byte_address))

    def contains(self, byte_address: int) -> bool:
        line = self.line_of(byte_address)
        cache_set = self._sets.get(self.set_index(line))
        return bool(cache_set and line in cache_set.lines)

    def is_dirty(self, byte_address: int) -> bool:
        line = self.line_of(byte_address)
        cache_set = self._sets.get(self.set_index(line))
        return bool(cache_set and cache_set.lines.get(line, False))

    def flush(self) -> List[int]:
        """Write back and drop everything; returns dirty lines flushed."""
        dirty = []
        for cache_set in self._sets.values():
            dirty.extend(l for l, d in cache_set.lines.items() if d)
            cache_set.lines.clear()
        self.stats.writebacks += len(dirty)
        self._outstanding.clear()
        return sorted(dirty)

    @property
    def resident_lines(self) -> int:
        return sum(len(s.lines) for s in self._sets.values())
