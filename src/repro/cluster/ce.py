"""The Alliant computational element (CE) and its operation vocabulary.

A CE program is a Python generator yielding operation objects; the CE
advances simulated time as each operation completes and sends its result
back into the generator.  This mirrors how the paper's kernels are
written: a strip-mined loop of vector instructions, prefetches, global
accesses and scalar glue.

The vocabulary captures the architectural behaviours Section 2 calls
out:

* ``GlobalLoad`` — non-prefetched vector access to global memory,
  limited to the CE's **two outstanding requests** ("The performance of
  the GM/no-pref version is determined by the 13 cycle latency of the
  global memory and the two outstanding requests allowed per CE").
* ``StartPrefetch`` / ``ConsumeStream`` — PFU-driven access with the
  full/empty-bit buffer.
* ``GlobalStore`` — writes that "do not stall a CE" unless the network
  injection queue backs up.
* ``ClusterVectorOp`` — vector work fed from the shared cluster cache.
* ``BlockTransfer`` — explicit software-controlled move between global
  and cluster memory (the only way data moves between the two levels).
* ``SyncInstruction`` — a round trip to a memory module's
  synchronization processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from repro.core.engine import SimulationError
from repro.gmemory.sync import SyncOp, SyncResult, TestOp
from repro.monitor.signals import NULL_SIGNAL
from repro.network.packet import Packet, PacketKind
from repro.prefetch.pfu import PrefetchStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import CedarMachine

Program = Generator[Any, Any, None]


# ---------------------------------------------------------------------------
# operations


@dataclass
class Compute:
    """Occupy the CE for ``cycles`` of computation."""

    cycles: float


@dataclass
class StartPrefetch:
    """Arm and fire the CE's PFU; the result is the PrefetchStream."""

    length: int
    stride: int = 1
    address: int = 0
    keep_previous: bool = False


@dataclass
class AwaitWord:
    """Wait until one buffer word is full; result is its arrival time."""

    stream: PrefetchStream
    index: int


@dataclass
class AwaitStream:
    """Wait until the whole prefetch stream has returned."""

    stream: PrefetchStream


@dataclass
class ConsumeStream:
    """Read the stream's words in order, spending ``cycles_per_word`` of
    chained vector compute on each; models register-memory vector
    instructions whose memory operands are intercepted by the prefetch
    buffer.  ``startup_cycles`` is charged once per ``vector_length``
    words — one pipeline fill per vector instruction, since a vector
    register holds 32 words."""

    stream: PrefetchStream
    cycles_per_word: float = 1.0
    startup_cycles: float = 0.0
    vector_length: int = 32


@dataclass
class GlobalLoad:
    """Non-prefetched strided vector load: at most two outstanding
    element requests; completes when the last element returns."""

    length: int
    stride: int = 1
    address: int = 0
    #: chained compute per returned word (overlapped with the loads).
    cycles_per_word: float = 0.0


@dataclass
class GlobalStore:
    """Strided vector store to global memory: the CE issues one store
    packet per cycle (stall only on injection backpressure) and moves on
    without awaiting completion."""

    length: int
    stride: int = 1
    address: int = 0


@dataclass
class ClusterVectorOp:
    """Vector operation on cluster data: the shared cache streams
    ``words`` while the CE computes ``cycles_per_word`` per word.

    With ``address`` set (a cluster-space word address) the access runs
    through the functional cache: missed lines fill from cluster
    memory, dirty victims write back, and the operation's result value
    is the number of missed words.  Without it, the stream is assumed
    cache-resident (the work-array regime)."""

    words: int
    cycles_per_word: float = 1.0
    startup_cycles: float = 0.0
    address: Optional[int] = None
    write: bool = False


@dataclass
class BlockTransfer:
    """Software-controlled block move global->cluster (or back); data is
    requested in 3-data-word packets (the 4-word network maximum)."""

    words: int
    address: int = 0
    to_cluster: bool = True


@dataclass
class Fence:
    """Memory fence: wait until every store this CE has issued to the
    weakly ordered global memory has completed at its module.  Cedar
    software uses such sync points (typically around synchronization
    instructions) to order globally visible data."""


@dataclass
class FileWrite:
    """Hand a record to the cluster's IP for output; the CE does not
    wait ("IPs perform input/output")."""

    unit: str
    values: Any  # array-like record


@dataclass
class FileRead:
    """Request the next record from a unit via the cluster's IP; the CE
    blocks until the data arrives (the result is the record array)."""

    unit: str


@dataclass
class SyncInstruction:
    """Indivisible Test-And-Operate at a global address; the result is
    the :class:`~repro.gmemory.sync.SyncResult`."""

    address: int
    test: TestOp = TestOp.ALWAYS
    test_operand: int = 0
    op: SyncOp = SyncOp.ADD
    op_operand: int = 1


# ---------------------------------------------------------------------------
# the CE


@dataclass
class CEStats:
    compute_cycles: float = 0.0
    stall_cycles: float = 0.0
    words_loaded: int = 0
    words_stored: int = 0
    finished_at: Optional[float] = None


class CE:
    """One computational element executing a generator program."""

    def __init__(self, machine: "CedarMachine", cluster_id: int, local_id: int) -> None:
        self.machine = machine
        self.engine = machine.engine
        self.cluster_id = cluster_id
        self.local_id = local_id
        self.port = cluster_id * machine.config.ces_per_cluster + local_id
        self.config = machine.config.ce
        self.stats = CEStats()
        self._program: Optional[Program] = None
        self._outstanding_replies: dict = {}
        self._stores_in_flight = 0
        self._fence_waiting = False
        self._on_done: Optional[Callable[["CE"], None]] = None
        self._sig_done = NULL_SIGNAL
        self._sig_birth = NULL_SIGNAL
        self.done = False

    # -- component lifecycle -----------------------------------------------------

    def attach(self, ctx) -> None:
        self._sig_done = ctx.bus.signal("ce.done", key=self.port)
        self._sig_birth = ctx.bus.signal("req.birth", key=self.port)

    def reset(self) -> None:
        self.stats = CEStats()
        self._program = None
        self._outstanding_replies = {}
        self._stores_in_flight = 0
        self._fence_waiting = False
        self._on_done = None
        self.done = False

    def describe(self) -> dict:
        return {
            "port": self.port,
            "cluster": self.cluster_id,
            "local_id": self.local_id,
            "cycle_ns": self.config.cycle_ns,
        }

    def counters(self) -> dict:
        """Component-protocol ``stats()`` payload (the method name is
        taken by the :class:`CEStats` data attribute; the machine
        assembly adapts this via :class:`~repro.core.context.ComponentAdapter`)."""
        return {
            "compute_cycles": self.stats.compute_cycles,
            "stall_cycles": self.stats.stall_cycles,
            "words_loaded": self.stats.words_loaded,
            "words_stored": self.stats.words_stored,
            "finished_at": self.stats.finished_at,
        }

    # -- program execution -----------------------------------------------------

    def run(
        self,
        program: Program,
        on_done: Optional[Callable[["CE"], None]] = None,
    ) -> None:
        """Start executing ``program`` at the current simulation time.

        ``on_done`` is invoked once when the program finishes — drivers
        use completion counting instead of polling every CE after every
        event.
        """
        if self._program is not None:
            raise SimulationError(f"CE {self.port} is already running a program")
        self._program = program
        self._on_done = on_done
        self.engine.schedule_after(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        assert self._program is not None
        try:
            op = self._program.send(value)
        except StopIteration:
            self.done = True
            self.stats.finished_at = self.engine.now
            sig = self._sig_done
            if sig.callbacks:
                sig.emit(self.port, self.engine.now)
            if self._on_done is not None:
                self._on_done(self)
            return
        self._dispatch(op)

    def _resume(self, value: Any = None) -> None:
        self._step(value)

    def _dispatch(self, op: Any) -> None:
        if isinstance(op, Compute):
            self.stats.compute_cycles += op.cycles
            self.engine.schedule_after(op.cycles, self._step, None)
        elif isinstance(op, StartPrefetch):
            stream = self.machine.pfu(self.port).start(
                op.length, op.stride, op.address, keep_previous=op.keep_previous
            )
            self._resume(stream)
        elif isinstance(op, AwaitWord):
            op.stream.when_available(op.index, self._resume)
        elif isinstance(op, AwaitStream):
            op.stream.when_complete(self._resume)
        elif isinstance(op, ConsumeStream):
            self._consume(op, index=0, ready_at=self.engine.now)
        elif isinstance(op, GlobalLoad):
            self._global_load(op)
        elif isinstance(op, GlobalStore):
            self._global_store(op, index=0)
        elif isinstance(op, ClusterVectorOp):
            self._cluster_vector_op(op)
        elif isinstance(op, BlockTransfer):
            self._block_transfer(op)
        elif isinstance(op, SyncInstruction):
            self._sync(op)
        elif isinstance(op, Fence):
            if self._stores_in_flight == 0:
                self._resume(None)
            else:
                self._fence_waiting = True
        elif isinstance(op, FileWrite):
            ip = self.machine.clusters[self.cluster_id].ip
            ip.submit_write(op.unit, op.values)
            self._resume(None)
        elif isinstance(op, FileRead):
            ip = self.machine.clusters[self.cluster_id].ip
            ip.submit_read(op.unit, on_done=lambda req: self._resume(req.result))
        else:
            raise SimulationError(f"CE cannot execute operation {op!r}")

    # -- prefetch consumption ----------------------------------------------------

    def _consume(self, op: ConsumeStream, index: int, ready_at: float) -> None:
        """Pipeline: word ``index`` is processed at
        max(arrival + buffer transfer latency, previous word done) and
        takes ``cycles_per_word``; the buffer-to-CE move is latency, not
        occupancy (words stream).  Iterative over already-full words to
        bound recursion depth on long streams."""
        stream = op.stream
        buffer_lat = self.machine.config.prefetch.buffer_to_ce_cycles
        while index < stream.length and stream.word_available(index):
            arrival = stream.arrivals[index]
            assert arrival is not None
            if op.vector_length and index % op.vector_length == 0:
                ready_at += op.startup_cycles
            start = max(arrival + buffer_lat, ready_at)
            stall = max(0.0, start - ready_at)
            if stall:
                self.stats.stall_cycles += stall
            ready_at = start + op.cycles_per_word
            index += 1
        if index >= stream.length:
            self.stats.words_loaded += stream.length
            self.stats.compute_cycles += stream.length * op.cycles_per_word
            extra = max(0.0, ready_at - self.engine.now)
            self.engine.schedule_after(extra, self._step, None)
            return
        next_index = index
        resume_ready = ready_at
        stream.when_available(
            next_index, lambda _at: self._consume(op, next_index, resume_ready)
        )

    # -- non-prefetched global vector access ---------------------------------------

    def _global_load(self, op: GlobalLoad) -> None:
        """Each returned datum also pays the CE-side register-move
        cycles (the same 5 cycles that complete the prefetch path's
        13-cycle latency) while holding its outstanding-request slot —
        so throughput is 2 words per 13-cycle round trip, the paper's
        GM/no-pref behaviour."""
        handling = float(self.machine.config.prefetch.buffer_to_ce_cycles)
        state = {
            "next": 0,
            "released": 0,
            "inflight": 0,
            "ready_at": self.engine.now,
        }

        def _issue() -> None:
            limit = self.config.max_outstanding_misses
            while state["inflight"] < limit and state["next"] < op.length:
                if not self.machine.forward_network.can_inject(self.port):
                    self.engine.schedule_after(1.0, _issue)
                    return
                index = state["next"]
                state["next"] += 1
                state["inflight"] += 1
                address = op.address + index * op.stride
                packet = Packet.acquire(
                    PacketKind.READ_REQ,
                    self.port,
                    address % self.machine.gmem.config.modules,
                    address,
                )
                packet.meta["ce_reply"] = self.port
                packet.meta["handler"] = _on_reply
                sig = self._sig_birth
                if sig.callbacks:
                    sig.emit(packet, "demand", self.engine.now)
                self.machine.forward_network.inject(
                    packet, tail=self.machine.gmem.route_tail(address)
                )

        def _on_reply(packet: Packet) -> None:
            self.stats.words_loaded += 1
            self.engine.schedule_after(handling, _release)

        def _release() -> None:
            state["inflight"] -= 1
            state["released"] += 1
            state["ready_at"] = (
                max(state["ready_at"], self.engine.now) + op.cycles_per_word
            )
            if state["released"] >= op.length:
                extra = max(0.0, state["ready_at"] - self.engine.now)
                self.engine.schedule_after(extra, lambda: self._resume(None))
            else:
                _issue()

        _issue()

    # -- stores -------------------------------------------------------------------

    def _global_store(self, op: GlobalStore, index: int) -> None:
        if index >= op.length:
            self._resume(None)
            return
        if not self.machine.forward_network.can_inject(self.port):
            self.stats.stall_cycles += 1.0
            self.engine.schedule_after(1.0, self._global_store, op, index)
            return
        address = op.address + index * op.stride
        packet = Packet.acquire(
            PacketKind.WRITE_REQ,
            self.port,
            address % self.machine.gmem.config.modules,
            address,
            words=2,  # control/address word + one data word
        )
        packet.meta["on_write_done"] = self._store_completed
        sig = self._sig_birth
        if sig.callbacks:
            sig.emit(packet, "store", self.engine.now)
        self._stores_in_flight += 1
        self.machine.forward_network.inject(
            packet, tail=self.machine.gmem.route_tail(address)
        )
        self.stats.words_stored += 1
        # one store issued per cycle
        self.engine.schedule_after(1.0, self._global_store, op, index + 1)

    def _store_completed(self, packet: Packet) -> None:
        self._stores_in_flight -= 1
        if self._fence_waiting and self._stores_in_flight == 0:
            self._fence_waiting = False
            self._resume(None)

    # -- cluster-cache vector work ---------------------------------------------------

    def _cluster_vector_op(self, op: ClusterVectorOp) -> None:
        cluster = self.machine.clusters[self.cluster_id]
        started = self.engine.now

        def _finish(result) -> None:
            compute = op.startup_cycles + op.words * op.cycles_per_word
            elapsed = self.engine.now - started
            remaining = max(0.0, compute - elapsed)
            self.stats.compute_cycles += compute
            self.engine.schedule_after(remaining, lambda: self._resume(result))

        if op.address is None:
            cluster.cache_request(self.port, op.words, lambda _pkt: _finish(None))
        else:
            cluster.cached_vector_access(
                self.port, op.words, op.address, op.write, _finish
            )

    # -- block transfers ---------------------------------------------------------------

    def _block_transfer(self, op: BlockTransfer) -> None:
        data_words_per_packet = self.machine.config.network.max_packet_words - 1
        chunks = [
            min(data_words_per_packet, op.words - start)
            for start in range(0, op.words, data_words_per_packet)
        ]
        state = {"returned": 0, "issued": 0}

        def _issue() -> None:
            while state["issued"] < len(chunks):
                if not self.machine.forward_network.can_inject(self.port):
                    self.engine.schedule_after(1.0, _issue)
                    return
                i = state["issued"]
                state["issued"] += 1
                address = op.address + i * data_words_per_packet
                packet = Packet.acquire(
                    PacketKind.BLOCK_REQ,
                    self.port,
                    address % self.machine.gmem.config.modules,
                    address,
                )
                meta = packet.meta
                meta["block_words"] = chunks[i]
                meta["ce_reply"] = self.port
                meta["handler"] = _on_reply
                sig = self._sig_birth
                if sig.callbacks:
                    sig.emit(packet, "block", self.engine.now)
                self.machine.forward_network.inject(
                    packet, tail=self.machine.gmem.route_tail(address)
                )

        def _on_reply(packet: Packet) -> None:
            state["returned"] += 1
            self.stats.words_loaded += packet.meta.get("block_words", 0)
            if state["returned"] >= len(chunks):
                self._resume(None)

        _issue()

    # -- synchronization ------------------------------------------------------------------

    def _sync(self, op: SyncInstruction) -> None:
        def _issue() -> None:
            if not self.machine.forward_network.can_inject(self.port):
                self.engine.schedule_after(1.0, _issue)
                return
            packet = Packet.acquire(
                PacketKind.SYNC_REQ,
                self.port,
                op.address % self.machine.gmem.config.modules,
                op.address,
                words=2,  # address word + operand word
            )
            meta = packet.meta
            meta["sync"] = (op.test, op.test_operand, op.op, op.op_operand)
            meta["ce_reply"] = self.port
            meta["handler"] = _on_reply
            sig = self._sig_birth
            if sig.callbacks:
                sig.emit(packet, "sync", self.engine.now)
            self.machine.forward_network.inject(
                packet, tail=self.machine.gmem.route_tail(op.address)
            )

        def _on_reply(packet: Packet) -> None:
            result: SyncResult = packet.meta["sync_result"]
            self._resume(result)

        _issue()
