"""Alliant FX/8 clusters: CEs, shared cache, cluster memory, and the
concurrency control bus."""

from repro.cluster.ce import (
    CE,
    Fence,
    FileRead,
    FileWrite,
    AwaitStream,
    AwaitWord,
    BlockTransfer,
    ClusterVectorOp,
    Compute,
    ConsumeStream,
    GlobalLoad,
    GlobalStore,
    StartPrefetch,
    SyncInstruction,
)
from repro.cluster.cluster import Cluster
from repro.cluster.concurrency_bus import ConcurrencyBus
from repro.cluster.cache_model import AccessResult, CacheStats, ClusterCacheModel
from repro.cluster.ip import InteractiveProcessor, IORequest
from repro.cluster.vector_unit import (
    ExecutionReport,
    Operand,
    Scalar,
    VectorInstruction,
    VectorUnit,
)

__all__ = [
    "CE",
    "Fence",
    "FileRead",
    "FileWrite",
    "AwaitStream",
    "AwaitWord",
    "BlockTransfer",
    "ClusterVectorOp",
    "Compute",
    "ConsumeStream",
    "GlobalLoad",
    "GlobalStore",
    "StartPrefetch",
    "SyncInstruction",
    "Cluster",
    "ConcurrencyBus",
    "AccessResult",
    "CacheStats",
    "ClusterCacheModel",
    "InteractiveProcessor",
    "IORequest",
    "ExecutionReport",
    "Operand",
    "Scalar",
    "VectorInstruction",
    "VectorUnit",
]
