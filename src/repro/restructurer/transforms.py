"""Restructuring transformations.

Basic transforms existed in the 1988 KAP; *advanced* transforms are the
ones the paper's authors applied by hand and deem automatable: "array
privatization, parallel reductions, advanced induction variable
substitution, runtime data dependence tests, balanced stripmining, and
parallelization in the presence of SAVE and RETURN statements.  Many of
these transformations require advanced symbolic and interprocedural
analysis methods."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List

from repro.restructurer.ir import Loop, Statement


class TransformKind(Enum):
    SCALAR_PRIVATIZATION = "scalar privatization"
    BASIC_INDUCTION = "induction substitution"
    ARRAY_PRIVATIZATION = "array privatization"
    PARALLEL_REDUCTION = "parallel reduction"
    ADVANCED_INDUCTION = "advanced induction substitution"
    RUNTIME_DEP_TEST = "runtime dependence test"
    BALANCED_STRIPMINE = "balanced stripmining"
    SAVE_RETURN = "SAVE/RETURN parallelization"


@dataclass(frozen=True)
class Transform:
    """One restructuring pass: a predicate and a loop rewrite."""

    kind: TransformKind
    advanced: bool
    applies: Callable[[Loop], bool]
    apply: Callable[[Loop], None]

    @property
    def name(self) -> str:
        return self.kind.value


# -- helpers -----------------------------------------------------------------


def _writes_before_reads(loop: Loop, name: str) -> bool:
    """A variable is privatizable when every iteration writes it before
    any read.  Statement RHSs evaluate before their LHS stores, so a
    statement that both reads and writes ``name`` (a recurrence) reads
    first and is NOT privatizable."""
    for st in loop.all_statements():
        if any(r.array == name for r in st.rhs):
            return False  # first touch is a read (or read-modify-write)
        if st.lhs.array == name and st.lhs.is_write:
            return True
    return False


def _is_read_somewhere(loop: Loop, name: str) -> bool:
    return any(
        r.array == name for st in loop.all_statements() for r in st.rhs
    )


def _privatizable(loop: Loop, scalars_only: bool) -> List[str]:
    """Variables needing (and admitting) privatization: read in the
    loop, but always written first within the iteration."""
    names = []
    for st in loop.all_statements():
        ref = st.lhs
        if not ref.is_write:
            continue
        if st.reduction_op or st.is_induction_update:
            continue
        if scalars_only and not ref.is_scalar:
            continue
        if not scalars_only and ref.is_scalar:
            continue  # array pass skips scalars (basic pass has them)
        if ref.array in loop.privatized:
            continue
        if _is_read_somewhere(loop, ref.array) and _writes_before_reads(
            loop, ref.array
        ):
            names.append(ref.array)
    return sorted(set(names))


def _reduction_statements(loop: Loop) -> List[Statement]:
    """Reduction statements not yet rewritten."""
    return [
        st
        for st in loop.all_statements()
        if st.reduction_op and st.lhs.array not in loop.neutralized_vars
    ]


def _induction_statements(loop: Loop, advanced: bool) -> List[Statement]:
    """Induction updates of the requested difficulty not yet substituted."""
    return [
        st
        for st in loop.all_statements()
        if st.is_induction_update
        and st.induction_is_advanced == advanced
        and st.lhs.array not in loop.neutralized_vars
    ]


def _unknown_subscript_arrays(loop: Loop) -> List[str]:
    names = set()
    for st in loop.all_statements():
        for ref in st.refs():
            if ref.has_unknown_subscript and ref.array not in loop.runtime_tested:
                names.add(ref.array)
    return sorted(names)


def _has_clearable_calls(loop: Loop) -> bool:
    if loop.calls_cleared:
        return False
    found = False
    for st in loop.all_statements():
        for call in st.calls:
            if call.side_effect_free:
                continue
            if call.has_save or call.has_early_return:
                found = True
            else:
                return False  # a truly opaque call cannot be cleared
    return found


def _unbalanced(loop: Loop) -> bool:
    return loop.ragged and not loop.balanced_stripmine


# -- transform definitions -----------------------------------------------------


def _apply_scalar_privatization(loop: Loop) -> None:
    loop.privatized.extend(_privatizable(loop, scalars_only=True))


def _apply_array_privatization(loop: Loop) -> None:
    loop.privatized.extend(_privatizable(loop, scalars_only=False))


def _apply_reductions(loop: Loop) -> None:
    for st in _reduction_statements(loop):
        if st.lhs.array not in loop.neutralized_vars:
            loop.neutralized_vars.append(st.lhs.array)


def _apply_basic_induction(loop: Loop) -> None:
    for st in _induction_statements(loop, advanced=False):
        if st.lhs.array not in loop.neutralized_vars:
            loop.neutralized_vars.append(st.lhs.array)


def _apply_advanced_induction(loop: Loop) -> None:
    for st in _induction_statements(loop, advanced=True):
        if st.lhs.array not in loop.neutralized_vars:
            loop.neutralized_vars.append(st.lhs.array)


def _apply_runtime_test(loop: Loop) -> None:
    loop.runtime_tested.extend(
        a for a in _unknown_subscript_arrays(loop) if a not in loop.runtime_tested
    )


def _apply_save_return(loop: Loop) -> None:
    loop.calls_cleared = True


def _apply_stripmine(loop: Loop) -> None:
    loop.balanced_stripmine = True


SCALAR_PRIVATIZATION = Transform(
    TransformKind.SCALAR_PRIVATIZATION,
    advanced=False,
    applies=lambda l: bool(_privatizable(l, scalars_only=True)),
    apply=_apply_scalar_privatization,
)

BASIC_INDUCTION = Transform(
    TransformKind.BASIC_INDUCTION,
    advanced=False,
    applies=lambda l: bool(_induction_statements(l, advanced=False)),
    apply=_apply_basic_induction,
)

ARRAY_PRIVATIZATION = Transform(
    TransformKind.ARRAY_PRIVATIZATION,
    advanced=True,
    applies=lambda l: bool(_privatizable(l, scalars_only=False)),
    apply=_apply_array_privatization,
)

PARALLEL_REDUCTION = Transform(
    TransformKind.PARALLEL_REDUCTION,
    advanced=True,
    applies=lambda l: bool(_reduction_statements(l)),
    apply=_apply_reductions,
)

ADVANCED_INDUCTION = Transform(
    TransformKind.ADVANCED_INDUCTION,
    advanced=True,
    applies=lambda l: bool(_induction_statements(l, advanced=True)),
    apply=_apply_advanced_induction,
)

RUNTIME_DEP_TEST = Transform(
    TransformKind.RUNTIME_DEP_TEST,
    advanced=True,
    applies=lambda l: bool(_unknown_subscript_arrays(l)),
    apply=_apply_runtime_test,
)

SAVE_RETURN = Transform(
    TransformKind.SAVE_RETURN,
    advanced=True,
    applies=_has_clearable_calls,
    apply=_apply_save_return,
)

BALANCED_STRIPMINE = Transform(
    TransformKind.BALANCED_STRIPMINE,
    advanced=True,
    applies=_unbalanced,
    apply=_apply_stripmine,
)

BASIC_TRANSFORMS: List[Transform] = [SCALAR_PRIVATIZATION, BASIC_INDUCTION]

ADVANCED_TRANSFORMS: List[Transform] = [
    ARRAY_PRIVATIZATION,
    PARALLEL_REDUCTION,
    ADVANCED_INDUCTION,
    RUNTIME_DEP_TEST,
    SAVE_RETURN,
    BALANCED_STRIPMINE,
]

ALL_TRANSFORMS: List[Transform] = BASIC_TRANSFORMS + ADVANCED_TRANSFORMS
