"""Interprocedural analysis: subroutine summaries.

"Many of these transformations require advanced symbolic and
interprocedural analysis methods" (Section 3.3).  A 1988-class
restructurer treated almost every CALL as a wall; the automatable
pipeline's SAVE/RETURN transform needs to know *what the callee
actually touches*.

A :class:`SubroutineSummary` records the callee's side effects in terms
of its formal parameters: which formals it reads/writes, which global
(COMMON) variables it touches, and whether it keeps SAVE state.  The
:class:`SummaryRegistry` resolves call sites against summaries and
upgrades them:

* a callee that touches nothing but its formals, writing only
  write-disjoint formals, is *side-effect-free per iteration* when its
  actual arguments are disjoint across iterations — the call stops
  blocking parallelization;
* a callee with SAVE state whose saved variables are write-before-read
  per invocation (scratch SAVE arrays — the common Fortran idiom) can
  be cleared by privatizing the SAVE storage, which is exactly the
  paper's "parallelization in the presence of SAVE statements";
* anything else stays blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.restructurer.ir import ArrayRef, CallSite, Loop, Program, Statement


@dataclass(frozen=True)
class SubroutineSummary:
    """What one subroutine does, in terms of its formals."""

    name: str
    #: formal-parameter positions the callee reads / writes.
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    #: COMMON/global names the callee touches (reads or writes).
    common_touched: Tuple[str, ...] = ()
    #: SAVE'd local state.
    has_save: bool = False
    #: True when every SAVE'd variable is (re)written before any read
    #: in each invocation — privatizable scratch state.
    save_is_scratch: bool = False

    @property
    def pure_on_formals(self) -> bool:
        return not self.common_touched and not self.has_save

    def clearable(self) -> bool:
        """Whether advanced analysis can clear calls to this routine
        (given per-iteration-disjoint actuals)."""
        if self.common_touched:
            return False
        if self.has_save and not self.save_is_scratch:
            return False
        return True


class SummaryRegistry:
    """Summaries by routine name + the call-site resolution pass."""

    def __init__(self) -> None:
        self._summaries: Dict[str, SubroutineSummary] = {}
        self.resolved_calls = 0
        self.cleared_calls = 0

    def register(self, summary: SubroutineSummary) -> None:
        self._summaries[summary.name.upper()] = summary

    def lookup(self, name: str) -> Optional[SubroutineSummary]:
        return self._summaries.get(name.upper())

    def resolve_loop(self, loop: Loop) -> List[str]:
        """Upgrade the loop's call sites from their summaries.

        For each call whose callee is summarized as clearable and whose
        written actuals vary with the loop index (disjoint iterations),
        replace the opaque CallSite with a cleared one.  Returns the
        names of the cleared routines.
        """
        cleared: List[str] = []
        for statement in loop.all_statements():
            new_calls: List[CallSite] = []
            for call in statement.calls:
                summary = self.lookup(call.name)
                if summary is None:
                    new_calls.append(call)
                    continue
                self.resolved_calls += 1
                if summary.clearable() and self._actuals_disjoint(
                    statement, summary
                ):
                    new_calls.append(
                        CallSite(call.name, has_save=summary.has_save,
                                 side_effect_free=True)
                    )
                    self.cleared_calls += 1
                    cleared.append(call.name)
                else:
                    new_calls.append(call)
            statement.calls = new_calls
        return cleared

    def resolve_program(self, program: Program) -> Dict[str, List[str]]:
        return {
            (loop.label or loop.var): self.resolve_loop(loop)
            for loop in program.loops
        }

    @staticmethod
    def _actuals_disjoint(statement: Statement, summary: SubroutineSummary) -> bool:
        """Written actuals must vary with the loop variable (affine
        subscript with nonzero coefficient, i.e. distinct elements per
        iteration).  Reads may be anything."""
        refs = [r for r in statement.rhs if not r.array.startswith("<")]
        if not summary.writes:
            return True
        for position in summary.writes:
            if position >= len(refs):
                return False  # summary refers past the visible actuals
            ref = refs[position]
            if ref.has_unknown_subscript:
                return False
            index = ref.index
            if getattr(index, "coef", 0) == 0:
                return False  # every iteration writes the same location
        return True
