"""A small Fortran-style front end for the restructurer.

Parses the dialect the Perfect-code loop sketches are written in —
enough DO-loop Fortran to express every dependence feature the
transform pipelines act on:

    DO I = 1, 100
      T = X(I)
      S = S + X(I)          ! recognized as a sum reduction
      K = K + 2             ! recognized as an induction update
      W(1) = X(I)
      Y(I) = W(1) * T
      A(I) = A(I-1) + 1.0   ! a recurrence
      B(IDX(I)) = B(IDX(I)) ! subscripted subscripts -> runtime test
      CALL FOO(Y(I))        ! calls block unless cleared
    END DO

Subscripts are affine in the loop variable (``I``, ``I+3``, ``2*I-1``,
``3``) or an index-array expression (``IDX(I)``), which parses to the
:data:`~repro.restructurer.ir.UNKNOWN` sentinel.  Scalars are bare
names.  Statements are assignments or CALLs; right-hand sides may use
``+ - * /`` and parentheses (only the variable references matter to
dependence analysis, so expressions are scanned, not evaluated).

The parser exists so users can feed their own loops to the KAP /
automatable pipelines; it is exactly the IR builder's feature set with
a human syntax.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.restructurer.ir import (
    AffineIndex,
    ArrayRef,
    CallSite,
    Loop,
    Program,
    Statement,
    UNKNOWN,
)


class ParseError(ValueError):
    """The source is not in the supported dialect."""


_DO_RE = re.compile(
    r"^DO\s+(?:\d+\s+)?([A-Z][A-Z0-9]*)\s*=\s*(-?\d+)\s*,\s*(-?\d+)\s*(?:,\s*(-?\d+))?$",
    re.IGNORECASE,
)
_END_RE = re.compile(r"^(END\s*DO|\d+\s+CONTINUE)$", re.IGNORECASE)
_CALL_RE = re.compile(r"^CALL\s+([A-Z][A-Z0-9_]*)\s*(\((.*)\))?$", re.IGNORECASE)
_NAME = r"[A-Z][A-Z0-9_]*"
_REF_RE = re.compile(rf"({_NAME})\s*(\(([^()]*(?:\([^()]*\))?[^()]*)\))?", re.IGNORECASE)
_AFFINE_RE = re.compile(
    r"^\s*(?:(-?\d+)\s*\*\s*)?([A-Z][A-Z0-9_]*)\s*(?:([+-])\s*(\d+))?\s*$"
    r"|^\s*(-?\d+)\s*$",
    re.IGNORECASE,
)

#: intrinsic function names never treated as array references.
_INTRINSICS = {"SQRT", "ABS", "SIN", "COS", "EXP", "LOG", "MAX", "MIN", "MOD"}


def _strip(line: str) -> str:
    # drop comments (! to end of line) and whitespace
    return line.split("!", 1)[0].strip()


def _parse_subscript(text: str, loop_var: str):
    """An affine subscript in the loop variable, a constant, or UNKNOWN."""
    text = text.strip()
    if not text:
        raise ParseError("empty subscript")
    match = _AFFINE_RE.match(text)
    if match is None:
        # anything else (IDX(I), I*J, ...) is only resolvable at runtime
        return UNKNOWN
    if match.group(5) is not None:  # pure constant
        return AffineIndex(coef=0, offset=int(match.group(5)))
    coef_txt, var, sign, offset_txt = match.group(1), match.group(2), match.group(3), match.group(4)
    if var.upper() != loop_var.upper():
        return UNKNOWN  # subscript in another variable
    coef = int(coef_txt) if coef_txt else 1
    offset = int(offset_txt) if offset_txt else 0
    if sign == "-":
        offset = -offset
    return AffineIndex(coef=coef, offset=offset)


_INTRINSIC_CALL_RE = re.compile(
    r"\b(" + "|".join(_INTRINSICS) + r")\s*\(", re.IGNORECASE
)


def _scan_refs(expr: str, loop_var: str, is_write: bool) -> List[ArrayRef]:
    """Every variable reference in an expression."""
    # intrinsic calls are transparent: SQRT(X(I)) references X(I)
    expr = _INTRINSIC_CALL_RE.sub("(", expr)
    refs: List[ArrayRef] = []
    for match in _REF_RE.finditer(expr):
        name = match.group(1).upper()
        if name.upper() == loop_var.upper():
            continue  # the loop index itself is not a data reference
        subscript = match.group(3)
        if subscript is None:
            refs.append(ArrayRef(name, AffineIndex(), is_write=is_write))
        else:
            index = _parse_subscript(subscript, loop_var)
            if index is UNKNOWN:
                refs.append(ArrayRef(name, UNKNOWN, is_write=is_write))
                # the index array itself is read
                inner = _REF_RE.match(subscript.strip())
                if inner and inner.group(1).upper() != loop_var.upper():
                    refs.append(
                        ArrayRef(inner.group(1).upper(), AffineIndex(1, 0),
                                 is_write=False)
                    )
            else:
                refs.append(ArrayRef(name, index, is_write=is_write))
    return refs


_REDUCTION_OPS = {"+": "+", "*": "*", "-": "+"}  # s = s - x is a sum reduction


def _classify_assignment(
    lhs: ArrayRef, rhs_text: str, rhs_refs: List[ArrayRef]
) -> Tuple[Optional[str], bool, bool]:
    """(reduction_op, is_induction, induction_is_advanced)."""
    if not lhs.is_scalar:
        return None, False, False
    reads_self = any(r.array == lhs.array for r in rhs_refs)
    if not reads_self:
        return None, False, False
    # normalize: S = S + <expr>  /  S = S * <expr>  /  S = S - <expr>
    pattern = re.compile(
        rf"^\s*{re.escape(lhs.array)}\s*([+*-])\s*(.+)$", re.IGNORECASE
    )
    match = pattern.match(rhs_text.strip())
    if match is None:
        return None, False, False
    op, rest = match.group(1), match.group(2).strip()
    if re.fullmatch(r"-?\d+(\.\d+)?", rest):
        if op in "+-":
            # K = K + c: a basic (additive) induction variable
            return None, True, False
        # K = K * c: multiplicative — needs advanced substitution
        return None, True, True
    return _REDUCTION_OPS.get(op), False, False


def parse_statement(line: str, loop_var: str) -> Statement:
    call = _CALL_RE.match(line)
    if call:
        name = call.group(1).upper()
        args = call.group(3) or ""
        refs = _scan_refs(args, loop_var, is_write=False)
        has_save = name.endswith("_SAVE") or name.startswith("SAVE")
        # The synthetic lhs is not a write: the CallSite itself carries
        # the (un)analyzability; a phantom scalar write would manufacture
        # an output dependence no transform could ever clear.
        return Statement(
            lhs=ArrayRef(f"<{name}>", AffineIndex(), is_write=False),
            rhs=refs,
            calls=[CallSite(name, has_save=has_save)],
        )
    if "=" not in line:
        raise ParseError(f"not an assignment or CALL: {line!r}")
    lhs_text, rhs_text = line.split("=", 1)
    lhs_refs = _scan_refs(lhs_text, loop_var, is_write=True)
    if len(lhs_refs) < 1:
        raise ParseError(f"cannot parse assignment target: {lhs_text!r}")
    lhs = lhs_refs[0]
    extra_lhs_reads = [
        ArrayRef(r.array, r.index, is_write=False) for r in lhs_refs[1:]
    ]  # index arrays used on the left are reads
    rhs_refs = _scan_refs(rhs_text, loop_var, is_write=False) + extra_lhs_reads
    reduction_op, is_induction, advanced = _classify_assignment(
        lhs, rhs_text, rhs_refs
    )
    return Statement(
        lhs=lhs,
        rhs=rhs_refs,
        reduction_op=reduction_op,
        is_induction_update=is_induction,
        induction_is_advanced=advanced,
    )


def parse_loop(source: str, weight: float = 1.0, label: str = "") -> Loop:
    """Parse one (possibly labelled) DO loop from ``source``."""
    lines = [l for l in (_strip(raw) for raw in source.splitlines()) if l]
    if not lines:
        raise ParseError("empty source")
    header = _DO_RE.match(lines[0])
    if header is None:
        raise ParseError(f"expected a DO statement, got {lines[0]!r}")
    var, lo, hi, step = header.group(1), int(header.group(2)), int(header.group(3)), header.group(4)
    step_val = int(step) if step else 1
    if step_val == 0:
        raise ParseError("zero DO step")
    trips = max(0, (hi - lo) // step_val + 1)
    if not _END_RE.match(lines[-1]):
        raise ParseError(f"unterminated DO loop (last line {lines[-1]!r})")
    for line in lines[1:-1]:
        if _DO_RE.match(line):
            raise ParseError("nested DO loops are not supported by this dialect")
    body = [parse_statement(line, var) for line in lines[1:-1]]
    return Loop(var=var.upper(), trips=trips, body=body,
                label=label or var.upper(), weight=weight)


def parse_program(source: str, name: str = "program") -> Program:
    """Parse a sequence of top-level DO loops; weights are uniform."""
    lines = [l for l in (_strip(raw) for raw in source.splitlines()) if l]
    chunks: List[List[str]] = []
    depth = 0
    for line in lines:
        if _DO_RE.match(line):
            if depth == 0:
                chunks.append([])
            depth += 1
            chunks[-1].append(line)
        elif _END_RE.match(line):
            if depth == 0:
                raise ParseError("END DO without DO")
            chunks[-1].append(line)
            depth -= 1
        else:
            if depth == 0:
                raise ParseError(f"statement outside any loop: {line!r}")
            chunks[-1].append(line)
    if depth != 0:
        raise ParseError("unterminated DO loop")
    if not chunks:
        raise ParseError("no loops found")
    weight = 1.0 / len(chunks)
    loops = [
        parse_loop("\n".join(chunk), weight=weight, label=f"loop{i}")
        for i, chunk in enumerate(chunks)
    ]
    return Program(name=name, loops=loops, serial_fraction=0.0)
