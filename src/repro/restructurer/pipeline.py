"""Restructuring pipelines and their reports.

A :class:`Pipeline` runs its transforms to a fixed point on every loop,
then asks the dependence tester which loops became DOALL-able.  The
report carries per-loop verdicts plus the program's *parallel
coverage* — the fraction of serial execution time inside parallelized
loops — which the application performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.restructurer.dependence import Dependence, blocking_dependences
from repro.restructurer.ir import Loop, Program
from repro.restructurer.transforms import (
    ADVANCED_TRANSFORMS,
    BASIC_TRANSFORMS,
    Transform,
)


@dataclass(frozen=True)
class LoopVerdict:
    """One loop's fate under a pipeline."""

    label: str
    parallel: bool
    weight: float
    transforms: Sequence[str]
    blockers: Sequence[Dependence]
    balanced_stripmine: bool


@dataclass
class RestructuringReport:
    program: str
    pipeline: str
    verdicts: List[LoopVerdict] = field(default_factory=list)
    serial_fraction: float = 0.0

    @property
    def parallel_coverage(self) -> float:
        """Fraction of serial time inside loops that became DOALLs."""
        return sum(v.weight for v in self.verdicts if v.parallel)

    @property
    def parallel_loops(self) -> List[LoopVerdict]:
        return [v for v in self.verdicts if v.parallel]

    def verdict_for(self, label: str) -> LoopVerdict:
        for v in self.verdicts:
            if v.label == label:
                return v
        raise KeyError(f"no loop labelled {label!r}")


class Pipeline:
    """An ordered set of transforms applied to a fixed point."""

    def __init__(self, name: str, transforms: Sequence[Transform]) -> None:
        self.name = name
        self.transforms = list(transforms)

    def restructure_loop(self, loop: Loop) -> LoopVerdict:
        applied: List[str] = []
        changed = True
        rounds = 0
        while changed:
            rounds += 1
            if rounds > 100:
                raise RuntimeError(
                    f"pipeline {self.name!r} did not reach a fixed point on "
                    f"loop {loop.label or loop.var!r}"
                )
            changed = False
            for transform in self.transforms:
                if transform.applies(loop):
                    transform.apply(loop)
                    if transform.name not in applied:
                        applied.append(transform.name)
                    changed = True
        blockers = blocking_dependences(loop)
        return LoopVerdict(
            label=loop.label or loop.var,
            parallel=not blockers,
            weight=loop.weight,
            transforms=tuple(applied),
            blockers=tuple(blockers),
            balanced_stripmine=loop.balanced_stripmine,
        )

    def restructure(self, program: Program) -> RestructuringReport:
        """Analyze every top-level loop of ``program`` (fresh state)."""
        program.validate_weights()
        program.reset_analysis()
        report = RestructuringReport(
            program=program.name,
            pipeline=self.name,
            serial_fraction=program.serial_fraction,
        )
        for loop in program.loops:
            report.verdicts.append(self.restructure_loop(loop))
        return report


KAP_PIPELINE = Pipeline("Kap/Cedar (1988)", BASIC_TRANSFORMS)

AUTOMATABLE_PIPELINE = Pipeline(
    "automatable transforms", BASIC_TRANSFORMS + ADVANCED_TRANSFORMS
)
