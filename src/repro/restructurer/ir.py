"""Loop-nest intermediate representation.

A :class:`Program` is a list of top-level :class:`Loop` nests.  Loop
bodies hold :class:`Statement` assignments over :class:`ArrayRef`
references whose subscripts are affine in the loop variable (or
:data:`UNKNOWN` for subscripted-subscript accesses, which only a
runtime dependence test can disambiguate).

Each loop carries profile annotations (``weight``, ``trips``,
``vector_fraction`` ...) used by the application performance model once
the restructurer has decided what runs parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

#: sentinel subscript for index-array accesses, e.g. ``A(IDX(I))``.
UNKNOWN = object()


@dataclass(frozen=True)
class AffineIndex:
    """Subscript ``coef * var + offset`` in the enclosing loop variable.

    ``coef=0`` denotes a loop-invariant subscript (or a scalar when the
    ref's array is a scalar variable).
    """

    coef: int = 0
    offset: int = 0

    def at(self, iteration: int) -> int:
        return self.coef * iteration + self.offset


@dataclass(frozen=True)
class ArrayRef:
    """One array (or scalar) reference inside a statement."""

    array: str
    index: Union[AffineIndex, object] = AffineIndex()
    is_write: bool = False

    @property
    def is_scalar(self) -> bool:
        return isinstance(self.index, AffineIndex) and self.index == AffineIndex()

    @property
    def has_unknown_subscript(self) -> bool:
        return self.index is UNKNOWN


@dataclass(frozen=True)
class CallSite:
    """A subroutine call inside a loop body."""

    name: str
    has_save: bool = False
    has_early_return: bool = False
    side_effect_free: bool = False


def read(array: str, coef: int = 0, offset: int = 0) -> ArrayRef:
    return ArrayRef(array, AffineIndex(coef, offset), is_write=False)


def write(array: str, coef: int = 0, offset: int = 0) -> ArrayRef:
    return ArrayRef(array, AffineIndex(coef, offset), is_write=True)


def read_unknown(array: str) -> ArrayRef:
    return ArrayRef(array, UNKNOWN, is_write=False)


def write_unknown(array: str) -> ArrayRef:
    return ArrayRef(array, UNKNOWN, is_write=True)


@dataclass
class Statement:
    """``lhs = f(rhs...)`` with optional structure flags.

    ``reduction_op`` marks ``s = s <op> expr`` statements; induction
    flags mark ``s = s + c`` updates whose value feeds subscripts.
    """

    lhs: ArrayRef
    rhs: List[ArrayRef] = field(default_factory=list)
    reduction_op: Optional[str] = None
    is_induction_update: bool = False
    #: induction updates KAP's 1988 substitution cannot handle
    #: (coupled, multiplicative, conditional).
    induction_is_advanced: bool = False
    calls: List[CallSite] = field(default_factory=list)

    def refs(self) -> List[ArrayRef]:
        return [self.lhs] + list(self.rhs)


@dataclass
class Loop:
    """One (possibly nested) DO loop."""

    var: str
    trips: int
    body: List[Union[Statement, "Loop"]] = field(default_factory=list)
    label: str = ""
    # -- profile annotations used by the performance model ------------------
    #: fraction of the program's serial execution time spent here.
    weight: float = 0.0
    #: fraction of this loop's work that vectorizes within a CE.
    vector_fraction: float = 0.8
    #: serial work per iteration, microseconds (granularity).
    work_us_per_iteration: float = 100.0
    #: fraction of accessed data living in global memory.
    global_data_fraction: float = 0.7
    #: True when the loop's accesses are dominated by scalar references
    #: (no prefetch benefit, e.g. TRACK).
    scalar_dominated: bool = False
    #: True for triangular/ragged iteration spaces that need balanced
    #: stripmining to load-balance.
    ragged: bool = False

    # -- analysis state -------------------------------------------------------
    #: arrays proven private per iteration by a transform.
    privatized: List[str] = field(default_factory=list)
    #: variables whose carried dependences a rewrite removed
    #: (substituted inductions, parallelized reductions).
    neutralized_vars: List[str] = field(default_factory=list)
    #: runtime dependence tests inserted for these arrays.
    runtime_tested: List[str] = field(default_factory=list)
    #: call sites cleared by SAVE/RETURN-tolerant analysis.
    calls_cleared: bool = False
    #: stripmining hint from BalancedStripmine.
    balanced_stripmine: bool = False

    def cleared_arrays(self) -> set:
        """Names whose dependences no longer block parallelization."""
        return set(self.privatized) | set(self.neutralized_vars) | set(self.runtime_tested)

    def statements(self) -> List[Statement]:
        return [s for s in self.body if isinstance(s, Statement)]

    def inner_loops(self) -> List["Loop"]:
        return [s for s in self.body if isinstance(s, Loop)]

    def all_statements(self) -> List[Statement]:
        out = list(self.statements())
        for inner in self.inner_loops():
            out.extend(inner.all_statements())
        return out

    def reset_analysis(self) -> None:
        self.privatized.clear()
        self.neutralized_vars.clear()
        self.runtime_tested.clear()
        self.calls_cleared = False
        self.balanced_stripmine = False
        for inner in self.inner_loops():
            inner.reset_analysis()


@dataclass
class Program:
    """A whole code: top-level loop nests plus non-loop (serial) parts."""

    name: str
    loops: List[Loop] = field(default_factory=list)
    #: fraction of serial time outside all loops (I/O, setup, scalar glue).
    serial_fraction: float = 0.0

    def validate_weights(self) -> None:
        total = self.serial_fraction + sum(l.weight for l in self.loops)
        if not 0.99 <= total <= 1.01:
            raise ValueError(
                f"{self.name}: loop weights + serial fraction sum to {total:.3f}"
            )

    def reset_analysis(self) -> None:
        for loop in self.loops:
            loop.reset_analysis()
