"""Data-dependence testing over affine subscripts.

Implements the classic single-index tests a 1988-class restructurer
used: ZIV (zero index variable), strong/weak SIV, the GCD test and
Banerjee-style bounds for the general affine case.  References with
:data:`UNKNOWN` subscripts are conservatively dependent (only a runtime
test can clear them).

A loop can be converted to a DOALL exactly when no *cross-iteration*
dependence remains among its statements (loop-independent dependences
are harmless: "A DOALL is a loop in which iterations are independent").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from math import gcd
from typing import List, Optional

from repro.restructurer.ir import (
    AffineIndex,
    ArrayRef,
    Loop,
    Statement,
)


class DependenceKind(Enum):
    FLOW = "flow"       # write then read
    ANTI = "anti"       # read then write
    OUTPUT = "output"   # write then write


@dataclass(frozen=True)
class Dependence:
    """A (possibly assumed) cross-iteration dependence."""

    array: str
    kind: DependenceKind
    source: ArrayRef
    sink: ArrayRef
    #: constant dependence distance when known, else None.
    distance: Optional[int]
    #: True when the tester could not disprove it but also not prove it
    #: (unknown subscripts, symbolic bounds).
    assumed: bool = False

    @property
    def loop_carried(self) -> bool:
        return self.distance is None or self.distance != 0


def _kind_for(a: ArrayRef, b: ArrayRef) -> Optional[DependenceKind]:
    if a.is_write and b.is_write:
        return DependenceKind.OUTPUT
    if a.is_write and not b.is_write:
        return DependenceKind.FLOW
    if not a.is_write and b.is_write:
        return DependenceKind.ANTI
    return None  # read-read never matters


def test_dependence(a: ArrayRef, b: ArrayRef, trips: int) -> Optional[Dependence]:
    """Test whether refs ``a`` and ``b`` (same array) may touch the same
    element in *different* iterations of a loop with ``trips`` trips.

    Returns a :class:`Dependence` when one may exist, else None.
    """
    if a.array != b.array:
        return None
    kind = _kind_for(a, b)
    if kind is None:
        return None
    if a.has_unknown_subscript or b.has_unknown_subscript:
        return Dependence(a.array, kind, a, b, distance=None, assumed=True)

    ia: AffineIndex = a.index  # type: ignore[assignment]
    ib: AffineIndex = b.index  # type: ignore[assignment]
    # Solve ia.coef*i + ia.offset == ib.coef*j + ib.offset for 0<=i,j<trips, i != j.
    if ia.coef == ib.coef:
        if ia.coef == 0:
            # scalars / loop-invariant subscripts: every iteration hits
            # the same location => carried dependence of unknown distance
            if ia.offset == ib.offset:
                return Dependence(a.array, kind, a, b, distance=None)
            return None
        # strong SIV: distance = (ia.offset - ib.offset) / coef
        delta = ia.offset - ib.offset
        if delta % ia.coef != 0:
            return None
        distance = delta // ia.coef
        if distance == 0:
            return None  # loop-independent only
        if abs(distance) >= trips:
            return None  # outside the iteration space
        return Dependence(a.array, kind, a, b, distance=distance)

    # general affine: GCD test
    g = gcd(ia.coef, ib.coef) if (ia.coef or ib.coef) else 0
    delta = ib.offset - ia.offset
    if g != 0 and delta % g != 0:
        return None
    # Banerjee-style bounds: does any (i, j) in [0, trips) x [0, trips)
    # satisfy ia.coef*i - ib.coef*j == delta?
    lo = _min_term(ia.coef, trips) - _max_term(ib.coef, trips)
    hi = _max_term(ia.coef, trips) - _min_term(ib.coef, trips)
    if not lo <= delta <= hi:
        return None
    return Dependence(a.array, kind, a, b, distance=None, assumed=True)


def _min_term(coef: int, trips: int) -> int:
    return min(0, coef * (trips - 1))


def _max_term(coef: int, trips: int) -> int:
    return max(0, coef * (trips - 1))


def dependences_in(loop: Loop) -> List[Dependence]:
    """All may-exist cross-iteration dependences among the loop's
    statements (including statements of inner loops, whose refs still
    vary with the outer variable through their annotations)."""
    statements = loop.all_statements()
    refs: List[ArrayRef] = []
    for st in statements:
        refs.extend(st.refs())
    out: List[Dependence] = []
    for i, a in enumerate(refs):
        for b in refs[i:]:
            dep = test_dependence(a, b, loop.trips)
            if dep is not None and dep.loop_carried:
                out.append(dep)
    return out


def blocking_dependences(loop: Loop) -> List[Dependence]:
    """Dependences that still block DOALL conversion after the
    transforms recorded on the loop have been applied."""
    cleared = loop.cleared_arrays()
    out = [dep for dep in dependences_in(loop) if dep.array not in cleared]
    # calls block unless pure, or SAVE/RETURN analysis cleared them;
    # opaque calls (not even SAVE-shaped) block every pipeline.
    for st in loop.all_statements():
        for call in st.calls:
            if call.side_effect_free:
                continue
            clearable = call.has_save or call.has_early_return
            if clearable and loop.calls_cleared:
                continue
            out.append(
                Dependence(
                    array=f"<call {call.name}>",
                    kind=DependenceKind.FLOW,
                    source=st.lhs,
                    sink=st.lhs,
                    distance=None,
                    assumed=True,
                )
            )
    return out
