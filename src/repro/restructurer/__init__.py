"""The parallelizing restructurer (Section 3.3).

Two pipelines reproduce the paper's compiler study:

* :data:`KAP_PIPELINE` — the 1988 KAP feature set retargeted to Cedar
  ("Compiled by Kap/Cedar" in Table 3): dependence testing plus basic
  scalar privatization and simple induction substitution.
* :data:`AUTOMATABLE_PIPELINE` — adds the six advanced transformations
  the authors applied by hand: "array privatization, parallel
  reductions, advanced induction variable substitution, runtime data
  dependence tests, balanced stripmining, and parallelization in the
  presence of SAVE and RETURN statements".

Programs are loop nests over affine array subscripts; the dependence
tester proves or refutes cross-iteration dependences, transforms remove
refutable ones, and the report states which loops each pipeline made
DOALL-able.
"""

from repro.restructurer.ir import (
    AffineIndex,
    ArrayRef,
    CallSite,
    Loop,
    Program,
    Statement,
    UNKNOWN,
)
from repro.restructurer.dependence import (
    Dependence,
    DependenceKind,
    dependences_in,
    test_dependence,
)
from repro.restructurer.transforms import (
    ALL_TRANSFORMS,
    Transform,
    TransformKind,
)
from repro.restructurer.pipeline import (
    AUTOMATABLE_PIPELINE,
    KAP_PIPELINE,
    LoopVerdict,
    Pipeline,
    RestructuringReport,
)
from repro.restructurer.interprocedural import SubroutineSummary, SummaryRegistry
from repro.restructurer.parser import (
    ParseError,
    parse_loop,
    parse_program,
    parse_statement,
)

__all__ = [
    "AffineIndex",
    "ArrayRef",
    "CallSite",
    "Loop",
    "Program",
    "Statement",
    "UNKNOWN",
    "Dependence",
    "DependenceKind",
    "dependences_in",
    "test_dependence",
    "ALL_TRANSFORMS",
    "Transform",
    "TransformKind",
    "AUTOMATABLE_PIPELINE",
    "KAP_PIPELINE",
    "LoopVerdict",
    "Pipeline",
    "RestructuringReport",
    "SubroutineSummary",
    "SummaryRegistry",
    "ParseError",
    "parse_loop",
    "parse_program",
    "parse_statement",
]
