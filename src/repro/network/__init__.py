"""Cedar global interconnection networks.

Two unidirectional multistage shuffle-exchange networks connect the
clusters to global memory: a *forward* network carrying requests and a
*reverse* network carrying replies.  The networks are self-routing
(Lawrie tag routing), buffered (two-word queues on switch ports) and
packet-switched (packets of one to four 64-bit words).
"""

from repro.network.packet import Packet, PacketKind
from repro.network.resource import Resource, Transit
from repro.network.routing import delta_path, mixed_radix_digits, stage_radices
from repro.network.omega import OmegaNetwork

__all__ = [
    "Packet",
    "PacketKind",
    "Resource",
    "Transit",
    "delta_path",
    "mixed_radix_digits",
    "stage_radices",
    "OmegaNetwork",
]
