"""Lawrie tag routing for multistage delta/shuffle-exchange networks.

Routing is "based on the tag control scheme proposed in [Lawr75], and
provides a unique path between any pair of input/output ports"
(Section 2).  In a delta network the destination address, written in the
mixed radix of the switch stages, *is* the routing tag: stage ``i``
consumes destination digit ``i`` to select the switch output port.

We model contention at switch *output ports*: the crossbars themselves
are internally non-blocking, so two packets conflict exactly when they
need the same output port of the same switch at the same stage.  The
output port of stage ``i`` reached by a packet from source ``S`` to
destination ``D`` is the unique "partial address" whose leading digits
come from ``D`` and trailing digits from ``S`` — computing it
arithmetically avoids materializing the shuffle wiring while preserving
the exact conflict structure of the network.
"""

from __future__ import annotations

from typing import List, Sequence


def stage_radices(n_ports: int, max_radix: int = 8) -> List[int]:
    """Factor an ``n_ports``-port delta network into switch stages.

    Cedar's 32-port network built from 8x8 crossbars factors as
    ``[8, 4]``.  Raises when ``n_ports`` cannot be factored into stage
    radices of at most ``max_radix``.

    >>> stage_radices(32)
    [8, 4]
    >>> stage_radices(64)
    [8, 8]
    """
    if n_ports < 1:
        raise ValueError("network needs at least one port")
    if max_radix < 2:
        raise ValueError("switch radix must be at least 2")
    radices: List[int] = []
    remaining = n_ports
    while remaining > 1:
        radix = min(max_radix, remaining)
        while radix > 1 and remaining % radix != 0:
            radix -= 1
        if radix == 1:
            raise ValueError(
                f"{n_ports} ports cannot be factored into radix<={max_radix} stages"
            )
        radices.append(radix)
        remaining //= radix
    if not radices:
        radices = [1]
    return radices


def mixed_radix_digits(value: int, radices: Sequence[int]) -> List[int]:
    """Digits of ``value`` in the mixed radix ``radices``, most
    significant digit first (digit ``i`` belongs to stage ``i``).

    >>> mixed_radix_digits(13, [8, 4])
    [3, 1]
    """
    total = 1
    for r in radices:
        total *= r
    if not 0 <= value < total:
        raise ValueError(f"value {value} out of range for radices {radices}")
    digits: List[int] = []
    for radix in radices:
        total //= radix
        digits.append(value // total)
        value %= total
    return digits


def delta_path(src: int, dst: int, radices: Sequence[int]) -> List[int]:
    """Output-port identifiers used at each stage by a ``src``->``dst``
    packet.

    The stage-``i`` identifier is the intermediate address formed by
    destination digits ``0..i`` followed by source digits ``i+1..``;
    after the final stage the identifier equals ``dst``.  Two paths
    conflict at stage ``i`` iff their identifiers there are equal.

    >>> delta_path(0, 13, [8, 4])[-1]
    13
    """
    src_digits = mixed_radix_digits(src, radices)
    dst_digits = mixed_radix_digits(dst, radices)
    path: List[int] = []
    current = list(src_digits)
    for stage, digit in enumerate(dst_digits):
        current[stage] = digit
        value = 0
        for radix, d in zip(radices, current):
            value = value * radix + d
        path.append(value)
    return path
