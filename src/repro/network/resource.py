"""Blocking FIFO resources: the queueing building block of the simulator.

Every contended hardware element — a switch output port with its
two-word queue, a global-memory module, a cluster cache bank group — is
modelled as a :class:`Resource`: a FIFO server with a finite queue
measured in 64-bit words.  When the head-of-line packet finishes service
but the next hop's queue is full, the packet *blocks in place*, stalling
the resource (head-of-line blocking), which is the behaviour created by
the paper's "flow control between stages prevents queue overflow".

Latency growth under load therefore *emerges* from finite queues and
service rates; nothing in the experiment layer curve-fits delay values.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from types import MethodType as _MethodType
from typing import Callable, Deque, List, Optional, Sequence, Union

from repro.core.engine import (
    _FREE_LIST_MAX,
    _heappush,
    Engine,
    SimulationError,
    register_batch_handler,
)
from repro.monitor.signals import NULL_SIGNAL
from repro.network.packet import Packet, PacketKind

_WRITE_REQ = PacketKind.WRITE_REQ

#: A hop is either another Resource or a terminal sink callback.
Hop = Union["Resource", Callable[[Packet], None]]


class Transit:
    """A packet's journey across an ordered route of hops.

    ``route[idx]`` is the hop currently holding the packet.  The final
    element may be a sink callable, which always accepts.
    """

    __slots__ = ("packet", "route", "idx", "enq_t", "svc_t")

    def __init__(self, packet: Packet, route: Sequence[Hop], idx: int = 0) -> None:
        self.packet = packet
        self.route = route
        self.idx = idx
        # occupancy edge times for the consolidated ``net.span`` record;
        # written only while that signal is monitored (never read by the
        # model itself, so they cannot perturb timing).
        self.enq_t = 0.0
        self.svc_t = 0.0

    def next_hop(self) -> Optional[Hop]:
        nxt = self.idx + 1
        if nxt < len(self.route):
            return self.route[nxt]
        return None


@dataclass
class ResourceStats:
    packets: int = 0
    words: int = 0
    busy_cycles: float = 0.0
    blocked_cycles: float = 0.0
    rejected_offers: int = 0


class Resource:
    """FIFO server with a finite word-granularity queue and backpressure.

    A packet is accepted whenever at least one word of queue space is
    free (cut-through: long packets may overhang a short queue, as words
    stream through the two-word hardware queues).  Service time is
    ``fixed_cycles + words / words_per_cycle``.
    """

    __slots__ = (
        "engine",
        "name",
        "capacity_words",
        "words_per_cycle",
        "fixed_cycles",
        "recovery_cycles",
        "_recovered_at",
        "stats",
        "_queue",
        "_words_queued",
        "_serving",
        "_blocked_head",
        "_blocked_since",
        "_waiters",
        "depart_signal",
        "enqueue_signal",
        "dequeue_signal",
        "service_end_signal",
        "span_signal",
        "fault_hook",
        "_has_service_hook",
        "_has_complete_hook",
        "__weakref__",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        capacity_words: int,
        words_per_cycle: float = 1.0,
        fixed_cycles: float = 0.0,
        recovery_cycles: float = 0.0,
    ) -> None:
        if capacity_words < 1:
            raise ValueError("queue capacity must be at least one word")
        if words_per_cycle <= 0:
            raise ValueError("service rate must be positive")
        self.engine = engine
        self.name = name
        self.capacity_words = capacity_words
        self.words_per_cycle = words_per_cycle
        self.fixed_cycles = fixed_cycles
        #: dead time after a departure before the next service may start
        #: (e.g. DRAM bank recovery in a memory module).  Adds no latency
        #: to an isolated access but lowers sustained throughput.
        self.recovery_cycles = recovery_cycles
        self._recovered_at = 0.0
        self.stats = ResourceStats()
        self._queue: Deque[Transit] = deque()
        self._words_queued = 0
        self._serving = False
        self._blocked_head: Optional[Transit] = None
        self._blocked_since: float = 0.0
        self._waiters: Deque["Resource"] = deque()
        #: monitoring channels, re-pointed at real bus channels by the
        #: owning component at attach time; :data:`NULL_SIGNAL` (whose
        #: ``callbacks`` is permanently ``()``) until then, so every
        #: would-be emission is a single truthiness branch on a cached
        #: tuple — the zero-cost fast path — with no ``is not None``
        #: pre-check.
        #: ``depart_signal`` -> ``net.hop`` (a packet leaving the server),
        #: ``enqueue_signal`` / ``dequeue_signal`` -> ``net.enqueue`` /
        #: ``net.dequeue`` (queue-occupancy edges for the monitors),
        #: ``service_end_signal`` -> ``net.service`` (service finishing
        #: *before* any head-of-line blocking on the next hop — the
        #: timestamp the span layer needs to split a hop into
        #: queue-wait / service / blocked segments).
        #: ``span_signal`` -> ``net.span``: ONE consolidated record per
        #: occupancy, emitted at departure with all three edge times, so
        #: a request tracer costs one callback per hop instead of three.
        self.depart_signal = NULL_SIGNAL
        self.enqueue_signal = NULL_SIGNAL
        self.dequeue_signal = NULL_SIGNAL
        self.service_end_signal = NULL_SIGNAL
        self.span_signal = NULL_SIGNAL
        #: optional fault-injection site (see ``repro.faults``), set at
        #: injector attach time.  Same ``is not None`` fast path as the
        #: signals: an unarmed resource pays one branch per service.
        self.fault_hook = None
        # devirtualize the per-packet hooks: plain FIFO links (the vast
        # majority) take branch-only fast paths in _start_service/_finish.
        cls = type(self)
        self._has_service_hook = cls.service_cycles is not Resource.service_cycles
        self._has_complete_hook = (
            cls.on_service_complete is not Resource.on_service_complete
        )

    # -- admission ---------------------------------------------------------

    def has_space(self) -> bool:
        return self._words_queued < self.capacity_words

    def offer(self, transit: Transit) -> bool:
        """Try to accept ``transit``; returns False when the queue is
        full — the caller must block and retry on waiter notification."""
        if self._words_queued >= self.capacity_words:
            self.stats.rejected_offers += 1
            return False
        self._queue.append(transit)
        self._words_queued += transit.packet.words
        if self.span_signal.callbacks:
            # direct slot read: the property descriptor costs a frame,
            # and this stamp runs once per occupancy on traced runs.
            transit.enq_t = self.engine._now
        sig = self.enqueue_signal
        if sig.callbacks:
            sig.emit(self, transit.packet, self.engine.now)
        if not self._serving and self._blocked_head is None:
            self._maybe_start()
        return True

    def add_waiter(self, upstream: "Resource") -> None:
        if upstream not in self._waiters:
            self._waiters.append(upstream)

    # -- service -----------------------------------------------------------

    def service_cycles(self, packet: Packet) -> float:
        return self.fixed_cycles + packet.words / self.words_per_cycle

    def on_service_complete(self, transit: Transit) -> bool:
        """Hook called when a packet's service finishes, before handoff.

        Subclasses (memory modules) may transform ``transit.packet`` —
        adjusting :attr:`_words_queued` for any size change — or consume
        the packet entirely by returning False.
        """
        return True

    def _maybe_start(self) -> None:
        if self._serving or self._blocked_head is not None or not self._queue:
            return
        if self.recovery_cycles and self.engine.now < self._recovered_at:
            self._serving = True  # hold the slot through recovery
            transit = self._queue[0]
            delay = self._recovered_at - self.engine.now
            self.engine.schedule_after(delay, self._start_service, transit)
            return
        self._start_service(self._queue[0])

    def _start_service(self, transit: Transit) -> None:
        self._serving = True
        hook = self.fault_hook
        if hook is not None:
            delay = hook.before_service(self, transit)
            if delay > 0.0:
                # fault stall: hold the head slot (still serving) and
                # re-arbitrate once the stall elapses.
                self.engine.schedule_after(delay, self._start_service, transit)
                return
        if self._has_service_hook:
            cycles = self.service_cycles(transit.packet)
        else:
            cycles = self.fixed_cycles + transit.packet.words / self.words_per_cycle
        self.stats.busy_cycles += cycles
        self.engine.schedule_after(cycles, self._finish, transit)

    def _finish(self, transit: Transit) -> None:
        if not self._queue or self._queue[0] is not transit:
            raise SimulationError(f"{self.name}: finished packet is not at head")
        self._serving = False
        if self.span_signal.callbacks:
            transit.svc_t = self.engine._now
        sig = self.service_end_signal
        if sig.callbacks:
            sig.emit(self, transit.packet, self.engine.now)
        if self._has_complete_hook and not self.on_service_complete(transit):
            self._pop_head(transit)
            self._advance()
            return
        self._try_handoff(transit)

    def _try_handoff(self, transit: Transit) -> None:
        route = transit.route
        nxt_idx = transit.idx + 1
        nxt = route[nxt_idx] if nxt_idx < len(route) else None
        if nxt is None:
            self._pop_head(transit)
            self._advance()
            return
        if not isinstance(nxt, Resource):
            self._pop_head(transit)
            nxt(transit.packet)
            self._advance()
            return
        if nxt._words_queued < nxt.capacity_words:
            self._pop_head(transit)
            transit.idx = nxt_idx
            if not nxt.offer(transit):
                raise SimulationError(f"{nxt.name} refused after reporting space")
            self._advance()
        else:
            if self._blocked_head is None:
                self._blocked_head = transit
                self._blocked_since = self.engine.now
            nxt.add_waiter(self)

    def _pop_head(self, transit: Transit) -> None:
        head = self._queue.popleft()
        if head is not transit:
            raise SimulationError(f"{self.name}: departing packet is not at head")
        words = transit.packet.words
        self._words_queued -= words
        st = self.stats
        st.packets += 1
        st.words += words
        now = self.engine.now
        if self.recovery_cycles:
            self._recovered_at = now + self.recovery_cycles
        if self._blocked_head is transit:
            st.blocked_cycles += now - self._blocked_since
            self._blocked_head = None
        sig = self.dequeue_signal
        if sig.callbacks:
            sig.emit(self, transit.packet, now)
        sig = self.depart_signal
        if sig.callbacks:
            sig.emit(self, transit.packet, now)
        cbs = self.span_signal.callbacks
        if cbs:
            # pre-packed record (see the net.span catalog entry): packet
            # fields extracted here because pooled packets mutate.  All
            # eight slots are atomic values, and a buffering subscriber
            # is ``list.extend`` itself, so the record tuple dies the
            # moment the inlined callback loop returns — no Python
            # frame per emission, and no surviving GC-tracked object to
            # swell collection pauses on long traced runs.  The packet's
            # ``trace`` mark gates the build: a sampled-out reference
            # costs exactly these two attribute loads per hop.
            pkt = transit.packet
            if pkt.trace:
                rec = (self.name, pkt.request_id, pkt.is_reply,
                       pkt.kind is _WRITE_REQ,
                       self.fixed_cycles + pkt.words / self.words_per_cycle,
                       transit.enq_t, transit.svc_t, now)
                for cb in cbs:
                    cb(rec)

    def _advance(self) -> None:
        """After a departure: wake upstream waiters, start next service."""
        if self._waiters:
            self._notify_waiters()
        if not self._serving and self._blocked_head is None and self._queue:
            self._maybe_start()

    def _notify_waiters(self) -> None:
        while self._waiters and self.has_space():
            upstream = self._waiters.popleft()
            upstream._retry_blocked()

    def _retry_blocked(self) -> None:
        transit = self._blocked_head
        if transit is None:
            return
        # _try_handoff clears _blocked_head via _pop_head on success.
        self._try_handoff(transit)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Return to post-construction state: empty queue, zero stats,
        no blocking.  Part of the component-lifecycle contract."""
        self.stats = ResourceStats()
        self._queue.clear()
        self._words_queued = 0
        self._serving = False
        self._blocked_head = None
        self._blocked_since = 0.0
        self._waiters.clear()
        self._recovered_at = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def queued_words(self) -> int:
        return self._words_queued

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` cycles this resource spent serving."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Resource {self.name} q={self._words_queued}/{self.capacity_words}>"


# ---------------------------------------------------------------------------
# batched group dispatch: the vectorized link/memory service pass
#
# ``Resource._finish`` is ~80% of all events in a kernel run, and its
# scalar dispatch fans out across six to ten Python frames per event
# (_finish -> _try_handoff -> _pop_head -> offer -> _maybe_start ->
# _start_service -> schedule_after -> _advance -> ...).  The batched
# engine hands every same-cycle run of finishes to `_finish_batch`,
# which services them in ONE Python call with the whole chain inlined
# for the dominant case: a plain unmonitored FIFO link (no service /
# completion hooks, no armed fault site, no recovery window, no
# subscribed signal channels) handing off to another plain link.
#
# Anything off that path — memory modules (completion hook + recovery),
# monitored links, stages carrying faults or escape routing, blocked
# heads — falls back to the scalar methods *per record*, so the two
# paths are one semantics with two dispatch costs.  Every inlined
# mutation below mirrors the scalar method it replaces line for line
# (the scalar code is the reference; change both together), which is
# what the batched-identity harness and the adversarial ordering tests
# enforce.

def _finish_batch(eng: Engine, batch: List[list], i: int, n: int):
    """Group handler for a same-timestamp run of ``Resource._finish``
    events (see :func:`repro.core.engine.register_batch_handler` for
    the contract).  Consumes records from ``batch[i]`` forward while
    they are cancelled or bound to ``Resource._finish``; returns
    ``(next_index, executed_count)``."""
    free = eng._free
    buckets = eng._buckets
    ts_heap = eng._ts_heap
    bucket_get = buckets.get
    now = eng._now
    heappush = _heappush
    method = _MethodType
    finish = _RES_FINISH
    done = 0
    try:
        while i < n:
            record = batch[i]
            cb = record[2]
            if cb is None:
                # cancelled (possibly by an earlier event in this batch):
                # reclaim the slot exactly as the scalar drain would.
                eng._cancelled -= 1
                if len(free) < _FREE_LIST_MAX:
                    free.append(record)
                i += 1
                continue
            if cb.__class__ is not method or cb.__func__ is not finish:
                # end of this group's run — hand control back to the drain.
                return i, done
            i += 1
            res = cb.__self__
            transit = record[3][0]
            record[2] = None
            record[3] = ()
            # the consumed record is the preferred slot for whatever this
            # event schedules next (the next-service finish) — reuse is the
            # free-list round trip with both ends snipped off.
            spare = record
            done += 1
            if (
                res._has_complete_hook
                or res.recovery_cycles
                or res._blocked_head is not None
                or res.span_signal.callbacks
                or res.service_end_signal.callbacks
                or res.dequeue_signal.callbacks
                or res.depart_signal.callbacks
            ):
                # scalar fallback: hooks, monitors, recovery, faults.
                if len(free) < _FREE_LIST_MAX:
                    free.append(spare)
                res._finish(transit)
                if eng._stop_requested:
                    return i, done
                continue
            queue = res._queue
            if not queue or queue[0] is not transit:
                raise SimulationError(f"{res.name}: finished packet is not at head")
            res._serving = False
            route = transit.route
            nxt_idx = transit.idx + 1
            nxt = route[nxt_idx] if nxt_idx < len(route) else None
            if isinstance(nxt, Resource):
                if nxt._words_queued < nxt.capacity_words:
                    # -- res._pop_head (plain: no recovery, no signals)
                    queue.popleft()
                    words = transit.packet.words
                    res._words_queued -= words
                    st = res.stats
                    st.packets += 1
                    st.words += words
                    transit.idx = nxt_idx
                    # -- nxt.offer
                    if nxt.enqueue_signal.callbacks or nxt.span_signal.callbacks:
                        if not nxt.offer(transit):
                            raise SimulationError(
                                f"{nxt.name} refused after reporting space"
                            )
                    else:
                        nxt._queue.append(transit)
                        nxt._words_queued += words
                        if not nxt._serving and nxt._blocked_head is None:
                            # -- nxt._maybe_start / _start_service /
                            #    engine.schedule_after
                            if (
                                nxt.fault_hook is not None
                                or nxt._has_service_hook
                                or nxt.recovery_cycles
                            ):
                                nxt._maybe_start()
                            else:
                                head = nxt._queue[0]
                                cycles = (
                                    nxt.fixed_cycles
                                    + head.packet.words / nxt.words_per_cycle
                                )
                                nxt.stats.busy_cycles += cycles
                                nxt._serving = True
                                when = now + cycles
                                if spare is not None:
                                    rec = spare
                                    spare = None
                                    rec[0] = when
                                    rec[2] = nxt._finish
                                    rec[3] = (head,)
                                elif free:
                                    rec = free.pop()
                                    rec[0] = when
                                    rec[2] = nxt._finish
                                    rec[3] = (head,)
                                else:
                                    rec = [when, 0, nxt._finish, (head,)]
                                b = bucket_get(when)
                                if b is None:
                                    buckets[when] = [rec]
                                    heappush(ts_heap, when)
                                else:
                                    b.append(rec)
                else:
                    # head-of-line block: downstream queue is full.
                    res._blocked_head = transit
                    res._blocked_since = now
                    nxt.add_waiter(res)
                    if len(free) < _FREE_LIST_MAX:
                        free.append(spare)
                    if eng._stop_requested:
                        return i, done
                    continue
            else:
                # terminal sink callable, or the route ends here.
                queue.popleft()
                words = transit.packet.words
                res._words_queued -= words
                st = res.stats
                st.packets += 1
                st.words += words
                if nxt is not None:
                    nxt(transit.packet)
            # -- res._advance
            if res._waiters:
                res._notify_waiters()
            if not res._serving and res._blocked_head is None and queue:
                if res.fault_hook is not None or res._has_service_hook:
                    res._maybe_start()
                else:
                    head = queue[0]
                    cycles = (
                        res.fixed_cycles + head.packet.words / res.words_per_cycle
                    )
                    res.stats.busy_cycles += cycles
                    res._serving = True
                    when = now + cycles
                    if spare is not None:
                        rec = spare
                        spare = None
                        rec[0] = when
                        rec[2] = res._finish
                        rec[3] = (head,)
                    elif free:
                        rec = free.pop()
                        rec[0] = when
                        rec[2] = res._finish
                        rec[3] = (head,)
                    else:
                        rec = [when, 0, res._finish, (head,)]
                    b = bucket_get(when)
                    if b is None:
                        buckets[when] = [rec]
                        heappush(ts_heap, when)
                    else:
                        b.append(rec)
            if spare is not None and len(free) < _FREE_LIST_MAX:
                free.append(spare)
            if eng._stop_requested:
                return i, done
        return i, done
    except BaseException:
        # a raising callback counts as consumed (``i`` advances
        # before dispatch): report progress so the drain requeues
        # exactly ``batch[i:]`` — never records this handler already
        # executed or recycled into other buckets.
        eng._group_progress = (i, done)
        raise


#: the unbound function the handler is registered for — each record's
#: callback is tested against this identity to delimit the group run.
_RES_FINISH = Resource._finish

register_batch_handler(_RES_FINISH, _finish_batch)


def start_transit(packet: Packet, route: Sequence[Hop]) -> Transit:
    """Create a transit for ``packet`` over ``route`` and offer it to the
    first hop.  Raises if the first hop refuses — injection points must
    check :meth:`Resource.has_space` first or provide their own pacing."""
    if not route:
        raise SimulationError("route must not be empty")
    first = route[0]
    if not isinstance(first, Resource):
        raise SimulationError("route must start at a Resource")
    transit = Transit(packet=packet, route=route, idx=0)
    if not first.offer(transit):
        raise SimulationError(f"injection refused by {first.name}")
    return transit
