"""The Cedar multistage shuffle-exchange network.

One :class:`OmegaNetwork` instance models one unidirectional network
(Cedar has two: forward for requests, reverse for replies).  Each stage
exposes one :class:`~repro.network.resource.Resource` per output port —
an 8x8 crossbar's output port with its two-word queue.  Injection ports
(one per source) model the CE/memory network interfaces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import Engine
from repro.monitor.signals import NULL_SIGNAL
from repro.network.packet import Packet
from repro.network.resource import Hop, Resource, Transit
from repro.network.routing import delta_path, stage_radices
from repro.perf.batch import np as _np


class OmegaNetwork:
    """A buffered, packet-switched, self-routing delta network.

    Parameters mirror :class:`~repro.core.config.NetworkConfig`.  The
    network owns its injection ports and stage output ports; terminal
    delivery is by sink callables registered per destination port.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        n_ports: int,
        switch_radix: int = 8,
        queue_words: int = 2,
        stage_cycles: float = 0.0,
        link_words_per_cycle: float = 1.0,
        injection_queue_words: int = 4,
    ) -> None:
        self.engine = engine
        self.name = name
        self.n_ports = n_ports
        self.radices = stage_radices(n_ports, switch_radix)
        self.stage_cycles = stage_cycles
        self._sinks: Dict[int, Callable[[Packet], None]] = {}
        #: optional degraded-mode router (a ``FaultInjector``), consulted
        #: on injection when set; ``None`` is the zero-cost default.
        self.fault_router = None
        #: (src, dst) -> tuple of network-internal hops; the delta path
        #: is a pure function of the port pair, so compute it once.
        self._route_cache: Dict[tuple, tuple] = {}
        #: (src, dst) -> the *complete* route tuple ending in the
        #: registered sink, so the hot sink-terminated case allocates
        #: nothing per packet.  Invalidated by :meth:`register_sink`.
        self._full_route_cache: Dict[tuple, Tuple[Hop, ...]] = {}
        self.injection_ports: List[Resource] = [
            Resource(
                engine,
                f"{name}.inject[{p}]",
                capacity_words=injection_queue_words,
                words_per_cycle=link_words_per_cycle,
            )
            for p in range(n_ports)
        ]
        self.stages: List[List[Resource]] = [
            [
                Resource(
                    engine,
                    f"{name}.s{stage}[{port}]",
                    capacity_words=queue_words,
                    words_per_cycle=link_words_per_cycle,
                    fixed_cycles=stage_cycles,
                )
                for port in range(n_ports)
            ]
            for stage in range(len(self.radices))
        ]

    @property
    def n_stages(self) -> int:
        return len(self.radices)

    # -- component lifecycle ---------------------------------------------------

    def attach(self, ctx) -> None:
        """Wire every link's departure to the bus's ``net.hop`` channel
        and its queue edges to ``net.enqueue`` / ``net.dequeue`` (all
        keyed by network name).  Links already owned by another network
        (shared-fabric views) keep their original channels."""
        signal = ctx.bus.signal("net.hop", key=self.name)
        enqueue = ctx.bus.signal("net.enqueue", key=self.name)
        dequeue = ctx.bus.signal("net.dequeue", key=self.name)
        service = ctx.bus.signal("net.service", key=self.name)
        span = ctx.bus.signal("net.span", key=self.name)
        for port in self.injection_ports:
            if port.depart_signal is NULL_SIGNAL:
                port.depart_signal = signal
                port.enqueue_signal = enqueue
                port.dequeue_signal = dequeue
                port.service_end_signal = service
                port.span_signal = span
        for stage in self.stages:
            for link in stage:
                if link.depart_signal is NULL_SIGNAL:
                    link.depart_signal = signal
                    link.enqueue_signal = enqueue
                    link.dequeue_signal = dequeue
                    link.service_end_signal = service
                    link.span_signal = span

    def reset(self) -> None:
        for port in self.injection_ports:
            port.reset()
        for stage in self.stages:
            for link in stage:
                link.reset()

    def stats(self) -> dict:
        if _np is not None:
            arrays = self.stage_state_arrays()
            last = self.n_stages - 1
            return {
                "packets_delivered": int(arrays["packets"][last].sum()),
                "words_delivered": int(arrays["words"][last].sum()),
                "rejected_offers": int(arrays["rejected_offers"].sum()),
                "injection_rejections": int(
                    self.injection_state_arrays()["rejected_offers"].sum()
                ),
            }
        return {
            "packets_delivered": sum(r.stats.packets for r in self.stages[-1]),
            "words_delivered": self.total_words_delivered(),
            "rejected_offers": sum(
                r.stats.rejected_offers
                for stage in self.stages
                for r in stage
            ),
            "injection_rejections": sum(
                p.stats.rejected_offers for p in self.injection_ports
            ),
        }

    def stage_state_arrays(self) -> dict:
        """Parallel-array snapshot of per-link state, shape
        ``(n_stages, n_ports)``: traffic counters (``packets``,
        ``words``, ``busy_cycles``, ``rejected_offers``) and instantaneous
        queue state (``queued_words``, ``busy``).

        This is the numpy seam for width-proportional work — whole-fabric
        aggregation, occupancy heat maps, analysis notebooks — where one
        gather over the port population replaces a nested Python loop.
        The per-*batch* service loops stay scalar by design: a
        same-timestamp batch carries far fewer completions than the
        ufunc break-even width (see :mod:`repro.perf.batch`).  Requires
        numpy (raises ``RuntimeError`` without it; callers holding the
        scalar fallback should branch on ``repro.perf.batch.HAVE_NUMPY``).
        """
        if _np is None:
            raise RuntimeError("stage_state_arrays requires numpy")
        flat = [link for stage in self.stages for link in stage]
        shape = (self.n_stages, self.n_ports)
        n = len(flat)

        def _gather(values, dtype):
            return _np.fromiter(values, dtype=dtype, count=n).reshape(shape)

        return {
            "packets": _gather((r.stats.packets for r in flat), _np.int64),
            "words": _gather((r.stats.words for r in flat), _np.int64),
            "busy_cycles": _gather(
                (r.stats.busy_cycles for r in flat), _np.float64
            ),
            "rejected_offers": _gather(
                (r.stats.rejected_offers for r in flat), _np.int64
            ),
            "queued_words": _gather((r.queued_words for r in flat), _np.int64),
            "busy": _gather((r._serving for r in flat), _np.bool_),
        }

    def injection_state_arrays(self) -> dict:
        """Per-injection-port arrays (length ``n_ports``); see
        :meth:`stage_state_arrays`."""
        if _np is None:
            raise RuntimeError("injection_state_arrays requires numpy")
        ports = self.injection_ports
        n = len(ports)
        return {
            "packets": _np.fromiter(
                (p.stats.packets for p in ports), dtype=_np.int64, count=n
            ),
            "words": _np.fromiter(
                (p.stats.words for p in ports), dtype=_np.int64, count=n
            ),
            "rejected_offers": _np.fromiter(
                (p.stats.rejected_offers for p in ports),
                dtype=_np.int64,
                count=n,
            ),
            "queued_words": _np.fromiter(
                (p.queued_words for p in ports), dtype=_np.int64, count=n
            ),
            "busy": _np.fromiter(
                (p._serving for p in ports), dtype=_np.bool_, count=n
            ),
        }

    def describe(self) -> dict:
        return {
            "name": self.name,
            "ports": self.n_ports,
            "stages": self.n_stages,
            "stage_radices": list(self.radices),
            "queue_words": self.stages[0][0].capacity_words,
            "injection_queue_words": self.injection_ports[0].capacity_words,
        }

    def view_with_own_injection(self, name: str) -> "OmegaNetwork":
        """A second network *view* sharing this network's stage links
        but with its own injection ports and sinks.

        This models reserved escape buffering for one traffic class
        (e.g. replies) on a shared fabric: both classes contend inside
        the stages, but neither can starve the other's entry — the
        minimal virtual-channel-style fix for request/reply protocol
        deadlock on a single network.
        """
        view = OmegaNetwork(
            self.engine,
            name=name,
            n_ports=self.n_ports,
            switch_radix=self.radices[0],
            queue_words=self.stages[0][0].capacity_words,
            stage_cycles=self.stage_cycles,
            link_words_per_cycle=self.stages[0][0].words_per_cycle,
            injection_queue_words=self.injection_ports[0].capacity_words,
        )
        view.radices = self.radices
        view.stages = self.stages  # shared fabric
        # stale: routes were built for its own stages
        view._route_cache.clear()
        view._full_route_cache.clear()
        return view

    def register_sink(self, port: int, sink: Callable[[Packet], None]) -> None:
        """Register the delivery callback for destination ``port``."""
        self._check_port(port)
        self._sinks[port] = sink
        self._full_route_cache.clear()  # sink-terminated routes are stale

    def route_for(
        self, packet: Packet, tail: Optional[Sequence[Hop]] = None
    ) -> Sequence[Hop]:
        """The hop route for ``packet``: injection port, one output port
        per stage, then either ``tail`` hops (e.g. a memory module) or
        the registered delivery sink.

        Routes are immutable tuples, memoized per (src, dst) pair — the
        delta path is a pure function of the port pair — and, for the
        sink-terminated case, memoized *complete*, so steady-state
        routing allocates nothing.  Callers must not mutate the result;
        to extend a route, concatenate onto a new tuple (see
        ``MemoryModule.on_service_complete``).
        """
        key = (packet.src, packet.dst)
        if tail is None:
            route = self._full_route_cache.get(key)
            if route is not None:
                return route
        body = self._route_cache.get(key)
        if body is None:
            self._check_port(packet.src)
            self._check_port(packet.dst)
            hops: List[Hop] = [self.injection_ports[packet.src]]
            for stage, port in enumerate(
                delta_path(packet.src, packet.dst, self.radices)
            ):
                hops.append(self.stages[stage][port])
            body = tuple(hops)
            self._route_cache[key] = body
        if tail is not None:
            return (*body, *tail)
        sink = self._sinks.get(packet.dst)
        if sink is None:
            raise KeyError(f"{self.name}: no sink registered for port {packet.dst}")
        route = (*body, sink)
        self._full_route_cache[key] = route
        return route

    def can_inject(self, src: int) -> bool:
        """Whether source ``src``'s injection queue has space now."""
        self._check_port(src)
        return self.injection_ports[src].has_space()

    def inject(self, packet: Packet, tail: Optional[List[Hop]] = None) -> Transit:
        """Inject ``packet``; the caller must have checked
        :meth:`can_inject` (injection raises when the port is full).

        When a fault router is armed and the primary route crosses a
        down port, the packet escapes into the reply fabric instead
        (degraded-mode routing); replies never re-enter ``inject`` so
        only fresh requests are rerouted."""
        router = self.fault_router
        if router is not None and tail is not None:
            transit = router.try_reroute(self, packet, tail)
            if transit is not None:
                return transit
        packet.injected_at = self.engine.now
        route = self.route_for(packet, tail)
        transit = Transit(packet=packet, route=route, idx=0)
        if not route[0].offer(transit):  # type: ignore[union-attr]
            from repro.core.engine import SimulationError

            raise SimulationError(
                f"{self.name}: injection port {packet.src} full; pace injections"
            )
        return transit

    def injection_port(self, src: int) -> Resource:
        self._check_port(src)
        return self.injection_ports[src]

    def total_words_delivered(self) -> int:
        """Words that have left the final stage."""
        return sum(r.stats.words for r in self.stages[-1])

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ValueError(f"{self.name}: port {port} out of range 0..{self.n_ports - 1}")
