"""Network packets.

"Each network packet consists of one to four 64-bit words, the first
word containing routing and control information and the memory address"
(Section 2).  We count the header in ``words`` for request packets; a
single-word read reply carries its datum in the tagged word.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

_packet_ids = itertools.count()


class PacketKind(Enum):
    READ_REQ = "read_req"
    WRITE_REQ = "write_req"
    READ_REPLY = "read_reply"
    BLOCK_REQ = "block_req"
    BLOCK_REPLY = "block_reply"
    SYNC_REQ = "sync_req"
    SYNC_REPLY = "sync_reply"


@dataclass
class Packet:
    """One packet in flight on the forward or reverse network.

    ``src`` and ``dst`` are port indices on the network the packet rides:
    CE ports on the forward network, memory-module ports on the reverse.
    ``address`` is a word address into global memory.  ``words`` is the
    packet length in 64-bit words including the routing/control word.
    """

    kind: PacketKind
    src: int
    dst: int
    address: int
    words: int = 1
    #: process-wide-unique request identity, shared by a request packet
    #: and its :meth:`reply` — the span id the request-tracing layer
    #: (:mod:`repro.monitor.spans`) stitches on.  Assigned at the birth
    #: site unconditionally; it never feeds back into timing, so
    #: untraced runs stay bit-identical, and packets carry no *other*
    #: tracing state when no collector subscribes.
    request_id: int = field(default_factory=lambda: next(_packet_ids))
    #: free-form metadata: originating request object, sync operation, ...
    meta: Dict[str, Any] = field(default_factory=dict)
    #: set when the packet is injected (for latency accounting).
    injected_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ValueError("packet must carry at least the control word")

    @property
    def is_reply(self) -> bool:
        """Whether this packet travels the reverse (reply) direction —
        the phase classifier that stays correct on shared fabrics, where
        replies ride the same physical stage links as requests."""
        return self.kind in (
            PacketKind.READ_REPLY,
            PacketKind.BLOCK_REPLY,
            PacketKind.SYNC_REPLY,
        )

    def origin(self) -> str:
        """Best-effort classification of the reference's birth site from
        kind and metadata (the authoritative label travels on the
        ``req.birth`` signal; this is the fallback for bare packets)."""
        if self.kind in (PacketKind.SYNC_REQ, PacketKind.SYNC_REPLY):
            return "sync"
        if self.kind is PacketKind.WRITE_REQ:
            return "store"
        if self.kind in (PacketKind.BLOCK_REQ, PacketKind.BLOCK_REPLY):
            return "block"
        if "pfu_stream" in self.meta:
            return "prefetch"
        return "demand"

    def reply(self, kind: PacketKind, words: int, **meta: Any) -> "Packet":
        """Build the reply packet travelling back from ``dst`` to ``src``."""
        merged = dict(self.meta)
        merged.update(meta)
        return Packet(
            kind=kind,
            src=self.dst,
            dst=self.src,
            address=self.address,
            words=words,
            request_id=self.request_id,
            meta=merged,
        )
