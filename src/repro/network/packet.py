"""Network packets.

"Each network packet consists of one to four 64-bit words, the first
word containing routing and control information and the memory address"
(Section 2).  We count the header in ``words`` for request packets; a
single-word read reply carries its datum in the tagged word.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

_packet_ids = itertools.count()


class PacketKind(Enum):
    READ_REQ = "read_req"
    WRITE_REQ = "write_req"
    READ_REPLY = "read_reply"
    BLOCK_REQ = "block_req"
    BLOCK_REPLY = "block_reply"
    SYNC_REQ = "sync_req"
    SYNC_REPLY = "sync_reply"


@dataclass
class Packet:
    """One packet in flight on the forward or reverse network.

    ``src`` and ``dst`` are port indices on the network the packet rides:
    CE ports on the forward network, memory-module ports on the reverse.
    ``address`` is a word address into global memory.  ``words`` is the
    packet length in 64-bit words including the routing/control word.
    """

    kind: PacketKind
    src: int
    dst: int
    address: int
    words: int = 1
    request_id: int = field(default_factory=lambda: next(_packet_ids))
    #: free-form metadata: originating request object, sync operation, ...
    meta: Dict[str, Any] = field(default_factory=dict)
    #: set when the packet is injected (for latency accounting).
    injected_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ValueError("packet must carry at least the control word")

    def reply(self, kind: PacketKind, words: int, **meta: Any) -> "Packet":
        """Build the reply packet travelling back from ``dst`` to ``src``."""
        merged = dict(self.meta)
        merged.update(meta)
        return Packet(
            kind=kind,
            src=self.dst,
            dst=self.src,
            address=self.address,
            words=words,
            request_id=self.request_id,
            meta=merged,
        )
