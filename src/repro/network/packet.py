"""Network packets.

"Each network packet consists of one to four 64-bit words, the first
word containing routing and control information and the memory address"
(Section 2).  We count the header in ``words`` for request packets; a
single-word read reply carries its datum in the tagged word.

Hot-path design
---------------

Packets are the simulator's top allocation site (one per global
reference, plus its reply), so the class is ``__slots__``-based and
request packets are recycled through a bounded **free list**:

* issue sites acquire with :meth:`Packet.acquire` (new ``request_id``,
  cleared ``meta``, all tracing/fault state reset — recycled packets
  can never leak a previous reference's fields);
* a memory module turns a request into its reply **in place** with
  :meth:`Packet.become_reply` (same object, same ``request_id``, same
  ``meta`` dict), so the round trip allocates exactly one packet — and
  zero once the pool is warm;
* terminal consumers (the machine's delivery sinks, a module consuming
  a store) hand the packet back with :meth:`Packet.release`.

``set_pool_enabled(False)`` turns recycling off (every acquire
allocates, release is a no-op) — the A/B switch the pool tests use to
pin bit-identical cycles against the unpooled path.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Dict, List, Optional

_packet_ids = itertools.count()


class PacketKind(Enum):
    READ_REQ = "read_req"
    WRITE_REQ = "write_req"
    READ_REPLY = "read_reply"
    BLOCK_REQ = "block_req"
    BLOCK_REPLY = "block_reply"
    SYNC_REQ = "sync_req"
    SYNC_REPLY = "sync_reply"


#: kinds travelling the reverse (reply) direction — the phase
#: classifier that stays correct on shared fabrics, where replies ride
#: the same physical stage links as requests.
_REPLY_KINDS = frozenset(
    (PacketKind.READ_REPLY, PacketKind.BLOCK_REPLY, PacketKind.SYNC_REPLY)
)

#: free-list depth cap; in-flight packets beyond it simply fall back to
#: the garbage collector (exhaustion regrows through plain allocation).
_POOL_MAX = 4096

_pool: List["Packet"] = []
_pool_enabled = True


def set_pool_enabled(enabled: bool) -> bool:
    """Toggle packet recycling; returns the previous setting.  With the
    pool off every :meth:`Packet.acquire` allocates a fresh packet and
    :meth:`Packet.release` is a no-op — the reference behaviour the
    pooled path must match bit-for-bit."""
    global _pool_enabled
    previous = _pool_enabled
    _pool_enabled = enabled
    if not enabled:
        _pool.clear()
    return previous


def pool_stats() -> Dict[str, int]:
    """Introspection for tests: current free-list depth and cap."""
    return {"free": len(_pool), "max": _POOL_MAX, "enabled": int(_pool_enabled)}


class Packet:
    """One packet in flight on the forward or reverse network.

    ``src`` and ``dst`` are port indices on the network the packet rides:
    CE ports on the forward network, memory-module ports on the reverse.
    ``address`` is a word address into global memory.  ``words`` is the
    packet length in 64-bit words including the routing/control word.

    ``request_id`` is the process-wide-unique request identity, shared
    by a request packet and its reply — the span id the request-tracing
    layer (:mod:`repro.monitor.spans`) stitches on.  Assigned at the
    birth site unconditionally; it never feeds back into timing, so
    untraced runs stay bit-identical, and packets carry no *other*
    tracing state when no collector subscribes.

    ``is_reply`` is precomputed from ``kind`` (and kept in sync by
    :meth:`become_reply`) so hot monitors read an attribute, not a
    property.

    ``trace`` is the sampling mark: ``net.span`` occupancy records are
    emitted only for packets whose mark is set.  It defaults True (full
    tracing sees everything) and survives :meth:`become_reply`; a
    sampling collector clears it at birth for the references it skips,
    so an unsampled reference costs two attribute loads per hop instead
    of a record build.  The mark is observational metadata — nothing in
    the machine model reads it, so cycles stay bit-identical whatever
    its value.
    """

    __slots__ = (
        "kind",
        "src",
        "dst",
        "address",
        "words",
        "request_id",
        "meta",
        "injected_at",
        "is_reply",
        "trace",
        "_pooled",
    )

    def __init__(
        self,
        kind: PacketKind,
        src: int,
        dst: int,
        address: int,
        words: int = 1,
        request_id: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
        injected_at: Optional[float] = None,
    ) -> None:
        if words < 1:
            raise ValueError("packet must carry at least the control word")
        self.kind = kind
        self.src = src
        self.dst = dst
        self.address = address
        self.words = words
        self.request_id = (
            next(_packet_ids) if request_id is None else request_id
        )
        self.meta: Dict[str, Any] = {} if meta is None else meta
        self.injected_at = injected_at
        self.is_reply = kind in _REPLY_KINDS
        self.trace = True
        self._pooled = False

    # -- recycling ---------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        kind: PacketKind,
        src: int,
        dst: int,
        address: int,
        words: int = 1,
    ) -> "Packet":
        """A fresh request packet, recycled from the free list when one
        is available.  Every field is reset here — ``meta`` is cleared,
        ``injected_at`` dropped, a new ``request_id`` drawn — so no
        state of the previous reference survives into the next one.
        Callers fill ``meta`` keys after acquiring."""
        if _pool:
            packet = _pool.pop()
            packet.kind = kind
            packet.src = src
            packet.dst = dst
            packet.address = address
            packet.words = words
            packet.request_id = next(_packet_ids)
            packet.meta.clear()
            packet.injected_at = None
            packet.is_reply = kind in _REPLY_KINDS
            packet.trace = True
            packet._pooled = False
            return packet
        return cls(kind, src, dst, address, words=words)

    def release(self) -> None:
        """Hand the packet back to the free list.  Idempotent (a second
        release is a no-op) and a no-op when pooling is disabled or the
        list is full — the packet then dies by garbage collection."""
        if self._pooled or not _pool_enabled:
            return
        if len(_pool) < _POOL_MAX:
            self._pooled = True
            _pool.append(self)

    def become_reply(self, kind: PacketKind, words: int) -> "Packet":
        """Transform this request into its reply **in place**: direction
        reversed, same ``request_id``, same ``meta`` dict (the reply
        carries the request's routing/handler metadata exactly as the
        copying :meth:`reply` did).  Returns ``self``."""
        self.kind = kind
        self.src, self.dst = self.dst, self.src
        self.words = words
        self.is_reply = kind in _REPLY_KINDS
        return self

    # -- classification ----------------------------------------------------

    def origin(self) -> str:
        """Best-effort classification of the reference's birth site from
        kind and metadata (the authoritative label travels on the
        ``req.birth`` signal; this is the fallback for bare packets)."""
        if self.kind in (PacketKind.SYNC_REQ, PacketKind.SYNC_REPLY):
            return "sync"
        if self.kind is PacketKind.WRITE_REQ:
            return "store"
        if self.kind in (PacketKind.BLOCK_REQ, PacketKind.BLOCK_REPLY):
            return "block"
        if "pfu_stream" in self.meta:
            return "prefetch"
        return "demand"

    def reply(self, kind: PacketKind, words: int, **meta: Any) -> "Packet":
        """Build the reply packet travelling back from ``dst`` to
        ``src`` as a *new* object (the allocation-free in-place path is
        :meth:`become_reply`; this copying form remains for callers that
        keep the request alive)."""
        merged = dict(self.meta)
        merged.update(meta)
        return Packet(
            kind=kind,
            src=self.dst,
            dst=self.src,
            address=self.address,
            words=words,
            request_id=self.request_id,
            meta=merged,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(kind={self.kind}, src={self.src}, dst={self.dst}, "
            f"address={self.address}, words={self.words}, "
            f"request_id={self.request_id}, meta={self.meta}, "
            f"injected_at={self.injected_at})"
        )
