"""The Cedar application performance model.

``execute`` runs one Perfect code profile under a restructuring
pipeline and machine settings, returning wall time and MFLOPS:

* loops the pipeline failed to parallelize run at scalar speed;
* parallelized loops run their iterations over the machine's CEs at
  the loop's vector speed, paying the runtime library's startup and
  per-claim fetch costs (which triple without Cedar synchronization)
  and the no-prefetch inflation on their global vector accesses;
* the serial remainder (including I/O) runs at scalar speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import CedarConfig, DEFAULT_CONFIG
from repro.perfect.ir_builder import build_ir
from repro.perfect.profiles import CodeProfile, NOPREF_INFLATION
from repro.restructurer.pipeline import Pipeline, RestructuringReport
from repro.xylem.runtime import LoopKind, RuntimeLibrary

#: load-imbalance factor for ragged loops left un-stripmined.
IMBALANCE_FACTOR = 1.6


@dataclass(frozen=True)
class ExecutionResult:
    """One modelled run of one code version.

    ``breakdown`` decomposes ``seconds`` into: ``io`` (serial file
    I/O), ``serial`` (other scalar-speed work, including loops the
    compiler could not parallelize), ``parallel`` (parallel-loop
    compute), ``scheduling`` (runtime-library startup + iteration
    fetches), and ``memory_penalty`` (extra cost of global accesses
    when prefetch is off).  The hand-optimization models of Table 4
    operate on these components.
    """

    code: str
    version: str
    seconds: float
    mflops: float
    improvement: float  # speed improvement over uniprocessor scalar
    parallel_coverage: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.code:8s} {self.version:24s} {self.seconds:9.1f}s "
            f"({self.improvement:5.1f}x)  {self.mflops:6.1f} MFLOPS"
        )


class CedarApplicationModel:
    """Executes code profiles on the modelled 4x8 Cedar."""

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        processors: int = 32,
    ) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        self.config = config
        self.processors = processors

    def restructure(self, code: CodeProfile, pipeline: Pipeline) -> RestructuringReport:
        return pipeline.restructure(build_ir(code))

    def execute(
        self,
        code: CodeProfile,
        pipeline: Pipeline,
        use_cedar_sync: bool = True,
        use_prefetch: bool = True,
        confine_to_cluster: bool = False,
    ) -> ExecutionResult:
        """Model one run.

        ``confine_to_cluster`` reproduces the Perfect-rules option the
        paper mentions ("in a few cases program execution was confined
        to a single cluster to avoid intercluster overhead"): loops run
        as CDOALLs on one cluster's 8 CEs — an 18-cycle concurrency-bus
        start instead of the runtime library's 90 us, at a quarter of
        the processors.
        """
        report = self.restructure(code, pipeline)
        runtime = RuntimeLibrary(
            self.config.runtime,
            use_cedar_sync=use_cedar_sync,
            cycle_ns=self.config.ce.cycle_ns,
        )
        processors = self.processors
        if confine_to_cluster:
            processors = min(processors, self.config.ces_per_cluster)
        ts = code.serial_seconds
        serial_total = code.serial_fraction * ts
        io = serial_total * code.io_fraction_of_serial
        parts = {
            "io": io,
            "serial": serial_total - io,
            "parallel": 0.0,
            "scheduling": 0.0,
            "memory_penalty": 0.0,
        }
        for loop, verdict in zip(code.loops, report.verdicts):
            share = loop.weight * ts
            if loop.weight <= 0:
                continue
            if not verdict.parallel:
                parts["serial"] += share
                continue
            grain_serial_us = share * 1e6 / (loop.invocations * loop.trips)
            grain_us = grain_serial_us / loop.vector_speedup
            if loop.ragged and not verdict.balanced_stripmine:
                grain_us *= IMBALANCE_FACTOR
            penalty_us = 0.0
            if not use_prefetch and not loop.scalar_dominated:
                penalty_us = grain_us * loop.global_vector_fraction * (
                    NOPREF_INFLATION - 1.0
                )
            kind = LoopKind.CDOALL if confine_to_cluster else loop.kind
            cost = runtime.loop_cost(kind)
            waves = -(-loop.trips // processors)
            per_inv_sched_us = cost.startup_us + waves * cost.fetch_us
            parts["scheduling"] += loop.invocations * per_inv_sched_us * 1e-6
            parts["parallel"] += loop.invocations * waves * grain_us * 1e-6
            parts["memory_penalty"] += loop.invocations * waves * penalty_us * 1e-6
        total = sum(parts.values())
        label = self._version_label(pipeline, use_cedar_sync, use_prefetch)
        if confine_to_cluster:
            label += " (1 cluster)"
        return ExecutionResult(
            code=code.name,
            version=label,
            seconds=total,
            mflops=code.flops / total / 1e6,
            improvement=ts / total,
            parallel_coverage=report.parallel_coverage,
            breakdown=parts,
        )

    @staticmethod
    def _version_label(pipeline: Pipeline, sync: bool, prefetch: bool) -> str:
        label = pipeline.name
        if not sync:
            label += " -sync"
        if not prefetch:
            label += " -prefetch"
        return label
