"""Application-level performance models (see DESIGN.md, layer 2).

Full Perfect codes run for hundreds of machine-seconds; the cycle-level
simulator covers the kernel studies, while this layer composes compiler
coverage (from the restructurer), loop-scheduling overheads (from the
runtime library), and memory behaviour (prefetch/no-prefetch word costs
calibrated on the simulator) into whole-application execution times.
"""

from repro.perf.model import CedarApplicationModel, ExecutionResult

__all__ = ["CedarApplicationModel", "ExecutionResult"]
