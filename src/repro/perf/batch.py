"""The batched-engine feature gate and the vectorization substrate.

This module is the one place that answers two questions for the rest of
the tree:

* **Is the batched drain on?**  ``CEDAR_BATCHED=0/1`` (default on),
  read at call time so the identity harness can flip it between runs in
  one process.  The implementation lives in :mod:`repro.core.engine`;
  this module re-exports the gate and factory under the stable
  ``repro.perf.batch`` name so perf tooling does not import engine
  internals.
* **Is numpy available?**  numpy is a declared dependency, but the
  scalar simulation path must keep working without it (minimal
  installs, stripped containers).  Import :data:`np` from here — it is
  ``None`` when numpy is absent — and guard vectorized aggregation with
  ``if np is not None``.  Components expose their parallel-array state
  snapshots (``OmegaNetwork.stage_state_arrays``,
  ``GlobalMemory.module_state_arrays``) through this guard.

Why the hot *service* loops are not numpy-vectorized (measured on the
perf-gate workload, see ``python -m repro profile --compare-batched``):
a same-timestamp batch carries ~2-20 link/module completions, while a
numpy ufunc call breaks even against scalar Python arithmetic only
around ~50-100 elements.  Below that width, array round-trips cost more
than they save, so the batched engine instead removes Python *frames*
(group handlers, bucket queue) and keeps per-record arithmetic scalar.
The array seam here is for width-proportional work: end-of-run
aggregation, analysis, and probe post-processing over whole port/module
populations.
"""

from __future__ import annotations

from repro.core.engine import (
    BatchedEngine,
    Engine,
    batched_enabled,
    make_engine,
    register_batch_handler,
)

try:  # guarded: the scalar path must work on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover - exercised on stripped installs
    np = None  # type: ignore[assignment]

#: True when numpy imported; vectorized aggregation paths key off this.
HAVE_NUMPY = np is not None

__all__ = [
    "BatchedEngine",
    "Engine",
    "HAVE_NUMPY",
    "batched_enabled",
    "make_engine",
    "np",
    "register_batch_handler",
]
