"""Request-level causal tracing: per-reference spans on the signal bus.

Every global reference a CE or PFU issues already carries a stable
``request_id`` (shared by the request packet and its reply).  A
:class:`SpanCollector` subscribes *broadcast* to the architectural
signals a reference crosses on its way out and back —

* ``req.birth`` at the issue site (PFU word issue, CE demand load,
  store, block transfer, sync instruction),
* ``net.span`` at every network link and memory module — ONE
  consolidated record per queue occupancy, emitted at departure with
  all three edge times (queue entry, service completion, departure —
  splitting each hop into queue-wait / service / head-of-line-blocked
  segments with a single callback instead of three),
* ``gmem.service`` at the memory module,
* ``sync.op`` for synchronization outcomes,
* ``fault.*`` for retry/stall annotations,
* ``req.deliver`` back at the originating port —

and stitches them into one **span tree per request**: an end-to-end
span decomposed into forward-network, memory (wait / service / block)
and reverse-network phases, with one child span per hop.

The phases are a *segmentation of the request's timeline* — forward
ends where memory-queue entry begins, memory-block ends where the
reverse network begins — so their sum reconciles with the end-to-end
latency exactly, not approximately.

Zero-cost contract: all publishers guard their emissions on subscriber
count, so with no collector attached no payload is ever built and runs
are bit-identical (``tests/test_zero_cost.py`` pins this).  Packets
carry no tracing state beyond the id they always had.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gmemory.sync import format_sync_op
from repro.monitor.histogram import Histogrammer

#: exported spans-JSON schema version (see :func:`validate_spans`).
SPANS_VERSION = 1

#: the streaming spans-JSON schema version (``"mode": "streaming"``
#: documents produced by :class:`~repro.monitor.streamstore.StreamingSpanStore`).
STREAM_SPANS_VERSION = 2

#: the five phases of a global reference, in timeline order.
PHASES = ("forward", "memory_wait", "memory_service", "memory_block", "reverse")


def _stage_of(resource_name: str) -> str:
    """``"fwd.s0[3]"`` -> ``"fwd.s0"``; ``"gm[4]"`` -> ``"gmem"``."""
    if resource_name.startswith("gm["):
        return "gmem"
    return resource_name.split("[", 1)[0]


class HopSpan:
    """One network hop of a request: its queue entry, service end and
    departure on one link, plus the link's nominal service time (rate
    parameters captured at enqueue, so queue-wait = time at the head
    minus service — including any fault stall or recovery hold)."""

    __slots__ = ("resource", "stage", "is_reply", "enqueue", "svc",
                 "service_end", "depart")

    def __init__(self, resource: str, stage: str, is_reply: bool,
                 enqueue: float, svc: float) -> None:
        self.resource = resource
        self.stage = stage
        self.is_reply = is_reply
        self.enqueue = enqueue
        self.svc = svc
        self.service_end: Optional[float] = None
        self.depart: Optional[float] = None

    def segments(self) -> Optional[Tuple[float, float, float]]:
        """(queue_wait, service, blocked) cycles, or None while the hop
        is still in flight."""
        if self.service_end is None or self.depart is None:
            return None
        wait = max(0.0, self.service_end - self.svc - self.enqueue)
        blocked = max(0.0, self.depart - self.service_end)
        return wait, self.svc, blocked

    def to_dict(self) -> dict:
        out = {
            "resource": self.resource,
            "stage": self.stage,
            "direction": "reverse" if self.is_reply else "forward",
            "enqueue": self.enqueue,
            "service_end": self.service_end,
            "depart": self.depart,
        }
        segments = self.segments()
        if segments is not None:
            out["queue_wait"], out["service"], out["blocked"] = segments
        return out


class RequestSpan:
    """The stitched span tree of one global reference."""

    __slots__ = (
        "request_id", "origin", "port", "address", "kind", "words", "birth",
        "hops", "mem_module", "mem_enqueue", "mem_cycles", "mem_service_end",
        "mem_depart", "sync_success", "sync_op", "faults", "end", "complete",
    )

    def __init__(self, request_id: int, origin: str, port: int, address: int,
                 kind: str, words: int, birth: float) -> None:
        self.request_id = request_id
        self.origin = origin
        self.port = port
        self.address = address
        self.kind = kind
        self.words = words
        self.birth = birth
        self.hops: List[HopSpan] = []
        self.mem_module: Optional[int] = None
        self.mem_enqueue: Optional[float] = None
        self.mem_cycles: Optional[float] = None
        self.mem_service_end: Optional[float] = None
        self.mem_depart: Optional[float] = None
        self.sync_success: Optional[bool] = None
        self.sync_op: Optional[str] = None
        self.faults: List[dict] = []
        self.end: Optional[float] = None
        self.complete = False

    # -- derived latency ---------------------------------------------------

    @property
    def latency(self) -> Optional[float]:
        return None if self.end is None else self.end - self.birth

    def phases(self) -> Optional[Dict[str, float]]:
        """Per-phase latency decomposition, or None while incomplete.

        Defined as a segmentation of [birth, end] at the memory-module
        event times, so ``sum(phases.values()) == latency`` exactly.
        """
        if self.end is None or self.mem_enqueue is None:
            return None
        if self.mem_service_end is None or self.mem_cycles is None:
            return None
        depart = self.mem_depart if self.mem_depart is not None else self.end
        return {
            "forward": self.mem_enqueue - self.birth,
            "memory_wait": (self.mem_service_end - self.mem_cycles)
            - self.mem_enqueue,
            "memory_service": self.mem_cycles,
            "memory_block": depart - self.mem_service_end,
            "reverse": self.end - depart,
        }

    def to_dict(self) -> dict:
        out = {
            "id": self.request_id,
            "origin": self.origin,
            "port": self.port,
            "address": self.address,
            "kind": self.kind,
            "words": self.words,
            "birth": self.birth,
            "end": self.end,
            "latency": self.latency,
            "complete": self.complete,
            "hops": [hop.to_dict() for hop in self.hops],
        }
        phases = self.phases()
        if phases is not None:
            out["phases"] = phases
        if self.mem_module is not None:
            out["memory"] = {
                "module": self.mem_module,
                "enqueue": self.mem_enqueue,
                "service_cycles": self.mem_cycles,
                "service_end": self.mem_service_end,
                "depart": self.mem_depart,
            }
        if self.sync_success is not None:
            out["sync"] = {"success": self.sync_success, "op": self.sync_op}
        if self.faults:
            out["faults"] = list(self.faults)
        return out


#: event-record tags for the deferred stitching buffer.  ``net.span``
#: records carry no tag — they arrive pre-packed from the emission site
#: with the :class:`~repro.network.resource.Resource` in slot 0, so the
#: drain loop distinguishes them by ``type(ev[0]) is not int``.
_EV_GSVC = 1
_EV_BIRTH = 2
_EV_DELIVER = 3
_EV_SYNC = 4
_EV_FAULT = 5
_EV_SYNC_TIMEOUT = 6


class SpanCollector:
    """Broadcast bus subscriber stitching per-request span trees.

    Attach before the machine assembles (via a context observer) or to
    an already-built machine's bus; only references born *after* attach
    are traced — events for unknown request ids (cluster-local traffic,
    pre-attach births) are ignored.

    ``max_requests`` bounds memory: births past the cap count into
    :attr:`dropped` instead of being tracked.

    Two-layer design
    ----------------

    Stitching is *deferred*: the signal handlers that run inside the
    simulation loop only append flat tuples to an event buffer —
    extracting the packet fields they need **at event time**, because
    packets are pooled and mutate (a request becomes its reply in
    place, then is recycled into an unrelated reference).  The actual
    span assembly — dict lookups, :class:`HopSpan` construction —
    replays the buffer in temporal order on first read
    (:attr:`requests`, :meth:`complete_spans`, :meth:`spans`, ...),
    outside the measured run loop.  Results are identical to eager
    stitching; only *when* the work happens changes.

    Hop data rides the consolidated ``net.span`` signal — one emission
    per queue occupancy, at departure, carrying all three edge times —
    instead of the ``net.enqueue``/``net.service``/``net.hop`` triple,
    so a traced hop costs one subscriber callback rather than three
    (the point signals stay for the utilization monitors, which need
    the edges *at their times*).  Occupancies still in flight when the
    run ends have not departed and therefore produce no hop record.
    """

    SIGNALS = (
        "req.birth",
        "req.deliver",
        "net.span",
        "gmem.service",
        "sync.op",
        "fault.transient",
        "fault.ecc",
        "fault.sync_timeout",
        "fault.reroute",
    )

    DEFAULT_MAX_REQUESTS = 200_000

    def __init__(self, max_requests: int = DEFAULT_MAX_REQUESTS) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be positive")
        self.max_requests = max_requests
        self._requests: Dict[int, RequestSpan] = {}
        self._dropped = 0
        self._completed = 0
        self._events: List[tuple] = []
        self._open_syncs: Dict[int, List[int]] = {}
        self._subscriptions: List[tuple] = []

    # -- attachment --------------------------------------------------------

    def attach(self, bus) -> "SpanCollector":
        for name in self.SIGNALS:
            if bus.declared(name):
                if name == "net.span":
                    handler = self._span_subscriber()
                else:
                    handler = getattr(self, "_on_" + name.replace(".", "_"))
                self._subscriptions.append((bus, bus.subscribe(name, handler)))
        return self

    def detach(self) -> None:
        for bus, subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions = []

    # -- hot-path signal handlers (record only; no stitching) --------------

    def _on_req_birth(self, packet, origin: str, time: float) -> None:
        self._events.append((
            _EV_BIRTH, packet.request_id, origin, packet.src,
            packet.address, packet.kind.name, packet.words, time,
        ))

    def _on_req_deliver(self, packet, time: float) -> None:
        self._events.append((_EV_DELIVER, packet.request_id, time))

    def _span_subscriber(self):
        """The ``net.span`` callback.  Records arrive pre-packed from
        the emission site (packet fields already extracted — see the
        catalog entry), so the full collector buffers them with the
        list's own C-level ``extend``: a traced hop costs no Python
        frame at all, and flattening the eight atomic slots into the
        buffer lets the record tuple die immediately — tracing adds no
        surviving GC-tracked objects, keeping collection pauses out of
        the measured loop.  Subclasses that filter per record
        (sampling) return a closure instead."""
        return self._events.extend

    def _on_gmem_service(self, module: int, packet, time: float,
                         cycles: float) -> None:
        self._events.append(
            (_EV_GSVC, packet.request_id, module, cycles, time)
        )

    def _on_sync_op(self, module: int, address: int, time: float, packet,
                    success: bool) -> None:
        self._events.append((
            _EV_SYNC, packet.request_id, success, packet.meta.get("sync"),
            time,
        ))

    def _on_fault_transient(self, resource, packet, time: float,
                            backoff_cycles: float) -> None:
        self._events.append((_EV_FAULT, packet.request_id, {
            "type": "transient", "resource": resource.name,
            "time": time, "cycles": backoff_cycles,
        }))

    def _on_fault_ecc(self, module: int, packet, time: float,
                      stall_cycles: float) -> None:
        self._events.append((_EV_FAULT, packet.request_id, {
            "type": "ecc", "module": module,
            "time": time, "cycles": stall_cycles,
        }))

    def _on_fault_reroute(self, network: str, packet, time: float) -> None:
        self._events.append((_EV_FAULT, packet.request_id, {
            "type": "reroute", "network": network, "time": time,
        }))

    def _on_fault_sync_timeout(self, module: int, address: int, time: float,
                               penalty_cycles: float) -> None:
        self._events.append(
            (_EV_SYNC_TIMEOUT, module, address, time, penalty_cycles)
        )

    # -- deferred stitching ------------------------------------------------

    def _drain(self) -> None:
        """Replay buffered events through the stitching logic.  Events
        are buffered in emission order, which is temporal order, so the
        replayed state transitions match eager stitching exactly."""
        buffer = self._events
        if not buffer:
            return
        # snapshot and clear IN PLACE: the bus holds the buffer's bound
        # ``extend`` as the net.span subscriber, so the list object must
        # stay the same for the collector's lifetime.
        events = buffer[:]
        del buffer[:]
        requests = self._requests
        i = 0
        n = len(events)
        while i < n:
            ev = events[i]
            if ev.__class__ is str:
                # a flat eight-slot net.span record (see the catalog
                # entry); slot 0 is the resource name — the only string
                # that ever lands in the buffer at top level, so the
                # type check is the dispatch.
                (name, rid, is_reply, is_write, svc,
                 enqueue, service_end, depart) = events[i:i + 8]
                i += 8
                span = requests.get(rid)
                if span is None or span.complete:
                    continue
                if name.startswith("gm["):
                    span.mem_enqueue = enqueue
                    span.mem_depart = depart
                    # stores are terminal at the module: no reply
                    # travels back
                    if is_write:
                        self._finish(span, depart)
                    continue
                hop = HopSpan(name, _stage_of(name), is_reply, enqueue, svc)
                hop.service_end = service_end
                hop.depart = depart
                span.hops.append(hop)
                continue
            i += 1
            tag = ev[0]
            if tag == _EV_GSVC:
                _, rid, module, cycles, time = ev
                span = requests.get(rid)
                if span is not None:
                    span.mem_module = module
                    span.mem_cycles = cycles
                    span.mem_service_end = time
            elif tag == _EV_BIRTH:
                _, rid, origin, port, address, kind, words, time = ev
                if len(requests) >= self.max_requests and not self._make_room():
                    self._dropped += 1
                    continue
                requests[rid] = RequestSpan(
                    rid, origin, port, address, kind, words, time
                )
                if origin == "sync":
                    self._open_syncs.setdefault(address, []).append(rid)
            elif tag == _EV_DELIVER:
                _, rid, time = ev
                span = requests.get(rid)
                if span is not None and not span.complete:
                    self._finish(span, time)
            elif tag == _EV_SYNC:
                _, rid, success, operation, time = ev
                span = requests.get(rid)
                if span is not None:
                    span.sync_success = success
                    span.sync_op = format_sync_op(operation)
            elif tag == _EV_FAULT:
                _, rid, fault = ev
                span = requests.get(rid)
                if span is not None:
                    span.faults.append(fault)
            else:  # _EV_SYNC_TIMEOUT
                _, module, address, time, penalty = ev
                # no packet on this signal: charge the oldest in-flight
                # sync to the same address (the one being retried).
                for rid in self._open_syncs.get(address, ()):
                    span = requests.get(rid)
                    if span is not None and not span.complete:
                        span.faults.append({
                            "type": "sync_timeout", "module": module,
                            "time": time, "cycles": penalty,
                        })
                        break

    # -- stitching helpers -------------------------------------------------

    def _make_room(self) -> bool:
        """Called when a birth arrives at the ``max_requests`` cap.
        Return True after freeing a tracked slot to admit the new
        request; the buffered collector never frees (drop-at-cap keeps
        the *earliest* population, which exact analyses rely on) — the
        streaming store overrides this to evict its oldest in-flight
        span into the exemplar reservoir instead."""
        return False

    def _finish(self, span: RequestSpan, time: float) -> None:
        span.end = time
        span.complete = True
        self._completed += 1
        if span.origin == "sync":
            ids = self._open_syncs.get(span.address)
            if ids and span.request_id in ids:
                ids.remove(span.request_id)

    # -- results (every accessor drains first) -----------------------------

    @property
    def requests(self) -> Dict[int, RequestSpan]:
        """Stitched spans keyed by request id (drains the buffer)."""
        self._drain()
        return self._requests

    @property
    def completed(self) -> int:
        self._drain()
        return self._completed

    @property
    def dropped(self) -> int:
        self._drain()
        return self._dropped

    @property
    def pending_events(self) -> int:
        """Buffered slots not yet stitched (introspection/tests).
        ``net.span`` records occupy eight flat slots each; every other
        event is one tuple — so this counts buffer entries, not
        events."""
        return len(self._events)

    def complete_spans(self) -> List[RequestSpan]:
        self._drain()
        return [s for s in self._requests.values() if s.complete]

    def incomplete_spans(self) -> List[RequestSpan]:
        """Requests still in flight — a simulation that drains fully
        should leave none; orphans point at lost replies."""
        self._drain()
        return [s for s in self._requests.values() if not s.complete]

    def spans(self) -> dict:
        """The JSON-serializable spans document (schema versioned;
        checked by :func:`validate_spans`)."""
        self._drain()
        ordered = sorted(self._requests.values(), key=lambda s: s.birth)
        return {
            "version": SPANS_VERSION,
            "complete": self._completed,
            "incomplete": len(self._requests) - self._completed,
            "dropped": self._dropped,
            "requests": [span.to_dict() for span in ordered],
        }

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.spans(), fh)


# ---------------------------------------------------------------------------
# latency analysis


class LatencyAnalysis:
    """Latency decomposition, percentiles and bottleneck attribution
    over a :class:`SpanCollector`'s completed spans.

    Percentiles run through :class:`Histogrammer` (the paper's 64K
    hardware counters) with within-bin interpolation; means, shares and
    the reconciliation check use exact arithmetic.
    """

    QUANTILES = (0.5, 0.9, 0.95, 0.99)

    def __init__(self, spans: Sequence[RequestSpan], bins: int = 2048,
                 dropped: int = 0) -> None:
        self.spans = [s for s in spans if s.complete and s.phases() is not None]
        self.bins = bins
        #: births the collector refused at its cap — the analyzed
        #: population is silently truncated when this is non-zero, so
        #: renderers surface it next to the quantile tables.
        self.dropped = dropped

    @classmethod
    def from_collector(cls, collector: SpanCollector,
                       bins: int = 2048) -> "LatencyAnalysis":
        return cls(collector.complete_spans(), bins=bins,
                   dropped=collector.dropped)

    @property
    def requests(self) -> int:
        """Phased complete requests in the analyzed population (the
        same protocol accessor the streaming analysis answers from its
        sketch counts)."""
        return len(self.spans)

    # -- percentile machinery ----------------------------------------------

    def _histogram(self, values: Sequence[float]) -> Histogrammer:
        hi = max(max(values), 1e-9)
        hist = Histogrammer(0.0, hi * (1.0 + 1e-6), bins=self.bins)
        for value in values:
            hist.record(value)
        return hist

    def _stats_row(self, values: Sequence[float]) -> dict:
        hist = self._histogram(values)
        p50, p90, p95, p99 = hist.quantiles(self.QUANTILES)
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": p50, "p90": p90, "p95": p95, "p99": p99,
            "max": max(values),
        }

    # -- decompositions ----------------------------------------------------

    def end_to_end(self) -> Dict[str, dict]:
        """Latency statistics per origin class plus ``"all"``."""
        by_origin: Dict[str, List[float]] = {}
        for span in self.spans:
            by_origin.setdefault(span.origin, []).append(span.latency)
        out = {
            origin: self._stats_row(values)
            for origin, values in sorted(by_origin.items())
        }
        if self.spans:
            out["all"] = self._stats_row([s.latency for s in self.spans])
        return out

    def phase_decomposition(self) -> Dict[str, dict]:
        """Statistics for each of the five phases, with each phase's
        share of total (sum over requests) end-to-end latency."""
        series: Dict[str, List[float]] = {phase: [] for phase in PHASES}
        for span in self.spans:
            for phase, value in span.phases().items():
                series[phase].append(value)
        total = sum(s.latency for s in self.spans) or 1.0
        out = {}
        for phase in PHASES:
            values = series[phase]
            if not values:
                continue
            row = self._stats_row(values)
            row["share"] = sum(values) / total
            out[phase] = row
        return out

    def stage_decomposition(self) -> Dict[str, dict]:
        """Queue-wait / service / blocked cycles per network stage (and
        the memory modules), averaged per traversal, with each stage's
        share of total end-to-end latency."""
        acc: Dict[str, List[float]] = {}
        for span in self.spans:
            for hop in span.hops:
                segments = hop.segments()
                if segments is None:
                    continue
                wait, service, blocked = segments
                entry = acc.setdefault(hop.stage, [0.0, 0.0, 0.0, 0])
                entry[0] += wait
                entry[1] += service
                entry[2] += blocked
                entry[3] += 1
            phases = span.phases()
            entry = acc.setdefault("gmem", [0.0, 0.0, 0.0, 0])
            entry[0] += phases["memory_wait"]
            entry[1] += phases["memory_service"]
            entry[2] += phases["memory_block"]
            entry[3] += 1
        total = sum(s.latency for s in self.spans) or 1.0
        out = {}
        for stage in sorted(acc):
            wait, service, blocked, count = acc[stage]
            out[stage] = {
                "traversals": count,
                "queue_wait": wait / count,
                "service": service / count,
                "blocked": blocked / count,
                "share": (wait + service + blocked) / total,
            }
        return out

    # -- bottleneck attribution --------------------------------------------

    def tail_cohort(self, q: float = 0.95) -> List[RequestSpan]:
        """Requests at or above the ``q`` end-to-end percentile."""
        if not self.spans:
            return []
        threshold = self._histogram(
            [s.latency for s in self.spans]
        ).percentile(q)
        return [s for s in self.spans if s.latency >= threshold]

    def bottleneck_attribution(self, q: float = 0.95) -> List[dict]:
        """Which stage the tail waits on: per-stage share of the
        ``q``-cohort's summed latency, worst first.  The headline
        reading is "<stage> contributes N% of p95 latency"."""
        cohort = self.tail_cohort(q)
        if not cohort:
            return []
        acc: Dict[str, float] = {}
        total = 0.0
        for span in cohort:
            total += span.latency
            for hop in span.hops:
                segments = hop.segments()
                if segments is None:
                    continue
                acc[hop.stage] = acc.get(hop.stage, 0.0) + sum(segments)
            phases = span.phases()
            acc["gmem"] = acc.get("gmem", 0.0) + (
                phases["memory_wait"] + phases["memory_service"]
                + phases["memory_block"]
            )
        total = total or 1.0
        ranked = [
            {"stage": stage, "cycles": cycles, "share": cycles / total}
            for stage, cycles in acc.items()
        ]
        ranked.sort(key=lambda row: row["share"], reverse=True)
        return ranked

    def slowest(self, n: int = 5) -> List[RequestSpan]:
        """The ``n`` slowest completed requests (waterfall exemplars)."""
        return sorted(self.spans, key=lambda s: s.latency, reverse=True)[:n]

    def quantile_curve(self, qs: Sequence[float]) -> List[float]:
        """End-to-end latency at each quantile in ``qs`` — the shared
        protocol surface the distribution chart renders from (the
        streaming analysis answers it from its sketch)."""
        hist = self._histogram([s.latency for s in self.spans])
        return [hist.percentile(q) for q in qs]

    # -- integrity ---------------------------------------------------------

    def reconciliation_error(self) -> float:
        """Worst |sum(phases) - end-to-end| across requests; the phases
        are a timeline segmentation, so this is floating-point noise —
        the acceptance bound is one cycle per request."""
        worst = 0.0
        for span in self.spans:
            worst = max(
                worst, abs(sum(span.phases().values()) - span.latency)
            )
        return worst

    def summary(self) -> dict:
        """The compact dict embedded in run reports."""
        if not self.spans:
            return {"requests": 0}
        attribution = self.bottleneck_attribution()
        return {
            "requests": len(self.spans),
            "dropped": self.dropped,
            "end_to_end": self.end_to_end(),
            "phases": self.phase_decomposition(),
            "bottleneck": attribution[0] if attribution else None,
            "reconciliation_error": self.reconciliation_error(),
        }


# ---------------------------------------------------------------------------
# spans-JSON validation (the CI artifact check, sibling of
# validate_chrome_trace)

_REQUIRED_REQUEST_KEYS = ("id", "origin", "birth", "complete", "hops")
_REQUIRED_HOP_KEYS = ("resource", "stage", "direction", "enqueue")

#: acceptance bound: phase sums reconcile with end-to-end latency to
#: within one cycle per request.
RECONCILE_TOLERANCE = 1.0


def validate_spans(doc: dict) -> Tuple[int, int]:
    """Check a spans document against the schema essentials.

    Accepts both the buffered schema (version 1: every span inline) and
    the streaming schema (version 2, ``"mode": "streaming"``: sketches
    plus exemplars).  Returns ``(n_requests, n_complete)``; raises
    ``ValueError`` on malformation, including any complete request
    whose phase sums do not reconcile with its end-to-end latency.
    """
    if isinstance(doc, dict) and doc.get("mode") == "streaming":
        return _validate_streaming_spans(doc)
    if not isinstance(doc, dict) or "requests" not in doc:
        raise ValueError("spans must be an object with a requests array")
    if doc.get("version") != SPANS_VERSION:
        raise ValueError(f"unsupported spans version: {doc.get('version')!r}")
    requests = doc["requests"]
    if not isinstance(requests, list):
        raise ValueError("requests must be an array")
    for key in ("complete", "incomplete", "dropped"):
        if not isinstance(doc.get(key), int):
            raise ValueError(f"spans missing integer {key!r} count")
    n_complete = 0
    for request in requests:
        if _validate_request_dict(request):
            n_complete += 1
    if n_complete != doc["complete"]:
        raise ValueError(
            f"complete count {doc['complete']} != {n_complete} complete requests"
        )
    return len(requests), n_complete


def _validate_request_dict(request) -> bool:
    """Schema-check one request record; True when it is complete."""
    if not isinstance(request, dict):
        raise ValueError(f"request is not an object: {request!r}")
    for key in _REQUIRED_REQUEST_KEYS:
        if key not in request:
            raise ValueError(f"request missing {key!r}: {request!r}")
    for hop in request["hops"]:
        for key in _REQUIRED_HOP_KEYS:
            if key not in hop:
                raise ValueError(f"hop missing {key!r}: {hop!r}")
    if not request["complete"]:
        return False
    if request.get("latency") is None:
        raise ValueError(f"complete request lacks latency: {request!r}")
    phases = request.get("phases")
    if phases is not None:
        missing = [p for p in PHASES if p not in phases]
        if missing:
            raise ValueError(f"phases missing {missing}: {request!r}")
        drift = abs(sum(phases.values()) - request["latency"])
        if drift > RECONCILE_TOLERANCE:
            raise ValueError(
                f"request {request['id']}: phases sum to "
                f"{sum(phases.values()):.3f} but latency is "
                f"{request['latency']:.3f} (drift {drift:.3f})"
            )
    return True


def _validate_streaming_spans(doc: dict) -> Tuple[int, int]:
    """The version-2 streaming schema: bounded sketch state plus the
    exemplar reservoir instead of an inline span per request."""
    from repro.monitor.sketch import QuantileSketch

    if doc.get("version") != STREAM_SPANS_VERSION:
        raise ValueError(
            f"unsupported streaming spans version: {doc.get('version')!r}"
        )
    for key in ("complete", "incomplete", "dropped", "evicted",
                "completed_without_phases"):
        if not isinstance(doc.get(key), int):
            raise ValueError(f"streaming spans missing integer {key!r} count")
    sketches = doc.get("sketches")
    if not isinstance(sketches, dict) or "latency" not in sketches:
        raise ValueError("streaming spans missing latency sketches")
    # every serialized sketch must round-trip (this also pins the
    # sketch schema version)
    for group in sketches.values():
        for state in group.values():
            QuantileSketch.from_dict(state)
    phased = doc["complete"] - doc["completed_without_phases"]
    all_latency = sketches["latency"].get("all")
    if phased > 0:
        if all_latency is None:
            raise ValueError("streaming spans lack the 'all' latency sketch")
        if all_latency["count"] != phased:
            raise ValueError(
                f"latency sketch count {all_latency['count']} != "
                f"{phased} phased complete requests"
            )
    reconciliation = doc.get("reconciliation")
    if not isinstance(reconciliation, dict):
        raise ValueError("streaming spans missing reconciliation counters")
    for key in ("checked", "violations", "worst"):
        if key not in reconciliation:
            raise ValueError(f"reconciliation missing {key!r}")
    if reconciliation["violations"]:
        raise ValueError(
            f"{reconciliation['violations']} requests drifted past the "
            f"reconciliation tolerance (worst {reconciliation['worst']:.3f})"
        )
    exemplars = doc.get("exemplars")
    if not isinstance(exemplars, dict):
        raise ValueError("streaming spans missing exemplars")
    for request in exemplars.get("slowest", ()):
        if not _validate_request_dict(request):
            raise ValueError(f"incomplete span in slowest exemplars: {request!r}")
    for request in exemplars.get("incomplete", ()):
        if _validate_request_dict(request):
            raise ValueError(f"complete span in incomplete exemplars: {request!r}")
    return doc["complete"] + doc["incomplete"], doc["complete"]


def validate_spans_file(path) -> Tuple[int, int]:
    """Load ``path`` and validate it; see :func:`validate_spans`."""
    with open(path) as fh:
        return validate_spans(json.load(fh))
