"""The metrics registry: named counters, gauges, and time-weighted series.

The paper's monitoring hardware is a *bank* of instruments — 64K-counter
histogrammers, event tracers — clipped onto arbitrary machine signals.
:class:`MetricsRegistry` is the software bank: a flat namespace of
metric instruments keyed by **component path** (``gmem.module[12]``,
``net.fwd.s1[3]``, ``pfu.port[0]``) plus a metric suffix
(``.services``, ``.queue_words``, ``.busy``).

Nothing in the machine model writes metrics directly: instruments are
populated exclusively by bus subscribers (the monitors in
:mod:`repro.monitor.monitors`), so an unmonitored simulation touches
none of this code and the zero-cost fast path of
:mod:`repro.monitor.signals` is preserved.

Instrument kinds
----------------

``Counter``
    Monotonic event count (packets, services, sync ops).
``Gauge``
    Last-write-wins value with min/max tracking.
``TimeWeighted``
    A value that *holds* between updates (queue occupancy, words in
    flight); integrates value x time so ``mean()`` is the true
    time-weighted average, and keeps a duration-weighted distribution.
``Timeline``
    Busy-cycles accumulated into fixed-width time bins — the
    busy-fraction timeline behind utilization plots.

Histograms reuse :class:`repro.monitor.histogram.Histogrammer` (the
64K-counter hardware model) so probe and monitor distributions share
one implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.monitor.histogram import Histogrammer


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins value with min/max envelope."""

    __slots__ = ("name", "value", "minimum", "maximum", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value


class TimeWeighted:
    """A sampled-and-held value integrated over simulated time.

    ``update(v, now)`` closes the interval the previous value was held
    for; ``mean(now)`` is total value x time over total elapsed time —
    the right average for queue occupancy, which a plain event-weighted
    mean misstates badly under bursty arrivals.
    """

    __slots__ = ("name", "_value", "_since", "_start", "_weighted", "_max", "_dist")

    def __init__(self, name: str, start_time: float = 0.0, start_value: float = 0.0):
        self.name = name
        self._value = start_value
        self._since = start_time
        self._start = start_time
        self._weighted = 0.0
        self._max = start_value
        #: value -> cycles held at that value (the occupancy distribution).
        self._dist: Dict[float, float] = {}

    def update(self, value: float, now: float) -> None:
        held = now - self._since
        if held > 0:
            self._weighted += self._value * held
            self._dist[self._value] = self._dist.get(self._value, 0.0) + held
        self._value = value
        self._since = now
        if value > self._max:
            self._max = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._max

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from the first update through ``now``."""
        end = self._since if now is None else max(now, self._since)
        elapsed = end - self._start
        if elapsed <= 0:
            return self._value
        tail = (end - self._since) * self._value
        return (self._weighted + tail) / elapsed

    def distribution(self, now: Optional[float] = None) -> Dict[float, float]:
        """``{value: cycles held}`` including the still-open interval."""
        dist = dict(self._dist)
        end = self._since if now is None else max(now, self._since)
        if end > self._since:
            dist[self._value] = dist.get(self._value, 0.0) + (end - self._since)
        return dist


class Timeline:
    """Busy cycles binned into fixed-width windows of simulated time."""

    __slots__ = ("name", "bin_cycles", "_bins")

    def __init__(self, name: str, bin_cycles: float = 256.0) -> None:
        if bin_cycles <= 0:
            raise ValueError("bin width must be positive")
        self.name = name
        self.bin_cycles = bin_cycles
        self._bins: Dict[int, float] = {}

    def add(self, start: float, duration: float) -> None:
        """Credit ``duration`` busy cycles beginning at ``start``,
        spread across every bin the interval overlaps."""
        if duration <= 0:
            return
        start = max(0.0, start)
        end = start + duration
        idx = int(start // self.bin_cycles)
        while start < end:
            edge = (idx + 1) * self.bin_cycles
            chunk = min(end, edge) - start
            self._bins[idx] = self._bins.get(idx, 0.0) + chunk
            start = edge
            idx += 1

    def fractions(self) -> Dict[int, float]:
        """``{bin index: busy fraction}`` clamped to 1.0 (several servers
        can share one timeline, so raw credit may exceed the bin)."""
        return {
            idx: min(1.0, busy / self.bin_cycles)
            for idx, busy in sorted(self._bins.items())
        }

    def busy_cycles(self) -> float:
        return sum(self._bins.values())

    def peak_fraction(self) -> float:
        if not self._bins:
            return 0.0
        return min(1.0, max(self._bins.values()) / self.bin_cycles)


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    One registry instruments one machine; :meth:`snapshot` flattens
    everything into a JSON-serializable dict for
    :class:`~repro.monitor.report.RunReport`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._time_weighted: Dict[str, TimeWeighted] = {}
        self._histograms: Dict[str, Histogrammer] = {}
        self._timelines: Dict[str, Timeline] = {}

    # -- get-or-create accessors ------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def time_weighted(self, name: str, start_time: float = 0.0) -> TimeWeighted:
        inst = self._time_weighted.get(name)
        if inst is None:
            inst = self._time_weighted[name] = TimeWeighted(name, start_time)
        return inst

    def histogram(
        self, name: str, lo: float = 0.0, hi: float = 64.0, bins: int = 64
    ) -> Histogrammer:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogrammer(lo, hi, bins=bins)
        return inst

    def timeline(self, name: str, bin_cycles: float = 256.0) -> Timeline:
        inst = self._timelines.get(name)
        if inst is None:
            inst = self._timelines[name] = Timeline(name, bin_cycles)
        return inst

    # -- introspection ----------------------------------------------------------

    def names(self) -> List[str]:
        out = set(self._counters) | set(self._gauges) | set(self._time_weighted)
        out |= set(self._histograms) | set(self._timelines)
        return sorted(out)

    def __len__(self) -> int:
        return len(self.names())

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """Flatten every instrument into plain JSON types.

        Histograms and distributions are summarized (samples, mean,
        p50/p95) rather than dumped bin-by-bin, keeping reports compact.
        """
        snap: Dict[str, object] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = {
                "value": gauge.value,
                "min": gauge.minimum,
                "max": gauge.maximum,
                "updates": gauge.updates,
            }
        for name, tw in self._time_weighted.items():
            snap[name] = {
                "mean": round(tw.mean(now), 4),
                "max": tw.maximum,
                "final": tw.value,
            }
        for name, hist in self._histograms.items():
            entry: Dict[str, object] = {"samples": hist.samples}
            if hist.samples:
                entry["mean"] = round(hist.mean(), 4)
                entry["p50"] = round(hist.percentile(0.5), 4)
                entry["p95"] = round(hist.percentile(0.95), 4)
            snap[name] = entry
        for name, timeline in self._timelines.items():
            fractions = timeline.fractions()
            snap[name] = {
                "bins": len(fractions),
                "bin_cycles": timeline.bin_cycles,
                "busy_cycles": round(timeline.busy_cycles(), 4),
                "peak_fraction": round(timeline.peak_fraction(), 4),
                "mean_fraction": round(
                    sum(fractions.values()) / len(fractions), 4
                )
                if fractions
                else 0.0,
            }
        return snap


def component_path(kind: str, *indices: Tuple) -> str:
    """Canonical metric-path builder: ``component_path("gmem.module", 12)``
    -> ``"gmem.module[12]"``."""
    path = kind
    for index in indices:
        path += f"[{index}]"
    return path
