"""Latency / interarrival probes for the Table 2 methodology.

"The metrics used are first word Latency and Interarrival time between
the remaining words in the block, in instruction cycles.  These are
measured for every prefetch request by recording when an address from
the prefetch unit is issued to the forward network and when each datum
returns to the prefetch buffer via the reverse networks from memory."

"we monitored all requests of a single processor and compared repeated
experiments for consistency" — the probe is attached to one CE's PFU
(monitoring required internal signals not available on all processors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ProbeSummary:
    """Aggregated Table 2 metrics for one monitored processor."""

    blocks: int
    first_word_latency: float
    interarrival: float
    samples_latency: int
    samples_interarrival: int


@dataclass
class _BlockRecord:
    issue_times: Dict[int, float] = field(default_factory=dict)
    arrival_times: Dict[int, float] = field(default_factory=dict)
    first_issue: Optional[float] = None


class PrefetchProbe:
    """Records issue/arrival times of every request of one CE's PFU.

    Words may return out of order (the prefetch buffer's full/empty bits
    tolerate this); the interarrival metric uses arrival order, matching
    what the hardware monitor on the reverse-network port sees.
    """

    def __init__(self) -> None:
        self._blocks: List[_BlockRecord] = []
        self._current: Optional[_BlockRecord] = None
        self._subscriptions: list = []

    # -- signal-bus attachment ----------------------------------------------

    def attach(self, bus, port: int) -> "PrefetchProbe":
        """Subscribe to one CE port's PFU signal channels.

        The hardware analogue: clipping the monitor onto the internal
        signals of a single processor's prefetch unit.  Returns self so
        ``PrefetchProbe().attach(bus, 0)`` reads naturally.
        """
        self._subscriptions = [
            bus.subscribe("pfu.arm", self._on_arm, key=port),
            bus.subscribe("pfu.request", self._on_request, key=port),
            bus.subscribe("pfu.deliver", self._on_deliver, key=port),
        ]
        return self

    def detach(self, bus) -> None:
        """Unclip from the bus; recorded data is retained."""
        for subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions = []

    def _on_arm(self, port: int, time: float) -> None:
        self.begin_block()

    def _on_request(self, port: int, word_index: int, time: float) -> None:
        self.record_issue(word_index, time)

    def _on_deliver(self, port: int, word_index: int, time: float) -> None:
        self.record_arrival(word_index, time)

    def begin_block(self) -> None:
        """A new prefetch (arm/fire) starts."""
        self._current = _BlockRecord()
        self._blocks.append(self._current)

    def record_issue(self, word_index: int, time: float) -> None:
        if self._current is None:
            raise RuntimeError("record_issue before begin_block")
        rec = self._current
        rec.issue_times[word_index] = time
        if rec.first_issue is None:
            rec.first_issue = time

    def record_arrival(self, word_index: int, time: float) -> None:
        if self._current is None:
            raise RuntimeError("record_arrival before begin_block")
        # arrivals may land after the next block begins only if the PFU
        # invalidated the buffer; the PFU guarantees ordering by awaiting
        # stream completion, so arrivals always belong to the last block
        # whose issue is recorded.
        for rec in reversed(self._blocks):
            if word_index in rec.issue_times and word_index not in rec.arrival_times:
                rec.arrival_times[word_index] = time
                return
        raise RuntimeError(f"arrival for unissued word {word_index}")

    # -- metrics -------------------------------------------------------------

    def latencies(self) -> List[float]:
        """First-word latency per block: first arrival minus first issue."""
        out = []
        for rec in self._blocks:
            if rec.first_issue is None or not rec.arrival_times:
                continue
            first_arrival = min(rec.arrival_times.values())
            out.append(first_arrival - rec.first_issue)
        return out

    def interarrivals(self) -> List[float]:
        """Gaps between consecutive word arrivals within each block."""
        out: List[float] = []
        for rec in self._blocks:
            times = sorted(rec.arrival_times.values())
            out.extend(b - a for a, b in zip(times, times[1:]))
        return out

    def latency_histogram(self, bins: int = 64, hi: float = 64.0):
        """Feed the per-block latencies into a hardware histogrammer
        (the paper's histogrammers have 64K 32-bit counters; we bin the
        0..``hi``-cycle range)."""
        from repro.monitor.histogram import Histogrammer

        hist = Histogrammer(0.0, hi, bins=bins)
        for value in self.latencies():
            hist.record(value)
        return hist

    def interarrival_histogram(self, bins: int = 64, hi: float = 16.0):
        """Histogrammer over the word interarrival gaps."""
        from repro.monitor.histogram import Histogrammer

        hist = Histogrammer(0.0, hi, bins=bins)
        for value in self.interarrivals():
            hist.record(value)
        return hist

    def summary(self) -> ProbeSummary:
        """Aggregate metrics; an empty summary (``blocks=0``) when no
        prefetch block completed, so reports on degenerate configurations
        (no prefetch traffic at the monitored port) render zeros instead
        of crashing."""
        lats = self.latencies()
        gaps = self.interarrivals()
        if not lats:
            return ProbeSummary(
                blocks=0,
                first_word_latency=0.0,
                interarrival=0.0,
                samples_latency=0,
                samples_interarrival=0,
            )
        return ProbeSummary(
            blocks=len(self._blocks),
            first_word_latency=mean(lats),
            interarrival=mean(gaps) if gaps else 0.0,
            samples_latency=len(lats),
            samples_interarrival=len(gaps),
        )
