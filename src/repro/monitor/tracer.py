"""Time-stamped event tracing.

Each hardware tracer collects up to 1M events; tracers "can be cascaded
to capture more events".  Programs may post software events too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional


@dataclass(frozen=True)
class Event:
    """One time-stamped trace event."""

    time: float
    signal: str
    value: Any = None


class EventTracer:
    """A cascadable time-stamped event tracer.

    >>> t = EventTracer(capacity=2)
    >>> t.post(1.0, "a"); t.post(2.0, "b"); t.post(3.0, "c")
    >>> len(t.events), t.dropped
    (2, 1)
    """

    DEFAULT_CAPACITY = 1 << 20  # 1M events per tracer

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        cascade: Optional["EventTracer"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.cascade = cascade
        self.events: List[Event] = []
        self.dropped = 0

    def post(self, time: float, signal: str, value: Any = None) -> None:
        """Record an event, spilling into the cascaded tracer when full."""
        if len(self.events) < self.capacity:
            self.events.append(Event(time, signal, value))
        elif self.cascade is not None:
            self.cascade.post(time, signal, value)
        else:
            self.dropped += 1

    def filter(self, signal: str) -> List[Event]:
        """Events matching ``signal``, including cascaded ones."""
        out = [e for e in self.events if e.signal == signal]
        if self.cascade is not None:
            out.extend(self.cascade.filter(signal))
        return out

    def hook(self, signal: str, clock: Callable[[], float]) -> Callable[[Any], None]:
        """Return a callback posting ``signal`` at the current ``clock()``."""

        def _post(value: Any = None) -> None:
            self.post(clock(), signal, value)

        return _post

    def __len__(self) -> int:
        n = len(self.events)
        if self.cascade is not None:
            n += len(self.cascade)
        return n
