"""Time-stamped event tracing and Chrome/Perfetto trace export.

Each hardware tracer collects up to 1M events; tracers "can be cascaded
to capture more events".  Programs may post software events too.

:class:`ChromeTracer` is the whole-machine tracer: it subscribes
broadcast to every architectural signal on a bus and renders what it
sees as Chrome trace-event JSON — one track per network stage, memory
module, and CE port — so an entire Cedar run can be opened in
``chrome://tracing`` or https://ui.perfetto.dev.  Simulated cycles are
written as trace microseconds one-for-one (the viewer's "1 us" is one
CE instruction cycle).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One time-stamped trace event."""

    time: float
    signal: str
    value: Any = None


class EventTracer:
    """A cascadable time-stamped event tracer.

    >>> t = EventTracer(capacity=2)
    >>> t.post(1.0, "a"); t.post(2.0, "b"); t.post(3.0, "c")
    >>> len(t.events), t.dropped
    (2, 1)
    """

    DEFAULT_CAPACITY = 1 << 20  # 1M events per tracer

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        cascade: Optional["EventTracer"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.cascade = cascade
        self.events: List[Event] = []
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Events lost across the whole cascade chain.

        A full cascade drops into *its own* counter; reporting only the
        head tracer's count would silently understate loss, so the
        property sums the chain.
        """
        n = self._dropped
        if self.cascade is not None:
            n += self.cascade.dropped
        return n

    def post(self, time: float, signal: str, value: Any = None) -> None:
        """Record an event, spilling into the cascaded tracer when full."""
        if len(self.events) < self.capacity:
            self.events.append(Event(time, signal, value))
        elif self.cascade is not None:
            self.cascade.post(time, signal, value)
        else:
            self._dropped += 1

    def filter(self, signal: str) -> List[Event]:
        """Events matching ``signal``, including cascaded ones."""
        out = [e for e in self.events if e.signal == signal]
        if self.cascade is not None:
            out.extend(self.cascade.filter(signal))
        return out

    def hook(self, signal: str, clock: Callable[[], float]) -> Callable[[Any], None]:
        """Return a callback posting ``signal`` at the current ``clock()``."""

        def _post(value: Any = None) -> None:
            self.post(clock(), signal, value)

        return _post

    def __len__(self) -> int:
        n = len(self.events)
        if self.cascade is not None:
            n += len(self.cascade)
        return n


# ---------------------------------------------------------------------------
# Chrome trace-event export


def _service_cycles(resource, packet) -> float:
    """Approximate service duration of ``packet`` on ``resource`` from
    its public rate parameters (the monitor-side view of busy time)."""
    return resource.fixed_cycles + packet.words / resource.words_per_cycle


class ChromeTracer:
    """Broadcast bus subscriber emitting Chrome trace-event JSON.

    Attach to one or more machines' buses (``scope`` prefixes the
    process names so several machines coexist in one trace), run the
    simulation, then :meth:`write` the trace::

        tracer = ChromeTracer()
        tracer.attach(machine.bus)
        machine.run_programs(...)
        tracer.write("trace.json")

    Tracks
    ------

    * ``net.fwd`` / ``net.rev`` processes, one thread per stage (plus
      ``inject``): complete ("X") events per link departure, counter
      ("C") events for queue occupancy.
    * ``gmem`` process, one thread per module: complete events per
      service (duration = the actual service cycles), instants for
      sync ops.
    * ``ce`` process, one thread per CE port: instants for PFU
      arm/request/deliver/suspend and CE completion.
    * ``cluster`` process: complete events on cache / cluster-memory
      accesses.
    * ``timeline`` process (via :meth:`ingest_timeline`): one counter
      ("C") track per interval-sampled metric series.

    Signals only observe, so an attached tracer never changes cycle
    counts — only wall-clock speed.
    """

    DEFAULT_CAPACITY = 1 << 20

    #: signal names a ChromeTracer listens to when the bus declares them.
    SIGNALS = (
        "net.hop",
        "net.enqueue",
        "net.dequeue",
        "gmem.service",
        "sync.op",
        "cluster.access",
        "pfu.arm",
        "pfu.request",
        "pfu.deliver",
        "pfu.suspend",
        "ce.done",
        "fault.transient",
        "fault.port_down",
        "fault.ecc",
        "fault.sync_timeout",
        "fault.reroute",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: List[dict] = []
        self._metadata: List[dict] = []
        self._dropped = 0
        #: (scope, process name) -> pid; (pid, thread name) -> tid
        self._pids: Dict[Tuple[str, str], int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._subscriptions: List[tuple] = []
        #: request ids that already have a flow start ("s") event.
        self._flow_started: set = set()

    @property
    def dropped(self) -> int:
        return self._dropped

    # -- attachment --------------------------------------------------------

    def attach(self, bus, scope: str = "") -> "ChromeTracer":
        """Subscribe broadcast to every catalog signal ``bus`` declares.

        ``scope`` (e.g. ``"m1:"``) prefixes process names, keeping
        machines distinct when one tracer observes several.
        """
        handlers = {
            "net.hop": lambda r, p, t: self._on_hop(scope, r, p, t),
            "net.enqueue": lambda r, p, t: self._on_queue(scope, r, t),
            "net.dequeue": lambda r, p, t: self._on_queue(scope, r, t),
            "gmem.service": lambda m, p, t, c: self._on_service(scope, m, p, t, c),
            "sync.op": lambda m, a, t, p, ok: self._on_sync(scope, m, a, t, p, ok),
            "cluster.access": lambda r, p, t: self._on_cluster(scope, r, p, t),
            "pfu.arm": lambda port, t: self._instant(scope, "ce", f"port[{port}]", "pfu.arm", t),
            "pfu.request": lambda port, i, t: self._instant(
                scope, "ce", f"port[{port}]", "pfu.request", t, {"word": i}
            ),
            "pfu.deliver": lambda port, i, t: self._instant(
                scope, "ce", f"port[{port}]", "pfu.deliver", t, {"word": i}
            ),
            "pfu.suspend": lambda port, t: self._instant(
                scope, "ce", f"port[{port}]", "pfu.suspend", t
            ),
            "ce.done": lambda port, t: self._instant(
                scope, "ce", f"port[{port}]", "ce.done", t
            ),
            "fault.transient": lambda r, p, t, b: self._instant(
                scope, "faults", "network", "fault.transient", t,
                {"resource": r.name, "backoff_cycles": b},
            ),
            "fault.port_down": lambda r, t, until: self._instant(
                scope, "faults", "network", "fault.port_down", t,
                {"resource": r.name, "until": until},
            ),
            "fault.ecc": lambda m, p, t, c: self._instant(
                scope, "faults", "gmem", "fault.ecc", t,
                {"module": m, "stall_cycles": c},
            ),
            "fault.sync_timeout": lambda m, a, t, c: self._instant(
                scope, "faults", "gmem", "fault.sync_timeout", t,
                {"module": m, "address": a, "penalty_cycles": c},
            ),
            "fault.reroute": lambda n, p, t: self._instant(
                scope, "faults", "network", "fault.reroute", t, {"network": n}
            ),
        }
        for name, handler in handlers.items():
            if bus.declared(name):
                self._subscriptions.append((bus, bus.subscribe(name, handler)))
        return self

    def detach(self) -> None:
        """Unsubscribe from every bus this tracer was attached to."""
        for bus, subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions = []

    # -- track bookkeeping -------------------------------------------------

    def _track(self, scope: str, process: str, thread: str) -> Tuple[int, int]:
        pkey = (scope, process)
        pid = self._pids.get(pkey)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[pkey] = pid
            self._metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"{scope}{process}"},
                }
            )
        tkey = (pid, thread)
        tid = self._tids.get(tkey)
        if tid is None:
            tid = sum(1 for (p, _t) in self._tids if p == pid) + 1
            self._tids[tkey] = tid
            self._metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return pid, tid

    def _post(self, event: dict) -> None:
        if len(self.events) < self.capacity:
            self.events.append(event)
        else:
            self._dropped += 1

    # -- signal handlers ---------------------------------------------------

    @staticmethod
    def _split_resource(name: str) -> Tuple[str, str]:
        """``"fwd.s0[3]"`` -> (process ``"net.fwd"``, thread ``"s0"``);
        undotted names (``"gm[4]"``) keep the full name as the thread."""
        net, dot, rest = name.partition(".")
        if not dot:
            return f"net.{name.split('[', 1)[0]}", name
        thread = rest.split("[", 1)[0] or rest
        return f"net.{net}", thread

    def _on_hop(self, scope: str, resource, packet, time: float) -> None:
        process, thread = self._split_resource(resource.name)
        pid, tid = self._track(scope, process, thread)
        duration = _service_cycles(resource, packet)
        self._post(
            {
                "name": resource.name,
                "cat": "net",
                "ph": "X",
                "ts": max(0.0, time - duration),
                "dur": duration,
                "pid": pid,
                "tid": tid,
                "args": {"src": packet.src, "dst": packet.dst, "words": packet.words},
            }
        )
        self._flow(pid, tid, packet.request_id, max(0.0, time - duration))

    def _on_queue(self, scope: str, resource, time: float) -> None:
        process, _thread = self._split_resource(resource.name)
        pid, _ = self._track(scope, process, "queues")
        self._post(
            {
                "name": f"{resource.name} queue",
                "cat": "queue",
                "ph": "C",
                "ts": time,
                "pid": pid,
                "args": {"words": resource.queued_words},
            }
        )

    def _on_service(self, scope: str, module: int, packet, time: float, cycles: float) -> None:
        pid, tid = self._track(scope, "gmem", f"module[{module}]")
        self._post(
            {
                "name": packet.kind.name if hasattr(packet.kind, "name") else str(packet.kind),
                "cat": "gmem",
                "ph": "X",
                "ts": max(0.0, time - cycles),
                "dur": cycles,
                "pid": pid,
                "tid": tid,
                "args": {"address": packet.address, "words": packet.words},
            }
        )
        self._flow(pid, tid, packet.request_id, max(0.0, time - cycles))

    def _flow(self, pid: int, tid: int, request_id: int, ts: float) -> None:
        """Chain this slice into the request's flow track (Perfetto
        draws arrows between the slices sharing an ``id``).  The first
        slice of a request starts the flow ("s"); the rest step it
        ("t"); :meth:`trace` rewrites each flow's final step into the
        terminator ("f") export-time, since the last hop isn't knowable
        while events stream in."""
        started = request_id in self._flow_started
        if not started:
            self._flow_started.add(request_id)
        self._post(
            {
                "name": "request",
                "cat": "flow",
                "ph": "t" if started else "s",
                "id": request_id,
                "ts": ts,
                "pid": pid,
                "tid": tid,
            }
        )

    def _on_sync(
        self, scope: str, module: int, address: int, time: float, packet, success: bool
    ) -> None:
        pid, tid = self._track(scope, "gmem", f"module[{module}]")
        self._post(
            {
                "name": "sync.op",
                "cat": "sync",
                "ph": "i",
                "s": "t",
                "ts": time,
                "pid": pid,
                "tid": tid,
                "args": {"address": address, "success": success},
            }
        )

    def _on_cluster(self, scope: str, resource, packet, time: float) -> None:
        pid, tid = self._track(scope, "cluster", resource.name)
        duration = _service_cycles(resource, packet)
        self._post(
            {
                "name": resource.name,
                "cat": "cluster",
                "ph": "X",
                "ts": max(0.0, time - duration),
                "dur": duration,
                "pid": pid,
                "tid": tid,
                "args": {"words": packet.words},
            }
        )

    def _instant(
        self,
        scope: str,
        process: str,
        thread: str,
        name: str,
        time: float,
        args: Optional[dict] = None,
    ) -> None:
        pid, tid = self._track(scope, process, thread)
        event = {
            "name": name,
            "cat": "ce",
            "ph": "i",
            "s": "t",
            "ts": time,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._post(event)

    # -- post-hoc span ingestion -------------------------------------------

    def ingest_spans(self, spans, scope: str = "") -> "ChromeTracer":
        """Render stitched :class:`~repro.monitor.spans.RequestSpan`
        objects into the trace after the fact — the streaming path's
        route into Chrome/Perfetto, where only the exemplar reservoir's
        spans survive the run (``store.complete_spans()`` +
        ``store.incomplete_spans()``).

        Each retained span contributes one complete ("X") slice per hop
        (duration = the hop's full queue occupancy, with the
        wait/service/blocked split in ``args``), a memory-module slice,
        birth/deliver instants on its CE port, and the same flow chain
        live attachment builds — so the arrows in the viewer connect an
        exemplar's hops exactly as they would had every request been
        traced live.
        """
        for span in sorted(spans, key=lambda s: s.birth):
            rid = span.request_id
            pid, tid = self._track(scope, "ce", f"port[{span.port}]")
            self._instant(
                scope, "ce", f"port[{span.port}]", "req.birth", span.birth,
                {"id": rid, "origin": span.origin},
            )
            slices = []
            for hop in span.hops:
                if hop.depart is None:
                    continue
                slices.append((hop.enqueue, hop.depart - hop.enqueue,
                               hop.resource, "net", hop.segments()))
            if span.mem_enqueue is not None and span.mem_depart is not None:
                module = span.mem_module if span.mem_module is not None else 0
                slices.append((
                    span.mem_enqueue, span.mem_depart - span.mem_enqueue,
                    f"gm[{module}]", "gmem", None,
                ))
            slices.sort(key=lambda s: s[0])
            for ts, duration, resource, cat, segments in slices:
                if cat == "gmem":
                    # match the live handler's track layout
                    process, thread = "gmem", f"module[{resource[3:-1]}]"
                else:
                    process, thread = self._split_resource(resource)
                pid, tid = self._track(scope, process, thread)
                args = {"id": rid, "origin": span.origin}
                if segments is not None:
                    args["queue_wait"], args["service"], args["blocked"] = (
                        segments
                    )
                self._post({
                    "name": resource,
                    "cat": cat,
                    "ph": "X",
                    "ts": ts,
                    "dur": duration,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                })
                self._flow(pid, tid, rid, ts)
            if span.end is not None:
                self._instant(
                    scope, "ce", f"port[{span.port}]", "req.deliver",
                    span.end, {"id": rid, "latency": span.latency},
                )
        return self

    # -- post-hoc timeline ingestion ---------------------------------------

    def ingest_timeline(self, doc: dict, scope: str = "") -> "ChromeTracer":
        """Render a :meth:`MetricTimeline.to_dict
        <repro.monitor.timeline.MetricTimeline.to_dict>` document as
        Perfetto counter tracks — one "C"-phase track per series under
        a ``timeline`` process, one sample per interval edge.

        ``delta`` series plot both the per-interval total (``value``)
        and its per-cycle rate (``per_cycle``, total divided by the
        actual interval span — intervals widen after coalescing);
        ``gauge`` series plot the edge reading alone.  Counters are
        anchored with a zero at ts 0 so the first interval renders as a
        step, not a ramp from nowhere.

        Counter samples bypass the capacity cap: the cap protects
        against unbounded *live* event streams, and a coalesced
        timeline is bounded by construction (``max_intervals`` per
        series) — dropping it because the live run was busy would lose
        exactly the overview the counters exist to give.
        """
        edges = doc.get("edges", [])
        for name, entry in sorted(doc.get("series", {}).items()):
            pid, _tid = self._track(scope, "timeline", name)
            kind = entry.get("kind")
            anchor = {"value": 0.0}
            if kind == "delta":
                anchor["per_cycle"] = 0.0
            self.events.append({
                "name": name, "cat": "timeline", "ph": "C",
                "ts": 0.0, "pid": pid, "args": anchor,
            })
            prev = 0.0
            for edge, value in zip(edges, entry.get("values", [])):
                args = {"value": value}
                if kind == "delta":
                    span = edge - prev
                    args["per_cycle"] = value / span if span > 0 else 0.0
                prev = edge
                self.events.append({
                    "name": name, "cat": "timeline", "ph": "C",
                    "ts": edge, "pid": pid, "args": args,
                })
        return self

    # -- export ------------------------------------------------------------

    def trace(self) -> dict:
        """The complete trace object (JSON-serializable).

        Flow chains are finalized here: each request's last flow event
        becomes the terminating "f" phase, and requests that produced
        only a single flow event (no arrow to draw) are dropped.  The
        collected events themselves are left untouched so ``trace`` can
        be called repeatedly.
        """
        events: List[dict] = []
        last_flow: Dict[int, int] = {}
        flow_counts: Dict[int, int] = {}
        for event in self.events:
            if event.get("cat") == "flow":
                event = dict(event)
                fid = event["id"]
                last_flow[fid] = len(events)
                flow_counts[fid] = flow_counts.get(fid, 0) + 1
            events.append(event)
        singletons = set()
        for fid, idx in last_flow.items():
            if flow_counts[fid] < 2:
                singletons.add(idx)
            else:
                events[idx]["ph"] = "f"
                events[idx]["bp"] = "e"
        if singletons:
            events = [e for i, e in enumerate(events) if i not in singletons]
        return {
            "traceEvents": [*self._metadata, *events],
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.monitor.tracer.ChromeTracer",
                "time_unit": "1 trace us == 1 CE instruction cycle",
                "dropped": self._dropped,
            },
        }

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.trace(), fh)

    def track_count(self) -> int:
        """Distinct (pid, tid) tracks carrying real (non-metadata) events."""
        return len({(e["pid"], e.get("tid", 0)) for e in self.events})


#: keys required per trace-event phase; every event needs name/ph/pid.
_REQUIRED = ("name", "ph", "pid")


def validate_chrome_trace(trace: dict) -> Tuple[int, int]:
    """Check ``trace`` against the trace-event schema essentials.

    Returns ``(n_events, n_tracks)`` counting non-metadata events and
    distinct (pid, tid) tracks; raises ``ValueError`` on malformation.
    Used by the CI trace-artifact check.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be an array")
    tracks = set()
    n_events = 0
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"trace event is not an object: {event!r}")
        for key in _REQUIRED:
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event!r}")
        phase = event["ph"]
        if phase == "M":
            continue
        if "ts" not in event:
            raise ValueError(f"non-metadata event missing ts: {event!r}")
        if phase == "X" and "dur" not in event:
            raise ValueError(f"complete event missing dur: {event!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"counter event missing args: {event!r}")
            for key, value in args.items():
                if not isinstance(value, (int, float)) or value != value:
                    raise ValueError(
                        f"counter event arg {key!r} is not numeric: {event!r}"
                    )
        n_events += 1
        tracks.add((event["pid"], event.get("tid", 0)))
    return n_events, len(tracks)


def validate_chrome_trace_file(path) -> Tuple[int, int]:
    """Load ``path`` and validate it; see :func:`validate_chrome_trace`."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))
