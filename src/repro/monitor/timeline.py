"""Time-resolved observability: interval metric timelines.

Everything else in the monitor package answers *what happened over the
whole run* — end-of-run :meth:`MetricsRegistry.snapshot`, per-request
spans, streaming sketches.  This module answers **when**: a
:class:`MetricTimeline` samples a machine every ``interval_cycles`` of
simulated time and keeps one value per interval for a fixed set of
series — engine event volume, per-stage omega link busy cycles,
memory-module occupancy, queue depths, in-flight work, fault rates.

Sampling rides the zero-cost engine pulse
(:meth:`~repro.core.engine.Engine.attach_pulse`, PR 7): the pulse hook
fires on the watchdog check cadence (every ~4096 processed events),
reads ``engine.now``, and closes an interval whenever simulated time
has crossed the next interval edge.  The hook only *reads* machine
state — cumulative :class:`~repro.network.resource.ResourceStats`
counters, queue depths, engine self-metrics — so a timeline-enabled
run is cycle-bit-identical to a bare one (``tests/test_zero_cost.py``
asserts it), and a machine with no recorder attached pays nothing at
all.

Bounded memory
--------------

A soak-length run (millions of requests, hundreds of thousands of
cycles) would accumulate unbounded intervals at a fixed sampling width.
:class:`MetricTimeline` therefore **coalesces by powers of two**: when
the interval count exceeds ``max_intervals``, adjacent interval pairs
are merged (``delta`` series add, ``gauge`` series keep the max) and
the nominal interval width doubles.  A 1M-request soak holds at most
``max_intervals`` intervals no matter how long it runs — the same
fold-don't-buffer contract the streaming span store makes, enforced by
``benchmarks/memory_gate.py``.

Series kinds
------------

``delta``
    Sampled from a *cumulative* counter (busy cycles, packets, words,
    events, fault counts); the stored value is the increase over the
    interval.  Coalescing adds adjacent values.
``gauge``
    Sampled point-in-time (queue depth, in-flight events); the stored
    value is the reading at the interval's right edge.  Coalescing
    keeps the max — the peak is what hotspot localization wants.

Rendering
---------

Three consumers, one document (:meth:`MetricTimeline.to_dict`,
validated by :func:`validate_timeline`):

* Perfetto counter tracks — :meth:`ChromeTracer.ingest_timeline`
  renders each series as a "C"-phase counter track;
* ASCII sparklines — :func:`repro.monitor.analysis.timeline_report`;
* windowed diffs — ``python -m repro compare`` flattens per-interval
  values so a regression names *which interval* moved, not just that
  the run did.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, List, Optional, Tuple

#: collapses per-instance indexes when aggregating registry instruments
#: (``fwd.s0[3].queue_words`` -> ``fwd.s0.queue_words``).
_INDEX_RE = re.compile(r"\[\d+\]")

#: timeline document format version (bump on breaking shape changes).
TIMELINE_VERSION = 1

#: default sampling width in simulated cycles.  At the standard kernel
#: workload (~1.7k cycles) this yields a few dozen intervals; soak runs
#: coalesce up from here.
DEFAULT_INTERVAL_CYCLES = 64.0

#: interval-count bound: one past this triggers a power-of-two coalesce,
#: so a run of any length holds at most this many intervals.
MAX_INTERVALS = 512

KIND_DELTA = "delta"
KIND_GAUGE = "gauge"
_KINDS = (KIND_DELTA, KIND_GAUGE)


class SeriesProbe:
    """One named, typed read-out of live machine state.

    ``read()`` must be a pure observation (no machine mutation): for
    ``delta`` series it returns a cumulative counter, for ``gauge``
    series an instantaneous reading.  ``meta`` carries static rendering
    facts (e.g. ``{"links": 32}`` so a busy-cycles series can be shown
    as utilization).
    """

    __slots__ = ("name", "kind", "read", "meta")

    def __init__(
        self,
        name: str,
        kind: str,
        read: Callable[[], float],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown series kind {kind!r}; use {_KINDS}")
        self.name = name
        self.kind = kind
        self.read = read
        self.meta = dict(meta) if meta else {}


class MetricTimeline:
    """Per-interval series over one machine's run, bounded in memory.

    Drive it from an engine pulse (:meth:`maybe_sample` per pulse) and
    close the tail interval with :meth:`finalize` once the run ends::

        timeline = MetricTimeline(machine_probes(machine.ctx))
        machine.engine.attach_pulse(timeline.pulse)
        machine.run_programs(...)
        timeline.finalize(machine.engine.now)
        doc = timeline.to_dict()
    """

    def __init__(
        self,
        probes,
        interval_cycles: float = DEFAULT_INTERVAL_CYCLES,
        max_intervals: int = MAX_INTERVALS,
        registry=None,
    ) -> None:
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        if max_intervals < 2:
            raise ValueError("max_intervals must be at least 2")
        # ``probes`` may be a zero-arg callable resolved at the first
        # sample: context observers fire before machine assembly, so a
        # recorder installed machine-wide must defer the component walk
        # until the components exist.
        if callable(probes):
            self._probe_factory = probes
            self.probes: List[SeriesProbe] = []
        else:
            self._probe_factory = None
            self.probes = list(probes)
            self._check_probe_names()
        #: nominal sampling width; doubles on every coalesce.
        self.interval_cycles = float(interval_cycles)
        self.initial_interval_cycles = float(interval_cycles)
        self.max_intervals = max_intervals
        #: optional :class:`~repro.monitor.metrics.MetricsRegistry` whose
        #: counters / time-weighted values are snapshotted per interval
        #: as dynamic ``reg.*`` series (instruments appear lazily, so
        #: late arrivals are zero-backfilled).
        self.registry = registry
        self.coalesces = 0
        self.samples_taken = 0
        #: right edge (sample time) per closed interval; interval ``i``
        #: covers ``(edges[i-1], edges[i]]`` with an implicit 0.0 start.
        self._edges: List[float] = []
        self._values: Dict[str, List[float]] = {p.name: [] for p in self.probes}
        self._kinds: Dict[str, str] = {p.name: p.kind for p in self.probes}
        self._meta: Dict[str, Dict[str, object]] = {
            p.name: p.meta for p in self.probes if p.meta
        }
        self._cum: Dict[str, float] = {
            p.name: 0.0 for p in self.probes if p.kind == KIND_DELTA
        }
        self._next_edge = self.interval_cycles

    def _check_probe_names(self) -> None:
        names = [p.name for p in self.probes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate series names in probes: {names}")

    def _resolve_probes(self) -> None:
        self.probes = list(self._probe_factory())
        self._probe_factory = None
        self._check_probe_names()
        for p in self.probes:
            self._values[p.name] = []
            self._kinds[p.name] = p.kind
            if p.meta:
                self._meta[p.name] = p.meta
            if p.kind == KIND_DELTA:
                self._cum[p.name] = 0.0

    # -- sampling ----------------------------------------------------------

    def pulse(self, engine) -> None:
        """Engine-pulse entry point (``attach_pulse(timeline.pulse)``)."""
        now = engine.now
        if now >= self._next_edge:
            self._sample(now)

    def maybe_sample(self, now: float) -> None:
        """Close an interval iff ``now`` crossed the next interval edge."""
        if now >= self._next_edge:
            self._sample(now)

    def finalize(self, now: float) -> None:
        """Close the partial tail interval at ``now`` (idempotent: a
        ``now`` at or before the last sample records nothing)."""
        last = self._edges[-1] if self._edges else 0.0
        if now > last:
            self._sample(now)

    def _sample(self, now: float) -> None:
        if self._probe_factory is not None:
            self._resolve_probes()
        values = self._values
        cum = self._cum
        for probe in self.probes:
            current = float(probe.read())
            if probe.kind == KIND_DELTA:
                values[probe.name].append(current - cum[probe.name])
                cum[probe.name] = current
            else:
                values[probe.name].append(current)
        if self.registry is not None:
            self._sample_registry()
        self._edges.append(now)
        self.samples_taken += 1
        # re-anchor on the grid: a pulse lands *past* the edge, and a
        # long event gap may skip several edges — the skipped span is
        # folded into this one wider interval rather than faked as
        # empty intervals that were never actually sampled.
        grid = self.interval_cycles
        self._next_edge = (now // grid + 1.0) * grid
        if len(self._edges) > self.max_intervals:
            self._coalesce()

    def _sample_registry(self) -> None:
        """Snapshot the registry's numeric instruments as dynamic
        ``reg.*`` series.  Instruments are keyed per component instance
        (``fwd.s0[3].queue_words``); one series per instance would blow
        the document up, so indexes collapse and instances sum into one
        series per instrument group (``reg.fwd.s0.queue_words``).
        Instruments are created lazily by the monitors, so a group
        first seen mid-run is backfilled with zeros."""
        n = len(self._edges)  # intervals already closed (pre-append)
        registry = self.registry
        groups: Dict[str, float] = {}
        for name, counter in registry._counters.items():
            key = "reg." + _INDEX_RE.sub("", name)
            groups[key] = groups.get(key, 0.0) + counter.value
        for key, total in sorted(groups.items()):
            self._append_dynamic(key, KIND_DELTA, total, n)
        groups = {}
        for name, tw in registry._time_weighted.items():
            key = "reg." + _INDEX_RE.sub("", name)
            groups[key] = groups.get(key, 0.0) + tw.value
        for key, total in sorted(groups.items()):
            self._append_dynamic(key, KIND_GAUGE, total, n)

    def _append_dynamic(self, key: str, kind: str, current: float, n: int) -> None:
        if self._kinds.get(key, kind) != kind:
            return  # name collision across instrument kinds: first wins
        series = self._values.get(key)
        if series is None:
            series = self._values[key] = [0.0] * n
            self._kinds[key] = kind
            if kind == KIND_DELTA:
                self._cum[key] = 0.0
        elif len(series) < n:
            series.extend([0.0] * (n - len(series)))
        if kind == KIND_DELTA:
            series.append(float(current) - self._cum[key])
            self._cum[key] = float(current)
        else:
            series.append(float(current))

    # -- power-of-two coalescing -------------------------------------------

    def _coalesce(self) -> None:
        """Merge adjacent interval pairs in place; the nominal width
        doubles, so N coalesces bound any run to ``max_intervals``
        intervals at ``2^N`` times the initial width."""
        edges = self._edges
        merged_edges = edges[1::2]
        if len(edges) % 2:
            merged_edges.append(edges[-1])
        self._edges = merged_edges
        for name, series in self._values.items():
            if len(series) < len(edges):  # dynamic series: pad first
                series.extend([0.0] * (len(edges) - len(series)))
            if self._kinds[name] == KIND_DELTA:
                merged = [
                    series[i] + series[i + 1]
                    for i in range(0, len(series) - 1, 2)
                ]
            else:
                merged = [
                    max(series[i], series[i + 1])
                    for i in range(0, len(series) - 1, 2)
                ]
            if len(series) % 2:
                merged.append(series[-1])
            self._values[name] = merged
        self.interval_cycles *= 2.0
        self.coalesces += 1
        grid = self.interval_cycles
        last = self._edges[-1] if self._edges else 0.0
        self._next_edge = (last // grid + 1.0) * grid

    # -- results -----------------------------------------------------------

    @property
    def intervals(self) -> int:
        return len(self._edges)

    def edges(self) -> List[float]:
        return list(self._edges)

    def series(self, name: str) -> List[float]:
        return list(self._values[name])

    def series_names(self) -> List[str]:
        return sorted(self._values)

    def to_dict(self) -> Dict[str, object]:
        """The JSON-serializable timeline document (see
        :func:`validate_timeline` for the schema contract)."""
        return {
            "version": TIMELINE_VERSION,
            "interval_cycles": self.interval_cycles,
            "initial_interval_cycles": self.initial_interval_cycles,
            "max_intervals": self.max_intervals,
            "coalesces": self.coalesces,
            "intervals": len(self._edges),
            "edges": [round(e, 6) for e in self._edges],
            "series": {
                name: {
                    "kind": self._kinds[name],
                    "values": [round(v, 6) for v in values],
                    **(
                        {"meta": self._meta[name]}
                        if name in self._meta
                        else {}
                    ),
                }
                for name, values in sorted(self._values.items())
            },
        }


# ---------------------------------------------------------------------------
# probe construction: what a Cedar machine exposes per interval


def _is_network(component) -> bool:
    """Duck-typed OmegaNetwork check (covers injection-view variants)."""
    return hasattr(component, "stages") and hasattr(component, "injection_ports")


def machine_probes(ctx) -> List[SeriesProbe]:
    """The standard probe set over one ``SimContext``'s components:
    engine volume and queue depths, per-stage network busy cycles and
    delivered words, injection-queue occupancy, memory-module busy
    cycles / words / queue state, and fault counts when an injector is
    armed.  Shared-fabric variants alias stage lists between the two
    network components; each physical stage is probed once."""
    engine = ctx.engine
    probes = [
        SeriesProbe("engine.events", KIND_DELTA,
                    lambda: engine.events_processed),
        SeriesProbe("engine.pending", KIND_GAUGE, engine.pending),
    ]
    seen_stages = set()
    for name, component in ctx.components():
        if _is_network(component):
            ports = component.injection_ports
            probes.append(SeriesProbe(
                f"{name}.inject.queued_words", KIND_GAUGE,
                lambda ports=ports: sum(p.queued_words for p in ports),
                meta={"ports": len(ports)},
            ))
            if id(component.stages) in seen_stages:
                continue  # shared fabric: already probed via the twin
            seen_stages.add(id(component.stages))
            for idx, stage in enumerate(component.stages):
                probes.append(SeriesProbe(
                    f"{name}.s{idx}.busy", KIND_DELTA,
                    lambda stage=stage: sum(
                        r.stats.busy_cycles for r in stage
                    ),
                    meta={"links": len(stage)},
                ))
            last = component.stages[-1]
            probes.append(SeriesProbe(
                f"{name}.words", KIND_DELTA,
                lambda last=last: sum(r.stats.words for r in last),
            ))
        elif hasattr(component, "modules"):  # GlobalMemory
            modules = component.modules
            probes.extend([
                SeriesProbe(
                    f"{name}.busy", KIND_DELTA,
                    lambda modules=modules: sum(
                        m.stats.busy_cycles for m in modules
                    ),
                    meta={"links": len(modules)},
                ),
                SeriesProbe(
                    f"{name}.words", KIND_DELTA,
                    lambda modules=modules: sum(
                        m.stats.words for m in modules
                    ),
                ),
                SeriesProbe(
                    f"{name}.queued_words", KIND_GAUGE,
                    lambda modules=modules: sum(
                        m.queued_words for m in modules
                    ),
                ),
                SeriesProbe(
                    f"{name}.queued_pkts", KIND_GAUGE,
                    lambda modules=modules: sum(
                        m.queued_packets for m in modules
                    ),
                ),
            ])
        elif hasattr(component, "transients"):  # FaultInjector
            injector = component
            probes.extend([
                SeriesProbe(
                    f"{name}.events", KIND_DELTA,
                    lambda injector=injector: (
                        injector.transients + injector.port_downs
                        + injector.ecc_retries + injector.sync_timeouts
                        + injector.rerouted
                    ),
                ),
                SeriesProbe(
                    f"{name}.ports_down", KIND_GAUGE,
                    lambda injector=injector: len(injector._down),
                ),
            ])
    return probes


# ---------------------------------------------------------------------------
# the recorder: context-observer driver for experiment code


class TimelineRecorder:
    """Attach a :class:`MetricTimeline` to every machine built while
    installed.

    Same shape as :class:`~repro.monitor.report.ReportCollector` /
    :class:`~repro.monitor.telemetry.HeartbeatEmitter`: a context
    observer arms an engine pulse per machine, so experiment code that
    builds machines internally gets timelines without modification::

        with TimelineRecorder(interval_cycles=64.0) as recorder:
            experiment.runner(...)
        docs = recorder.documents()
    """

    def __init__(
        self,
        interval_cycles: float = DEFAULT_INTERVAL_CYCLES,
        max_intervals: int = MAX_INTERVALS,
    ) -> None:
        self.interval_cycles = interval_cycles
        self.max_intervals = max_intervals
        self._records: List[tuple] = []  # (ctx, timeline)
        self._observer = None

    def install(self) -> "TimelineRecorder":
        from repro.core.context import add_context_observer

        if self._observer is None:
            self._observer = add_context_observer(self._observe)
        return self

    def uninstall(self) -> None:
        from repro.core.context import remove_context_observer

        if self._observer is not None:
            remove_context_observer(self._observer)
            self._observer = None
        for ctx, _timeline in self._records:
            ctx.engine.detach_pulse()

    def __enter__(self) -> "TimelineRecorder":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def _observe(self, ctx) -> None:
        # observers fire before machine assembly, so the component walk
        # is deferred to the first pulse via a probe factory.
        timeline = MetricTimeline(
            lambda: machine_probes(ctx),
            interval_cycles=self.interval_cycles,
            max_intervals=self.max_intervals,
        )
        ctx.engine.attach_pulse(timeline.pulse)
        self._records.append((ctx, timeline))

    # -- results -----------------------------------------------------------

    @property
    def machines(self) -> int:
        return len(self._records)

    def timelines(self) -> List[MetricTimeline]:
        return [timeline for _ctx, timeline in self._records]

    def documents(self) -> List[Dict[str, object]]:
        """One finalized timeline document per machine (closing each
        machine's partial tail interval at its engine's current time)."""
        out = []
        for ctx, timeline in self._records:
            timeline.finalize(ctx.engine.now)
            out.append(timeline.to_dict())
        return out


# ---------------------------------------------------------------------------
# validation (the CI artifact check, like validate_spans / _chrome_trace)


def validate_timeline(doc: Dict) -> Tuple[int, int]:
    """Check one timeline document against the schema essentials.

    Returns ``(n_series, n_intervals)``; raises ``ValueError`` on
    malformation: unknown version, non-monotonic edges, a series whose
    length disagrees with the edge count, an unknown kind, or a
    non-finite value.
    """
    if not isinstance(doc, dict):
        raise ValueError("timeline document must be an object")
    if doc.get("version") != TIMELINE_VERSION:
        raise ValueError(
            f"unknown timeline version {doc.get('version')!r} "
            f"(expected {TIMELINE_VERSION})"
        )
    width = doc.get("interval_cycles")
    if not isinstance(width, (int, float)) or width <= 0:
        raise ValueError(f"interval_cycles must be positive: {width!r}")
    edges = doc.get("edges")
    if not isinstance(edges, list):
        raise ValueError("timeline document missing its edges array")
    last = 0.0
    for edge in edges:
        if not isinstance(edge, (int, float)) or edge <= last:
            raise ValueError(
                f"edges must be strictly increasing and positive: {edges!r}"
            )
        last = edge
    if doc.get("intervals") != len(edges):
        raise ValueError(
            f"intervals field ({doc.get('intervals')!r}) disagrees with "
            f"edge count ({len(edges)})"
        )
    series = doc.get("series")
    if not isinstance(series, dict):
        raise ValueError("timeline document missing its series map")
    for name, entry in series.items():
        if not isinstance(entry, dict):
            raise ValueError(f"series {name!r} is not an object")
        if entry.get("kind") not in _KINDS:
            raise ValueError(
                f"series {name!r} has unknown kind {entry.get('kind')!r}"
            )
        values = entry.get("values")
        if not isinstance(values, list) or len(values) != len(edges):
            raise ValueError(
                f"series {name!r} has {len(values) if isinstance(values, list) else 'no'} "
                f"values for {len(edges)} intervals"
            )
        for value in values:
            if not isinstance(value, (int, float)) or value != value:
                raise ValueError(
                    f"series {name!r} holds a non-numeric value: {value!r}"
                )
    return len(series), len(edges)


def validate_timeline_file(path) -> Tuple[int, int]:
    """Load ``path`` (one document, or a ``{"machines": [...]}`` bundle
    written by ``python -m repro timeline --out``) and validate every
    document in it; returns summed ``(n_series, n_intervals)``."""
    with open(path) as fh:
        doc = json.load(fh)
    docs = doc["machines"] if isinstance(doc, dict) and "machines" in doc else [doc]
    if not docs:
        raise ValueError(f"no timeline documents in {path}")
    totals = [0, 0]
    for entry in docs:
        n_series, n_intervals = validate_timeline(entry)
        totals[0] += n_series
        totals[1] += n_intervals
    return totals[0], totals[1]
