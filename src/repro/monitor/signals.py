"""Typed signal bus: the wiring layer between hardware and monitors.

The paper's methodology instruments a *running* machine with external
hardware (event tracers, histogrammers, the prefetch probe) "without
perturbing it".  The signal bus reproduces that decoupling in software:
components **publish** named signals at architectural events and
probes/tracers/histogrammers **subscribe** — the machine model never
references a monitor.

Zero-cost fast path
-------------------

Publishers hold a :class:`Signal` channel (cached as a bound local at
attach time) and guard every emission on its pre-snapshotted
``callbacks`` tuple::

    sig = self._sig_request
    if sig.callbacks:            # () while nobody subscribes
        sig.emit(index, now)

``callbacks`` is rebuilt only when a subscription is added or removed
(:meth:`Signal.add_subscriber` / :meth:`Signal.remove_subscriber` are
the *only* mutation points), so an unmonitored emission site is one
attribute-chain load and one truthiness branch — no method call, no
dict lookup, and no payload construction.  ``emit`` iterates the same
immutable tuple, so a monitored emission allocates no per-call
snapshot either.  Un-monitored simulations therefore pay (effectively)
nothing, and cycle counts are bit-identical with and without
monitoring because signals only observe.

Publishers whose channel may not be wired yet (components constructed
outside a :class:`~repro.core.context.SimContext`) default their
channel attributes to :data:`NULL_SIGNAL` — a permanently
subscriber-less channel — so emission sites stay a single branch
instead of an ``is not None`` pair.

Channels and keys
-----------------

Signals are *typed*: every name must be declared (the architectural
catalog below, or :meth:`SignalBus.declare`) with its payload field
names.  A signal name fans out into per-key channels — ``("pfu.request",
key=7)`` is CE port 7's request channel — so a probe monitoring one
port never runs, or filters, callbacks for the other 31.  Subscribing
with ``key=None`` attaches to every current *and future* channel of the
name (broadcast), which is how machine-wide tracers listen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

#: Architectural signals every Cedar machine publishes.  Field names
#: document the positional payload of ``emit``.
SIGNAL_CATALOG: Dict[str, Tuple[str, ...]] = {
    # prefetch unit (per-CE-port channels)
    "pfu.arm": ("port", "time"),
    "pfu.request": ("port", "word_index", "time"),
    "pfu.deliver": ("port", "word_index", "time"),
    "pfu.suspend": ("port", "time"),
    # network (broadcast channel per network name)
    "net.hop": ("resource", "packet", "time"),
    # queue occupancy: a packet entering / leaving a resource's queue
    # (keyed like ``net.hop``; emitted by every queueing Resource that a
    # component wires up, including memory modules and cluster banks)
    "net.enqueue": ("resource", "packet", "time"),
    "net.dequeue": ("resource", "packet", "time"),
    # a link's service completing (before any head-of-line blocking on
    # the next hop); with ``net.enqueue``/``net.hop`` this splits a hop
    # into queue-wait / service / blocked segments (keyed like net.hop)
    "net.service": ("resource", "packet", "time"),
    # one consolidated record per queue occupancy, emitted at departure
    # with all three edge times.  Unlike every other signal, the payload
    # is ONE pre-packed eight-slot tuple —
    #   (resource_name, request_id, is_reply, is_write, service_cycles,
    #    enqueue, service_end, depart)
    # — every slot an atomic value, with the packet fields already
    # extracted (packets are pooled and mutate, so they must be read at
    # event time anyway).  A subscriber that just buffers records can
    # therefore be ``list.extend`` itself: a traced hop costs a tuple
    # build and a C-level flat append, no Python frame — and because
    # the record tuple dies immediately, tracing adds no net GC-tracked
    # allocations (surviving per-event tuples would otherwise drag
    # collection pauses into the measured loop).  The request-tracing
    # layer subscribes to this instead of the enqueue/service/hop
    # point-signal triple (keyed like net.hop)
    "net.span": ("record",),
    # global memory (per-module channels); ``cycles`` is the service time
    "gmem.service": ("module", "packet", "time", "cycles"),
    "sync.op": ("module", "address", "time", "packet", "success"),
    # request lifecycle (per-CE-port channels): a global reference being
    # born at its issue site (``origin`` is "prefetch"/"demand"/"block"/
    # "store"/"sync") and a reply being delivered back at its port.  The
    # packet's ``request_id`` — shared by request and reply — is the
    # span identity the SpanCollector stitches on.
    "req.birth": ("packet", "origin", "time"),
    "req.deliver": ("packet", "time"),
    # cluster-local shared resources (per-cluster channels)
    "cluster.access": ("resource", "packet", "time"),
    # CE lifecycle
    "ce.done": ("port", "time"),
    # fault injection (un-keyed channels; see repro.faults)
    "fault.transient": ("resource", "packet", "time", "backoff_cycles"),
    "fault.port_down": ("resource", "time", "until"),
    "fault.ecc": ("module", "packet", "time", "stall_cycles"),
    "fault.sync_timeout": ("module", "address", "time", "penalty_cycles"),
    "fault.reroute": ("network", "packet", "time"),
}


@dataclass(frozen=True)
class Subscription:
    """Handle returned by ``subscribe``; pass to ``unsubscribe``."""

    name: str
    key: Optional[Hashable]
    callback: Callable


class Signal:
    """One named (and optionally keyed) channel of a :class:`SignalBus`.

    :attr:`callbacks` is the publisher fast path: an immutable tuple of
    the current subscribers, rebuilt only on subscribe/unsubscribe.
    Truthiness mirrors it, keeping the older ``if sig:`` idiom working.
    """

    __slots__ = ("name", "key", "fields", "callbacks", "_subscribers")

    def __init__(
        self, name: str, key: Optional[Hashable], fields: Tuple[str, ...]
    ) -> None:
        self.name = name
        self.key = key
        self.fields = fields
        self._subscribers: List[Callable] = []
        #: pre-snapshotted subscriber tuple; ``()`` while unmonitored.
        #: Publishers guard on ``sig.callbacks`` and ``emit`` iterates
        #: it, so the per-emit snapshot allocation is gone.
        self.callbacks: Tuple[Callable, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.callbacks)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- the single invalidation point -----------------------------------------

    def add_subscriber(self, callback: Callable) -> None:
        """Attach ``callback`` and refresh the :attr:`callbacks`
        snapshot.  Every subscription path (keyed, un-keyed, broadcast
        mirroring) funnels through here — it is the one place the
        cached emission state changes."""
        self._subscribers.append(callback)
        self.callbacks = tuple(self._subscribers)

    def remove_subscriber(self, callback: Callable) -> bool:
        """Detach ``callback`` (if present) and refresh the snapshot."""
        if callback not in self._subscribers:
            return False
        self._subscribers.remove(callback)
        self.callbacks = tuple(self._subscribers)
        return True

    def emit(self, *args) -> None:
        """Deliver ``args`` to every subscriber (snapshot semantics:
        subscribing or unsubscribing *during* an emit affects the next
        emit, not the one in flight — the tuple in flight is immutable)."""
        for callback in self.callbacks:
            callback(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        key = "" if self.key is None else f"[{self.key}]"
        return f"<Signal {self.name}{key} subs={len(self._subscribers)}>"


#: Permanently-quiescent channel publishers use as their default before
#: attach: ``NULL_SIGNAL.callbacks`` is always ``()``, so an unwired
#: emission site takes the same single-branch fast path as a wired but
#: unmonitored one.  Subscribing to it is a bug and raises.
class _NullSignal(Signal):
    __slots__ = ()

    def add_subscriber(self, callback: Callable) -> None:
        raise RuntimeError("cannot subscribe to NULL_SIGNAL")


NULL_SIGNAL = _NullSignal("null", None, ())


class SignalBus:
    """Registry of named signal channels with declared payloads.

    >>> bus = SignalBus()
    >>> seen = []
    >>> sub = bus.subscribe("pfu.request", lambda port, i, t: seen.append(i), key=0)
    >>> sig = bus.signal("pfu.request", key=0)
    >>> if sig: sig.emit(0, 3, 100.0)
    >>> seen
    [3]
    >>> bus.unsubscribe(sub)
    >>> bool(sig)
    False
    """

    def __init__(self, strict: bool = True) -> None:
        #: names -> payload fields; seeded with the architectural catalog.
        self._declared: Dict[str, Tuple[str, ...]] = dict(SIGNAL_CATALOG)
        self._channels: Dict[Tuple[str, Optional[Hashable]], Signal] = {}
        #: per-name broadcast subscribers, mirrored into keyed channels.
        self._broadcast: Dict[str, List[Callable]] = {}
        self.strict = strict

    # -- declaration -----------------------------------------------------------

    def declare(self, name: str, fields: Tuple[str, ...]) -> None:
        """Declare a new signal name and its payload field names."""
        existing = self._declared.get(name)
        if existing is not None and existing != tuple(fields):
            raise ValueError(
                f"signal {name!r} already declared with fields {existing}"
            )
        self._declared[name] = tuple(fields)

    def declared(self, name: str) -> bool:
        return name in self._declared

    def fields(self, name: str) -> Tuple[str, ...]:
        self._check_name(name)
        return self._declared[name]

    # -- channels --------------------------------------------------------------

    def signal(self, name: str, key: Optional[Hashable] = None) -> Signal:
        """The channel for ``(name, key)``; created on first use.

        Publishers call this once at attach time and cache the result —
        channel identity is stable for the bus's lifetime.
        """
        self._check_name(name)
        channel = self._channels.get((name, key))
        if channel is None:
            channel = Signal(name, key, self._declared[name])
            # keyed channels inherit the name's broadcast subscribers
            if key is not None:
                for callback in self._broadcast.get(name, ()):
                    channel.add_subscriber(callback)
            self._channels[(name, key)] = channel
        return channel

    def subscribe(
        self,
        name: str,
        callback: Callable,
        key: Optional[Hashable] = None,
    ) -> Subscription:
        """Attach ``callback`` to ``(name, key)``.

        ``key=None`` is a *broadcast* subscription: the callback joins
        every existing channel of the name, the name's un-keyed channel,
        and every keyed channel created later.
        """
        self._check_name(name)
        if key is None:
            self._broadcast.setdefault(name, []).append(callback)
            for (cname, ckey), channel in self._channels.items():
                if cname == name:
                    channel.add_subscriber(callback)
            if (name, None) not in self._channels:
                self.signal(name, None).add_subscriber(callback)
        else:
            self.signal(name, key).add_subscriber(callback)
        return Subscription(name=name, key=key, callback=callback)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscription everywhere it was mirrored."""
        name, key, callback = (
            subscription.name,
            subscription.key,
            subscription.callback,
        )
        if key is None:
            broadcast = self._broadcast.get(name, [])
            if callback in broadcast:
                broadcast.remove(callback)
            for (cname, _), channel in self._channels.items():
                if cname == name:
                    channel.remove_subscriber(callback)
        else:
            channel = self._channels.get((name, key))
            if channel is not None:
                channel.remove_subscriber(callback)

    # -- introspection ---------------------------------------------------------

    def subscriber_count(self, name: str) -> int:
        """Distinct live subscriptions across all channels of ``name``.

        A broadcast subscription is mirrored into every keyed channel of
        the name but is still *one* subscription; the mirror copies are
        discounted so the count matches what ``subscribe`` was called
        with (one per :class:`Subscription`).
        """
        n_channels = 0
        raw = 0
        for (cname, _), channel in self._channels.items():
            if cname == name:
                n_channels += 1
                raw += channel.subscriber_count
        n_broadcast = len(self._broadcast.get(name, ()))
        if n_broadcast and n_channels > 1:
            # each broadcast callback appears once per channel of the name
            raw -= n_broadcast * (n_channels - 1)
        return raw

    def quiescent(self) -> bool:
        """True when no channel on the bus has any subscriber — the
        whole-machine zero-cost condition."""
        return all(not channel for channel in self._channels.values())

    def _check_name(self, name: str) -> None:
        if self.strict and name not in self._declared:
            raise KeyError(
                f"signal {name!r} not declared; known: {sorted(self._declared)}"
            )
