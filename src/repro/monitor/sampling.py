"""Sampled request tracing: span collection for long runs.

A full :class:`~repro.monitor.spans.SpanCollector` records every event
of every request.  For throughput studies that is still measurable
overhead (each of the ~15 bus events per reference appends a record),
and the statistics it feeds — latency percentiles, phase shares,
bottleneck attribution — converge long before every request is traced.

:class:`SampledSpanCollector` traces **every Nth request end to end**:
a request is either fully traced (all its events recorded, phase sums
reconciling exactly with its end-to-end latency, same as full tracing)
or not traced at all — its packet's ``trace`` mark is cleared at birth
so the per-hop ``net.span`` record is never even built, and its other
events are filtered by one set-membership test.  There is no
per-request partial sampling — reconciliation semantics are preserved
for the traced population.

One caveat follows from the mark living *on the packet*: attaching a
sampling collector and a full :class:`SpanCollector` to the same run
thins the full collector's hop records to the sampled population too
(birth/deliver/memory events are unaffected).  Attach one collector
per run — the experiment runner already does.

Determinism
-----------

Selection uses the collector's own **birth counter**, not the process-
global ``request_id``: the k-th reference born after attach is traced
iff ``k % every == 0``.  Birth order is part of the deterministic event
order, so two identical runs trace the same references — ``request_id``
values, by contrast, come from a process-wide counter whose start
depends on whatever ran earlier in the process.

Sampling only *observes* (the selection branch runs inside the
subscriber-guarded handlers), so the zero-cost guarantee is untouched
and simulated cycles are bit-identical to an untraced run.

Statistics caveat: percentiles computed from a 1-in-N sample are
estimates of the population percentiles; tail attribution (p99 of a
16x-thinned population) needs proportionally longer runs for the same
confidence.  The ``sampled_every`` / ``sampled_out`` fields in the
spans document record what fraction was traced.
"""

from __future__ import annotations

from repro.monitor.spans import (
    SpanCollector,
    _EV_BIRTH,
    _EV_DELIVER,
    _EV_GSVC,
    _EV_SYNC,
)


class SampledSpanCollector(SpanCollector):
    """Trace every ``every``-th request; drop the rest at the handler.

    ``every=1`` is exact full tracing.  ``every=16`` keeps span overhead
    low enough for throughput sweeps (see the perf gate) while still
    collecting thousands of exactly-reconciled spans per run.
    """

    def __init__(self, every: int = 16,
                 max_requests: int = SpanCollector.DEFAULT_MAX_REQUESTS) -> None:
        super().__init__(max_requests=max_requests)
        if every < 1:
            raise ValueError("sampling interval must be at least 1")
        self.every = every
        #: references born since attach (the deterministic sample clock).
        self.births_seen = 0
        #: references skipped by sampling (disjoint from ``dropped``,
        #: which counts the max_requests cap among *traced* births).
        self.sampled_out = 0
        self._traced = set()

    # -- hot-path handlers: one membership test per untraced event ---------

    def _on_req_birth(self, packet, origin: str, time: float) -> None:
        k = self.births_seen
        self.births_seen = k + 1
        if k % self.every:
            self.sampled_out += 1
            # clear the packet's trace mark: every resource on the
            # route now skips the net.span record build for this
            # reference — a sampled-out hop costs two attribute loads.
            packet.trace = False
            return
        rid = packet.request_id
        self._traced.add(rid)
        self._events.append((
            _EV_BIRTH, rid, origin, packet.src, packet.address,
            packet.kind.name, packet.words, time,
        ))

    def _on_req_deliver(self, packet, time: float) -> None:
        rid = packet.request_id
        if rid in self._traced:
            self._events.append((_EV_DELIVER, rid, time))

    # net.span needs no override: sampled-out references get their
    # packet ``trace`` mark cleared at birth, so the emission sites
    # never build records for them and the inherited C-level ``extend``
    # subscriber only ever sees sampled traffic.  (Occupancies of
    # packets that never emit ``req.birth`` — cluster-local traffic —
    # still arrive exactly as in the full collector and are dropped at
    # drain for their unknown request ids.)

    def _on_gmem_service(self, module: int, packet, time: float,
                         cycles: float) -> None:
        rid = packet.request_id
        if rid in self._traced:
            self._events.append((_EV_GSVC, rid, module, cycles, time))

    def _on_sync_op(self, module: int, address: int, time: float, packet,
                    success: bool) -> None:
        rid = packet.request_id
        if rid in self._traced:
            self._events.append((
                _EV_SYNC, rid, success, packet.meta.get("sync"), time,
            ))

    def _on_fault_transient(self, resource, packet, time: float,
                            backoff_cycles: float) -> None:
        if packet.request_id in self._traced:
            super()._on_fault_transient(resource, packet, time, backoff_cycles)

    def _on_fault_ecc(self, module: int, packet, time: float,
                      stall_cycles: float) -> None:
        if packet.request_id in self._traced:
            super()._on_fault_ecc(module, packet, time, stall_cycles)

    def _on_fault_reroute(self, network: str, packet, time: float) -> None:
        if packet.request_id in self._traced:
            super()._on_fault_reroute(network, packet, time)

    # fault.sync_timeout carries no packet; the base handler records it
    # and the drain charges it to the oldest traced in-flight sync, so
    # no override is needed.

    # -- results -----------------------------------------------------------

    def spans(self) -> dict:
        doc = super().spans()
        doc["sampled_every"] = self.every
        doc["sampled_out"] = self.sampled_out
        return doc
