"""Structured run reports: what one experiment run actually did.

A :class:`RunReport` is the machine-readable record of one registered
experiment execution — configuration hash, simulated time, wall time,
engine self-metrics (events dispatched, realized events/sec, queue
depths), and a metrics snapshot from the standard utilization monitors.
``python -m repro run-all`` emits one JSON report per artifact and
``python -m repro report`` aggregates a directory of them.

Collection uses the context-observer hook
(:func:`repro.core.context.add_context_observer`): while a
:class:`ReportCollector` is installed, every machine built anywhere in
the process — including deep inside experiment code — gets a
:class:`~repro.monitor.metrics.MetricsRegistry` plus the standard
monitor set attached to its signal bus.  Monitors only observe, so the
simulated results are bit-identical with or without collection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.monitor.metrics import MetricsRegistry
from repro.monitor.monitors import attach_standard_monitors, detach_monitors
from repro.monitor.spans import LatencyAnalysis, SpanCollector

#: report format version (bump on breaking shape changes).
#: v3: streaming collection mode — the per-machine ``latency`` summary
#: may carry ``"mode": "streaming"`` plus serialized sketch state.
#: v4: time-resolved collection — per-machine records may carry a
#: ``timeline`` section (:meth:`MetricTimeline.to_dict`); readers must
#: tolerate its absence (timelines are opt-in).
REPORT_VERSION = 4

#: default on-disk report location (repo-/cwd-relative), one JSON per
#: artifact, written by ``python -m repro run-all``.
DEFAULT_REPORT_DIR = ".repro-reports"


class ReportCollector:
    """Instrument every SimContext built while installed.

    Use as a context manager::

        with ReportCollector() as collector:
            output = experiment.runner(**kwargs)
        machines = collector.machine_dicts()
    """

    #: per-machine span cap while reporting (smaller than the analyze
    #: CLI's: reports want the decomposition, not every exemplar).
    SPAN_CAP = 100_000

    def __init__(
        self,
        collect_spans: bool = True,
        stream: bool = False,
        timeline: Optional[float] = None,
    ) -> None:
        self._records: List[tuple] = []
        self._observer = None
        self.collect_spans = collect_spans
        #: streaming collection: attach a bounded-memory
        #: :class:`~repro.monitor.streamstore.StreamingSpanStore` per
        #: machine instead of the buffered collector — same signals,
        #: sketch-backed latency summary, no request cap to hit.
        self.stream = stream
        #: time-resolved collection: a sampling interval in simulated
        #: cycles arms a :class:`~repro.monitor.timeline.MetricTimeline`
        #: per machine (riding the engine pulse) and adds a ``timeline``
        #: section to each machine record.  ``None`` (the default)
        #: collects nothing and leaves the engine pulse unused.
        self.timeline = timeline

    # -- installation ------------------------------------------------------

    def install(self) -> "ReportCollector":
        # deferred import: repro.core.context itself imports the monitor
        # package (the signal bus), so a module-level import would cycle.
        from repro.core.context import add_context_observer

        if self._observer is None:
            self._observer = add_context_observer(self._observe)
        return self

    def uninstall(self) -> None:
        from repro.core.context import remove_context_observer

        if self._observer is not None:
            remove_context_observer(self._observer)
            self._observer = None
        for ctx, _registry, monitors, spans, timeline in self._records:
            detach_monitors(monitors)
            if spans is not None:
                spans.detach()
            if timeline is not None:
                ctx.engine.detach_pulse()

    def __enter__(self) -> "ReportCollector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def _observe(self, ctx) -> None:
        registry = MetricsRegistry()
        monitors = attach_standard_monitors(ctx.bus, registry)
        spans = None
        if self.collect_spans:
            if self.stream:
                from repro.monitor.streamstore import StreamingSpanStore

                spans = StreamingSpanStore(
                    max_requests=self.SPAN_CAP
                ).attach(ctx.bus)
            else:
                spans = SpanCollector(max_requests=self.SPAN_CAP).attach(ctx.bus)
        timeline = None
        if self.timeline is not None:
            from repro.monitor.timeline import MetricTimeline, machine_probes

            # probes resolve lazily at the first pulse — the machine's
            # components don't exist yet when the observer fires.
            timeline = MetricTimeline(
                lambda: machine_probes(ctx),
                interval_cycles=self.timeline,
                registry=registry,
            )
            ctx.engine.attach_pulse(timeline.pulse)
        self._records.append((ctx, registry, monitors, spans, timeline))

    # -- results -----------------------------------------------------------

    @property
    def machines(self) -> int:
        return len(self._records)

    def machine_dicts(self) -> List[Dict[str, object]]:
        """One JSON-ready record per machine built during collection."""
        out = []
        for ctx, registry, _monitors, spans, timeline in self._records:
            engine = ctx.engine
            record = {
                "config_hash": ctx.config.stable_hash(),
                "components": len(ctx.names()),
                "sim_cycles": engine.now,
                "engine": engine.self_metrics(),
                "metrics": registry.snapshot(now=engine.now),
            }
            if timeline is not None:
                timeline.finalize(engine.now)
                record["timeline"] = timeline.to_dict()
            if spans is not None:
                if self.stream:
                    from repro.monitor.streamstore import (
                        StreamingLatencyAnalysis,
                    )

                    record["latency"] = StreamingLatencyAnalysis.from_store(
                        spans
                    ).summary()
                else:
                    record["latency"] = LatencyAnalysis.from_collector(
                        spans
                    ).summary()
            out.append(record)
        return out


@dataclass(frozen=True)
class RunReport:
    """The structured record of one experiment execution."""

    experiment: str
    title: str
    kwargs: Dict[str, object]
    elapsed_s: float
    cached: bool
    machines: List[Dict[str, object]] = field(default_factory=list)
    version: int = REPORT_VERSION

    # -- derived aggregates ------------------------------------------------

    def total_sim_cycles(self) -> float:
        return sum(m.get("sim_cycles", 0.0) for m in self.machines)

    def total_engine_events(self) -> int:
        return sum(
            m.get("engine", {}).get("events_processed", 0) for m in self.machines
        )

    def latency_summary(self) -> Dict[str, object]:
        """Run-level latency rollup over the per-machine span analyses:
        traced-request total, the worst machine p95, and the stage
        that dominates the worst machine's tail."""
        traced = [
            m["latency"] for m in self.machines
            if isinstance(m.get("latency"), dict) and m["latency"].get("requests")
        ]
        summary: Dict[str, object] = {
            "requests": sum(m["requests"] for m in traced),
        }
        p95s = [
            m["end_to_end"]["all"]["p95"]
            for m in traced
            if m.get("end_to_end", {}).get("all")
        ]
        if p95s:
            worst = max(range(len(p95s)), key=lambda i: p95s[i])
            summary["worst_p95_cycles"] = p95s[worst]
            bottleneck = traced[worst].get("bottleneck")
            if bottleneck:
                summary["bottleneck"] = bottleneck
        return summary

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "experiment": self.experiment,
            "title": self.title,
            "kwargs": dict(self.kwargs),
            "elapsed_s": round(self.elapsed_s, 3),
            "cached": self.cached,
            "machines_built": len(self.machines),
            "total_sim_cycles": self.total_sim_cycles(),
            "total_engine_events": self.total_engine_events(),
            "latency": self.latency_summary(),
            "machines": list(self.machines),
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        return cls(
            experiment=str(data.get("experiment", "?")),
            title=str(data.get("title", "")),
            kwargs=dict(data.get("kwargs", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            cached=bool(data.get("cached", False)),
            machines=list(data.get("machines", [])),
            version=int(data.get("version", REPORT_VERSION)),
        )


def aggregate_reports(reports: List[Dict[str, object]]) -> Dict[str, object]:
    """Roll a set of report dicts up into fleet-level totals."""
    total_events = sum(r.get("total_engine_events", 0) for r in reports)
    total_cycles = sum(r.get("total_sim_cycles", 0.0) for r in reports)
    total_wall = sum(
        m.get("engine", {}).get("run_wall_s", 0.0)
        for r in reports
        for m in r.get("machines", [])
    )
    return {
        "experiments": len(reports),
        "machines_built": sum(r.get("machines_built", 0) for r in reports),
        "total_sim_cycles": total_cycles,
        "total_engine_events": total_events,
        "total_engine_wall_s": round(total_wall, 4),
        "aggregate_events_per_sec": round(total_events / total_wall, 1)
        if total_wall > 0
        else 0.0,
    }


def render_report_summary(reports: List[Dict[str, object]]) -> str:
    """Human-readable rollup of per-artifact reports (the ``python -m
    repro report`` view)."""
    from repro.util.tables import Table

    table = Table(
        title="Run reports",
        columns=["experiment", "machines", "sim cycles", "events", "ev/s", "wall s"],
        precision=1,
    )
    for report in sorted(reports, key=lambda r: str(r.get("experiment", ""))):
        machines = report.get("machines", [])
        wall = sum(m.get("engine", {}).get("run_wall_s", 0.0) for m in machines)
        events = report.get("total_engine_events", 0)
        table.add_row(
            [
                str(report.get("experiment", "?")),
                report.get("machines_built", 0),
                report.get("total_sim_cycles", 0.0),
                events,
                (events / wall) if wall > 0 else 0.0,
                report.get("elapsed_s", 0.0),
            ]
        )
    summary = aggregate_reports(reports)
    lines = [
        table.render(),
        "",
        f"{summary['experiments']} experiments, "
        f"{summary['machines_built']} machines, "
        f"{summary['total_engine_events']} engine events "
        f"({summary['aggregate_events_per_sec']:.0f} events/s inside run loops)",
    ]
    sparks = _timeline_sparks(reports)
    if sparks:
        lines.extend(["", *sparks])
    return "\n".join(lines)


def _timeline_sparks(reports: List[Dict[str, object]]) -> List[str]:
    """One engine-event sparkline per machine record carrying a
    timeline section — the time-resolved row of the report summary."""
    from repro.util.ascii_chart import sparkline

    lines: List[str] = []
    for report in sorted(reports, key=lambda r: str(r.get("experiment", ""))):
        for i, machine in enumerate(report.get("machines", [])):
            timeline = machine.get("timeline")
            if not isinstance(timeline, dict):
                continue
            series = timeline.get("series", {}).get("engine.events", {})
            values = series.get("values", [])
            if not values:
                continue
            lines.append(
                f"{report.get('experiment', '?')}[m{i}] events/interval "
                f"|{sparkline(values, width=48, lo=0.0)}| "
                f"{timeline.get('intervals', 0)} x "
                f"{timeline.get('interval_cycles', 0.0):g} cycles"
            )
    if lines:
        lines.insert(0, "timelines (engine events per interval):")
    return lines
