"""Hardware histogrammers: 64K 32-bit saturating counters."""

from __future__ import annotations

from typing import Dict, List, Sequence


class Histogrammer:
    """A bank of 64K 32-bit counters binning a hardware signal.

    Values are mapped to bins linearly between ``lo`` and ``hi``; out of
    range values clamp to the edge bins (as real histogram hardware
    does).  Counters saturate at 2**32 - 1.
    """

    BINS = 1 << 16
    COUNTER_MAX = (1 << 32) - 1

    def __init__(self, lo: float, hi: float, bins: int = BINS) -> None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if not 1 <= bins <= self.BINS:
            raise ValueError(f"bins must be in 1..{self.BINS}")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self._counts: Dict[int, int] = {}
        self.samples = 0

    def bin_for(self, value: float) -> int:
        frac = (value - self.lo) / (self.hi - self.lo)
        idx = int(frac * self.bins)
        return min(max(idx, 0), self.bins - 1)

    def record(self, value: float) -> None:
        idx = self.bin_for(value)
        current = self._counts.get(idx, 0)
        if current < self.COUNTER_MAX:
            self._counts[idx] = current + 1
        self.samples += 1

    def count(self, idx: int) -> int:
        return self._counts.get(idx, 0)

    def nonzero_bins(self) -> List[int]:
        return sorted(self._counts)

    def mean(self) -> float:
        """Mean of bin centers weighted by counts."""
        if not self._counts:
            raise ValueError("no samples recorded")
        width = (self.hi - self.lo) / self.bins
        total = sum(self._counts.values())
        acc = sum(
            (self.lo + (idx + 0.5) * width) * count
            for idx, count in self._counts.items()
        )
        return acc / total

    def percentile(self, q: float) -> float:
        """Percentile from binned counts (0 <= q <= 1), interpolated
        linearly *within* the bin that crosses the target rank — the
        resolution limit is one bin width, not one bin midpoint.

        Edge-bin clamping: out-of-range samples were clamped into the
        edge bins at :meth:`record` time, so extreme quantiles clamp to
        ``[lo, hi]`` — a p99 of data above ``hi`` reports ``hi``, never
        extrapolates beyond the counter range (as the 64K-counter
        hardware would).
        """
        if not 0 <= q <= 1:
            raise ValueError("q must be within [0, 1]")
        if not self._counts:
            raise ValueError("no samples recorded")
        total = sum(self._counts.values())
        target = q * total
        seen = 0
        width = (self.hi - self.lo) / self.bins
        for idx in sorted(self._counts):
            count = self._counts[idx]
            if seen + count >= target:
                frac = (target - seen) / count if count else 0.0
                frac = min(max(frac, 0.0), 1.0)
                value = self.lo + (idx + frac) * width
                return min(max(value, self.lo), self.hi)
            seen += count
        return self.hi

    def quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.95, 0.99)) -> List[float]:
        """:meth:`percentile` for each ``q`` in ``qs`` (one pass per q;
        the bank is small enough that a shared pass is not worth it)."""
        return [self.percentile(q) for q in qs]
