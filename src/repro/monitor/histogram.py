"""Hardware histogrammers: 64K 32-bit saturating counters."""

from __future__ import annotations

from typing import Dict, List, Sequence


class Histogrammer:
    """A bank of 64K 32-bit counters binning a hardware signal.

    Values are mapped to bins linearly between ``lo`` and ``hi``; out of
    range values clamp to the edge bins (as real histogram hardware
    does) **and** increment the explicit ``underflow``/``overflow``
    counters, so statistics can place that mass at the range edge it
    actually clamped to instead of smearing it across an edge bin.
    Counters saturate at 2**32 - 1.
    """

    BINS = 1 << 16
    COUNTER_MAX = (1 << 32) - 1

    def __init__(self, lo: float, hi: float, bins: int = BINS) -> None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if not 1 <= bins <= self.BINS:
            raise ValueError(f"bins must be in 1..{self.BINS}")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self._counts: Dict[int, int] = {}
        self.samples = 0
        #: samples below ``lo`` / at-or-above ``hi``.  They still clamp
        #: into the edge-bin counters (hardware behaviour), but
        #: :meth:`mean` and :meth:`percentile` exclude them from
        #: within-bin interpolation — clamped mass sits exactly at
        #: ``lo``/``hi``, not at an edge-bin midpoint, which otherwise
        #: biases every statistic that touches an edge bin.
        self.underflow = 0
        self.overflow = 0

    def bin_for(self, value: float) -> int:
        frac = (value - self.lo) / (self.hi - self.lo)
        idx = int(frac * self.bins)
        return min(max(idx, 0), self.bins - 1)

    def record(self, value: float) -> None:
        idx = self.bin_for(value)
        current = self._counts.get(idx, 0)
        if current < self.COUNTER_MAX:
            self._counts[idx] = current + 1
        self.samples += 1
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1

    def count(self, idx: int) -> int:
        return self._counts.get(idx, 0)

    def nonzero_bins(self) -> List[int]:
        return sorted(self._counts)

    def _in_range_count(self, idx: int) -> int:
        """The bin's count minus any clamped out-of-range mass (which
        lives in the edge bins).  Saturated counters can undershoot the
        clamped mass, hence the floor at zero."""
        count = self._counts.get(idx, 0)
        if idx == 0:
            count -= self.underflow
        if idx == self.bins - 1:
            count -= self.overflow
        return max(count, 0)

    def mean(self) -> float:
        """Mean of bin centers weighted by counts; clamped out-of-range
        mass contributes exactly ``lo``/``hi``."""
        if not self._counts:
            raise ValueError("no samples recorded")
        width = (self.hi - self.lo) / self.bins
        acc = self.lo * self.underflow + self.hi * self.overflow
        total = self.underflow + self.overflow
        for idx in self._counts:
            count = self._in_range_count(idx)
            acc += (self.lo + (idx + 0.5) * width) * count
            total += count
        return acc / total

    def percentile(self, q: float) -> float:
        """Percentile from binned counts (0 <= q <= 1), interpolated
        linearly *within* the bin that crosses the target rank — the
        resolution limit is one bin width, not one bin midpoint.

        Clamped mass orders at the range edges: ``underflow`` samples
        sit at exactly ``lo`` (before every in-range bin), ``overflow``
        samples at exactly ``hi`` (after every in-range bin).  Only
        genuinely in-range counts interpolate, so a run whose tail
        clamps into the top bin no longer drags interpolated quantiles
        below ``hi``.
        """
        if not 0 <= q <= 1:
            raise ValueError("q must be within [0, 1]")
        if not self._counts:
            raise ValueError("no samples recorded")
        in_range = {
            idx: self._in_range_count(idx) for idx in sorted(self._counts)
        }
        total = self.underflow + self.overflow + sum(in_range.values())
        target = q * total
        if self.underflow and self.underflow >= target:
            return self.lo
        seen = self.underflow
        width = (self.hi - self.lo) / self.bins
        for idx, count in in_range.items():
            if count and seen + count >= target:
                frac = (target - seen) / count
                frac = min(max(frac, 0.0), 1.0)
                value = self.lo + (idx + frac) * width
                return min(max(value, self.lo), self.hi)
            seen += count
        return self.hi

    def quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.95, 0.99)) -> List[float]:
        """:meth:`percentile` for each ``q`` in ``qs`` (one pass per q;
        the bank is small enough that a shared pass is not worth it)."""
        return [self.percentile(q) for q in qs]
