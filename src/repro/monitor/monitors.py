"""Utilization monitors: broadcast bus subscribers feeding the registry.

The paper attaches histogrammers and tracers to arbitrary hardware
signals; these classes are their software counterparts.  Each monitor
subscribes *broadcast* to one family of architectural signals and
derives:

* **busy-fraction timelines** (network stages, memory modules) from
  departure/service events and the resources' public rate parameters;
* **queue-occupancy distributions** (time-weighted words queued per
  resource) from the ``net.enqueue`` / ``net.dequeue`` pair;
* **per-module service-time histograms** from ``gmem.service``'s
  ``cycles`` payload.

Monitors only read signal payloads and write
:class:`~repro.monitor.metrics.MetricsRegistry` instruments — they
never touch machine state, so attaching any set of them leaves cycle
counts bit-identical (the zero-cost contract, verified by
``tests/test_zero_cost.py``).

Metric naming scheme: ``<component path>.<metric>`` where the component
path matches the machine's resource names — ``net.fwd.s0[3]``,
``gmem.module[12]``, ``sync.module[12]``, ``pfu.port[0]``,
``cluster.cl2.cache``.  Stage/subsystem aggregates drop the trailing
index: ``net.fwd.s0.busy``, ``gmem.busy``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.monitor.metrics import MetricsRegistry

#: default busy-timeline bin width in cycles.
DEFAULT_BIN_CYCLES = 256.0


class MonitorBase:
    """Subscription bookkeeping shared by every monitor."""

    #: signal names the monitor wants (subclasses override).
    SIGNALS: tuple = ()

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._subscriptions: List[tuple] = []

    def attach(self, bus) -> "MonitorBase":
        """Broadcast-subscribe to every declared signal of interest."""
        for name in self.SIGNALS:
            if bus.declared(name):
                handler = getattr(self, "_on_" + name.replace(".", "_"))
                self._subscriptions.append((bus, bus.subscribe(name, handler)))
        return self

    def detach(self) -> None:
        for bus, subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions = []


class NetworkMonitor(MonitorBase):
    """Per-link traffic counters, stage busy timelines, queue occupancy."""

    SIGNALS = ("net.hop", "net.enqueue", "net.dequeue")

    def __init__(
        self, metrics: MetricsRegistry, bin_cycles: float = DEFAULT_BIN_CYCLES
    ) -> None:
        super().__init__(metrics)
        self.bin_cycles = bin_cycles

    @staticmethod
    def _stage_path(resource_name: str) -> str:
        """``"fwd.s0[3]"`` -> ``"net.fwd.s0"`` (aggregation track)."""
        return "net." + resource_name.split("[", 1)[0]

    def _on_net_hop(self, resource, packet, time: float) -> None:
        m = self.metrics
        base = f"net.{resource.name}"
        m.counter(f"{base}.packets").inc()
        m.counter(f"{base}.words").inc(packet.words)
        duration = resource.fixed_cycles + packet.words / resource.words_per_cycle
        m.timeline(self._stage_path(resource.name), self.bin_cycles).add(
            time - duration, duration
        )

    def _on_net_enqueue(self, resource, packet, time: float) -> None:
        self._occupancy(resource, time)

    def _on_net_dequeue(self, resource, packet, time: float) -> None:
        self._occupancy(resource, time)

    def _occupancy(self, resource, time: float) -> None:
        # raw resource names here: queue signals also come from memory
        # modules ("gm[4]") and cluster banks ("cl0.cache"), not only
        # network links.
        m = self.metrics
        m.time_weighted(f"{resource.name}.queue_words").update(
            resource.queued_words, time
        )
        m.histogram(
            f"{resource.name}.queue_dist",
            0.0,
            float(max(resource.capacity_words, 1)) + 1.0,
            bins=min(64, resource.capacity_words + 2),
        ).record(resource.queued_words)


class MemoryMonitor(MonitorBase):
    """Per-module service counters and service-time histograms."""

    SIGNALS = ("gmem.service",)

    def __init__(
        self,
        metrics: MetricsRegistry,
        bin_cycles: float = DEFAULT_BIN_CYCLES,
        histogram_hi: float = 64.0,
    ) -> None:
        super().__init__(metrics)
        self.bin_cycles = bin_cycles
        self.histogram_hi = histogram_hi

    def _on_gmem_service(self, module: int, packet, time: float, cycles: float) -> None:
        m = self.metrics
        base = f"gmem.module[{module}]"
        m.counter(f"{base}.services").inc()
        m.counter(f"{base}.words").inc(packet.words)
        m.histogram(f"{base}.service_cycles", 0.0, self.histogram_hi).record(cycles)
        m.timeline("gmem.busy", self.bin_cycles).add(time - cycles, cycles)


class SyncMonitor(MonitorBase):
    """Synchronization-processor operation counters."""

    SIGNALS = ("sync.op",)

    def _on_sync_op(
        self, module: int, address: int, time: float, packet, success: bool
    ) -> None:
        self.metrics.counter(f"sync.module[{module}].ops").inc()
        self.metrics.counter("sync.total_ops").inc()
        self.metrics.counter(
            "sync.successes" if success else "sync.failures"
        ).inc()


class PrefetchMonitor(MonitorBase):
    """Machine-wide PFU activity: per-port counters and words in flight."""

    SIGNALS = ("pfu.arm", "pfu.request", "pfu.deliver", "pfu.suspend")

    def __init__(self, metrics: MetricsRegistry) -> None:
        super().__init__(metrics)
        self._in_flight: dict = {}

    def _on_pfu_arm(self, port: int, time: float) -> None:
        self.metrics.counter(f"pfu.port[{port}].streams").inc()

    def _on_pfu_request(self, port: int, word_index: int, time: float) -> None:
        self.metrics.counter(f"pfu.port[{port}].requests").inc()
        self._bump(port, +1, time)

    def _on_pfu_deliver(self, port: int, word_index: int, time: float) -> None:
        self.metrics.counter(f"pfu.port[{port}].deliveries").inc()
        self._bump(port, -1, time)

    def _on_pfu_suspend(self, port: int, time: float) -> None:
        self.metrics.counter(f"pfu.port[{port}].page_suspensions").inc()

    def _bump(self, port: int, delta: int, time: float) -> None:
        count = self._in_flight.get(port, 0) + delta
        self._in_flight[port] = count
        self.metrics.time_weighted(f"pfu.port[{port}].outstanding").update(count, time)


class ClusterMonitor(MonitorBase):
    """Cluster cache / cluster-memory traffic and busy timelines."""

    SIGNALS = ("cluster.access",)

    def __init__(
        self, metrics: MetricsRegistry, bin_cycles: float = DEFAULT_BIN_CYCLES
    ) -> None:
        super().__init__(metrics)
        self.bin_cycles = bin_cycles

    def _on_cluster_access(self, resource, packet, time: float) -> None:
        m = self.metrics
        base = f"cluster.{resource.name}"
        m.counter(f"{base}.packets").inc()
        m.counter(f"{base}.words").inc(packet.words)
        duration = resource.fixed_cycles + packet.words / resource.words_per_cycle
        m.timeline(f"{base}.busy", self.bin_cycles).add(time - duration, duration)


class FaultMonitor(MonitorBase):
    """Fault-injection event counters and stall-cost accounting."""

    SIGNALS = (
        "fault.transient",
        "fault.port_down",
        "fault.ecc",
        "fault.sync_timeout",
        "fault.reroute",
    )

    def _on_fault_transient(
        self, resource, packet, time: float, backoff_cycles: float
    ) -> None:
        m = self.metrics
        m.counter("fault.transients").inc()
        m.counter(f"fault.{resource.name}.transients").inc()
        m.counter("fault.backoff_cycles").inc(backoff_cycles)

    def _on_fault_port_down(self, resource, time: float, until: float) -> None:
        m = self.metrics
        m.counter("fault.port_downs").inc()
        m.counter(f"fault.{resource.name}.port_downs").inc()
        m.counter("fault.down_cycles").inc(until - time)

    def _on_fault_ecc(self, module: int, packet, time: float, stall_cycles: float) -> None:
        m = self.metrics
        m.counter("fault.ecc_retries").inc()
        m.counter(f"fault.gm[{module}].ecc_retries").inc()
        m.counter("fault.ecc_stall_cycles").inc(stall_cycles)

    def _on_fault_sync_timeout(
        self, module: int, address: int, time: float, penalty_cycles: float
    ) -> None:
        m = self.metrics
        m.counter("fault.sync_timeouts").inc()
        m.counter(f"fault.gm[{module}].sync_timeouts").inc()
        m.counter("fault.sync_timeout_cycles").inc(penalty_cycles)

    def _on_fault_reroute(self, network: str, packet, time: float) -> None:
        self.metrics.counter("fault.reroutes").inc()
        self.metrics.counter(f"fault.{network}.reroutes").inc()


#: the monitor set `attach_standard_monitors` instantiates, in order.
STANDARD_MONITORS = (
    NetworkMonitor,
    MemoryMonitor,
    SyncMonitor,
    PrefetchMonitor,
    ClusterMonitor,
    FaultMonitor,
)


def attach_standard_monitors(
    bus, metrics: Optional[MetricsRegistry] = None
) -> List[MonitorBase]:
    """Attach one of each standard monitor to ``bus``; returns them
    (all sharing ``metrics``, created if not supplied).  Detach with
    :func:`detach_monitors`."""
    registry = metrics if metrics is not None else MetricsRegistry()
    return [monitor_cls(registry).attach(bus) for monitor_cls in STANDARD_MONITORS]


def detach_monitors(monitors: List[MonitorBase]) -> None:
    for monitor in monitors:
        monitor.detach()
