"""Streaming span store: bounded-memory observability for unbounded runs.

The buffered :class:`~repro.monitor.spans.SpanCollector` keeps every
stitched span until read time — exact, but O(requests) memory, so a
week-long soak run either hits the ``max_requests`` cap (silent
truncation) or grows without bound.  :class:`StreamingSpanStore`
subscribes to the *same* signals and flat ``net.span`` records, but
folds each request into constant-size state the moment it completes:

* end-to-end latency into per-origin :class:`QuantileSketch` banks,
* the five-phase decomposition into per-phase sketches,
* per-stage queue-wait / service / blocked cycles into exact running
  accumulators plus per-stage sketches,
* the span itself offered to an :class:`ExemplarReservoir` (K slowest
  completes, K most recent incompletes), then **released** —

so resident state is O(sketch buckets + K + in-flight), independent of
how many requests the run drives.  The exact per-span reconciliation
check (phase sums vs end-to-end latency) is preserved as a running
invariant counter: every fold checks it, violations are counted and the
worst drift retained, and :func:`~repro.monitor.spans.validate_spans`
rejects a streaming document with any violation — the same guarantee as
the buffered schema, without keeping the spans.

The hot path is untouched: the ``net.span`` subscriber is still the
event buffer's C-level ``extend``, and stitching is still deferred — the
only addition is a buffer-length check on the (comparatively rare)
birth/deliver handlers that triggers an incremental drain, so the event
buffer is bounded too.

Trade-offs versus the buffered collector (by design):

* quantiles carry the sketch's relative-error bound instead of being
  histogram-exact over a bounded range (means, maxima, counts, and
  per-stage averages stay exact — sketches track exact sum/min/max);
* tail-cohort attribution runs over the exemplar reservoir, i.e. the
  K slowest spans at or above the sketch's tail threshold, not the full
  cohort;
* the spans document stores sketch state + exemplars, not every span.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.monitor.sketch import (
    DEFAULT_RELATIVE_ERROR,
    ExemplarReservoir,
    QuantileSketch,
)
from repro.monitor.spans import (
    PHASES,
    RECONCILE_TOLERANCE,
    RequestSpan,
    STREAM_SPANS_VERSION,
    SpanCollector,
)
from repro.monitor.sampling import SampledSpanCollector


class _StreamingMixin:
    """The fold-and-release behaviour, factored so it layers over either
    the full collector or the sampling collector (sample, then stream).

    Classes mixing this in call :meth:`_stream_init` at the end of their
    ``__init__`` and must precede a :class:`SpanCollector` in the MRO.
    """

    #: drain the event buffer whenever it holds this many flat slots
    #: (checked on birth/deliver — the cheap, per-request signals — so
    #: the buffer stays bounded without touching the per-hop fast path).
    DRAIN_THRESHOLD = 65_536

    #: default exemplar reservoir size (slowest K + most recent K).
    DEFAULT_EXEMPLARS = 64

    def _stream_init(self, relative_error: float, exemplars: int,
                     seed: int) -> None:
        self.relative_error = relative_error
        #: end-to-end latency sketches: ``"all"`` plus one per origin.
        self.latency_sketches: Dict[str, QuantileSketch] = {
            "all": QuantileSketch(relative_error)
        }
        #: one sketch per phase of the five-phase decomposition.
        self.phase_sketches: Dict[str, QuantileSketch] = {
            phase: QuantileSketch(relative_error) for phase in PHASES
        }
        #: per-stage [queue_wait, service, blocked, traversals] — exact.
        self.stage_totals: Dict[str, List[float]] = {}
        #: per-stage sketch of total cycles per traversal.
        self.stage_sketches: Dict[str, QuantileSketch] = {}
        self.exemplars = ExemplarReservoir(k=exemplars, seed=seed)
        #: in-flight spans evicted at the cap (their completion is lost).
        self.evicted = 0
        #: completed spans with no memory timeline (excluded from the
        #: sketches, exactly as LatencyAnalysis excludes them).
        self.completed_without_phases = 0
        #: the running reconciliation invariant.
        self.reconciliation_checked = 0
        self.reconciliation_violations = 0
        self.reconciliation_worst = 0.0

    # -- bounded event buffer ---------------------------------------------

    def _on_req_birth(self, packet, origin: str, time: float) -> None:
        super()._on_req_birth(packet, origin, time)
        if len(self._events) >= self.DRAIN_THRESHOLD:
            self._drain()

    def _on_req_deliver(self, packet, time: float) -> None:
        super()._on_req_deliver(packet, time)
        if len(self._events) >= self.DRAIN_THRESHOLD:
            self._drain()

    # -- bounded tracked set ----------------------------------------------

    def _make_room(self) -> bool:
        """At the in-flight cap, evict the oldest in-flight span into
        the reservoir's incomplete side (tree-buffer semantics: recent
        history wins) and admit the new birth."""
        requests = self._requests
        oldest = next(iter(requests), None)
        if oldest is None:
            return False
        self.exemplars.offer_incomplete(requests.pop(oldest))
        self.evicted += 1
        return True

    # -- fold-and-release --------------------------------------------------

    def _finish(self, span: RequestSpan, time: float) -> None:
        super()._finish(span, time)
        self._fold(span)
        del self._requests[span.request_id]
        traced = getattr(self, "_traced", None)
        if traced is not None:
            traced.discard(span.request_id)

    def _fold(self, span: RequestSpan) -> None:
        phases = span.phases()
        if phases is None:
            self.completed_without_phases += 1
            return
        latency = span.latency
        self.latency_sketches["all"].record(latency)
        origin_sketch = self.latency_sketches.get(span.origin)
        if origin_sketch is None:
            origin_sketch = self.latency_sketches[span.origin] = (
                QuantileSketch(self.relative_error)
            )
        origin_sketch.record(latency)
        for phase, value in phases.items():
            self.phase_sketches[phase].record(value)
        stage_totals = self.stage_totals
        stage_sketches = self.stage_sketches
        for hop in span.hops:
            segments = hop.segments()
            if segments is None:
                continue
            wait, service, blocked = segments
            entry = stage_totals.get(hop.stage)
            if entry is None:
                entry = stage_totals[hop.stage] = [0.0, 0.0, 0.0, 0]
                stage_sketches[hop.stage] = QuantileSketch(self.relative_error)
            entry[0] += wait
            entry[1] += service
            entry[2] += blocked
            entry[3] += 1
            stage_sketches[hop.stage].record(wait + service + blocked)
        entry = stage_totals.get("gmem")
        if entry is None:
            entry = stage_totals["gmem"] = [0.0, 0.0, 0.0, 0]
            stage_sketches["gmem"] = QuantileSketch(self.relative_error)
        mem = (phases["memory_wait"] + phases["memory_service"]
               + phases["memory_block"])
        entry[0] += phases["memory_wait"]
        entry[1] += phases["memory_service"]
        entry[2] += phases["memory_block"]
        entry[3] += 1
        stage_sketches["gmem"].record(mem)
        # the exact reconciliation invariant, checked at fold time
        # instead of held for a post-hoc pass
        drift = abs(sum(phases.values()) - latency)
        self.reconciliation_checked += 1
        if drift > RECONCILE_TOLERANCE:
            self.reconciliation_violations += 1
        if drift > self.reconciliation_worst:
            self.reconciliation_worst = drift
        self.exemplars.offer_complete(span)

    # -- results -----------------------------------------------------------

    def complete_spans(self) -> List[RequestSpan]:
        """The *retained* complete spans — the exemplar reservoir's
        slowest K, not the full population (which was released)."""
        self._drain()
        return self.exemplars.slowest()

    def tracing_footprint(self) -> int:
        """Resident traced-state size in *items* (sketch buckets,
        reservoir entries, in-flight spans, buffered event slots) — the
        quantity the memory gate asserts is flat in request count."""
        buckets = sum(
            s.bucket_count()
            for group in (self.latency_sketches, self.phase_sketches,
                          self.stage_sketches)
            for s in group.values()
        )
        return (buckets + len(self.exemplars) + len(self._requests)
                + len(self._events))

    def _incomplete_exemplars(self) -> List[RequestSpan]:
        """The K most recent incomplete spans: cap-evicted ones held in
        the reservoir merged with the current in-flight tail.  A
        non-mutating snapshot — an in-flight span that completes after
        this call folds normally."""
        self._drain()
        merged = {
            span.request_id: span
            for span in self.exemplars.incompletes()
            if not span.complete
        }
        for span in self._requests.values():
            if not span.complete:
                merged[span.request_id] = span
        ordered = sorted(
            merged.values(), key=lambda s: (s.birth, s.request_id),
            reverse=True,
        )
        return ordered[:self.exemplars.k]

    def spans(self) -> dict:
        """The streaming spans document (version 2; see
        :func:`~repro.monitor.spans.validate_spans`)."""
        self._drain()
        incomplete = [
            span for span in self._requests.values() if not span.complete
        ]
        doc = {
            "version": STREAM_SPANS_VERSION,
            "mode": "streaming",
            "complete": self._completed,
            "incomplete": len(incomplete) + self.evicted,
            "dropped": self._dropped,
            "evicted": self.evicted,
            "completed_without_phases": self.completed_without_phases,
            "relative_error": self.relative_error,
            "sketches": {
                "latency": {
                    name: sketch.to_dict()
                    for name, sketch in sorted(self.latency_sketches.items())
                },
                "phases": {
                    phase: self.phase_sketches[phase].to_dict()
                    for phase in PHASES
                },
                "stages": {
                    stage: self.stage_sketches[stage].to_dict()
                    for stage in sorted(self.stage_sketches)
                },
            },
            "stage_totals": {
                stage: {
                    "queue_wait": entry[0], "service": entry[1],
                    "blocked": entry[2], "traversals": entry[3],
                }
                for stage, entry in sorted(self.stage_totals.items())
            },
            "reconciliation": {
                "checked": self.reconciliation_checked,
                "violations": self.reconciliation_violations,
                "worst": self.reconciliation_worst,
            },
            "exemplars": {
                "slowest": [s.to_dict() for s in self.exemplars.slowest()],
                "incomplete": [
                    s.to_dict() for s in self._incomplete_exemplars()
                ],
            },
        }
        return doc

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.spans(), fh)


class StreamingSpanStore(_StreamingMixin, SpanCollector):
    """Full tracing with streaming folds: every request is traced, none
    is retained past completion.  ``max_requests`` bounds the *in-flight*
    set only (completed spans are released immediately); at the cap the
    oldest in-flight span is evicted into the exemplar reservoir rather
    than dropping the new birth.
    """

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR,
                 exemplars: int = _StreamingMixin.DEFAULT_EXEMPLARS,
                 seed: int = 0,
                 max_requests: int = SpanCollector.DEFAULT_MAX_REQUESTS) -> None:
        super().__init__(max_requests=max_requests)
        self._stream_init(relative_error, exemplars, seed)


class SampledStreamingSpanStore(_StreamingMixin, SampledSpanCollector):
    """Sample, then stream: every ``every``-th request is traced end to
    end (deterministic birth-counter selection, exactly as
    :class:`~repro.monitor.sampling.SampledSpanCollector`) and folded
    into the bounded sketch state on completion."""

    def __init__(self, every: int = 16,
                 relative_error: float = DEFAULT_RELATIVE_ERROR,
                 exemplars: int = _StreamingMixin.DEFAULT_EXEMPLARS,
                 seed: int = 0,
                 max_requests: int = SpanCollector.DEFAULT_MAX_REQUESTS) -> None:
        super().__init__(every=every, max_requests=max_requests)
        self._stream_init(relative_error, exemplars, seed)

    def spans(self) -> dict:
        doc = super().spans()
        doc["sampled_every"] = self.every
        doc["sampled_out"] = self.sampled_out
        return doc


def merge_streaming_docs(docs: Sequence[dict]) -> dict:
    """Merge several streaming spans documents (one per machine) into a
    single valid version-2 document: counters add, sketches merge
    bucket-wise, exemplar lists re-rank and truncate to the largest
    constituent reservoir."""
    docs = list(docs)
    if not docs:
        raise ValueError("no documents to merge")
    if len(docs) == 1:
        return docs[0]
    out = json.loads(json.dumps(docs[0]))  # deep copy, JSON types only
    sketches = {
        group: {
            name: QuantileSketch.from_dict(payload)
            for name, payload in out["sketches"][group].items()
        }
        for group in ("latency", "phases", "stages")
    }
    k = max(len(d["exemplars"]["slowest"]) for d in docs) or 1
    for doc in docs[1:]:
        for field in ("complete", "incomplete", "dropped", "evicted",
                      "completed_without_phases"):
            out[field] += doc[field]
        for group, mine in sketches.items():
            for name, payload in doc["sketches"][group].items():
                sketch = QuantileSketch.from_dict(payload)
                if name in mine:
                    mine[name].merge(sketch)
                else:
                    mine[name] = sketch
        for stage, entry in doc["stage_totals"].items():
            mine = out["stage_totals"].setdefault(
                stage,
                {"queue_wait": 0.0, "service": 0.0, "blocked": 0.0,
                 "traversals": 0},
            )
            for field in ("queue_wait", "service", "blocked", "traversals"):
                mine[field] += entry[field]
        rec = doc["reconciliation"]
        out["reconciliation"]["checked"] += rec["checked"]
        out["reconciliation"]["violations"] += rec["violations"]
        out["reconciliation"]["worst"] = max(
            out["reconciliation"]["worst"], rec["worst"]
        )
        out["exemplars"]["slowest"].extend(doc["exemplars"]["slowest"])
        out["exemplars"]["incomplete"].extend(doc["exemplars"]["incomplete"])
    out["sketches"] = {
        group: {name: s.to_dict() for name, s in sorted(mine.items())}
        for group, mine in sketches.items()
    }
    out["exemplars"]["slowest"].sort(key=lambda s: s["latency"], reverse=True)
    del out["exemplars"]["slowest"][k:]
    out["exemplars"]["incomplete"].sort(key=lambda s: s["birth"], reverse=True)
    del out["exemplars"]["incomplete"][k:]
    return out


# ---------------------------------------------------------------------------
# sketch-backed latency analysis


class StreamingLatencyAnalysis:
    """The :class:`~repro.monitor.spans.LatencyAnalysis` protocol,
    answered from a streaming store's sketch state.

    Drop-in for every renderer in :mod:`repro.monitor.analysis`:
    ``spans`` holds the exemplar completes (waterfalls, slowest-N),
    quantile columns come from the sketches (relative-error-bounded),
    means/shares/stage averages are exact (running sums), and the
    tail cohort is the reservoir filtered at the sketch's tail
    threshold.  Multiple stores (one per machine in a sweep) merge
    losslessly through the sketches' merge operator.
    """

    QUANTILES = (0.5, 0.9, 0.95, 0.99)

    def __init__(self, latency_sketches: Dict[str, QuantileSketch],
                 phase_sketches: Dict[str, QuantileSketch],
                 stage_totals: Dict[str, Sequence[float]],
                 stage_sketches: Dict[str, QuantileSketch],
                 exemplar_spans: Sequence[RequestSpan],
                 incomplete_exemplars: Sequence[RequestSpan] = (),
                 dropped: int = 0, evicted: int = 0,
                 reconciliation_worst: float = 0.0,
                 reconciliation_violations: int = 0) -> None:
        self.latency_sketches = latency_sketches
        self.phase_sketches = phase_sketches
        self.stage_totals = {k: list(v) for k, v in stage_totals.items()}
        self.stage_sketches = stage_sketches
        #: the retained exemplar spans — what ``slowest``/waterfalls see.
        self.spans = [
            s for s in exemplar_spans if s.complete and s.phases() is not None
        ]
        self.incomplete_exemplars = list(incomplete_exemplars)
        self.dropped = dropped
        self.evicted = evicted
        self._reconciliation_worst = reconciliation_worst
        self._reconciliation_violations = reconciliation_violations

    @classmethod
    def from_store(cls, store) -> "StreamingLatencyAnalysis":
        store._drain()
        return cls(
            latency_sketches=store.latency_sketches,
            phase_sketches=store.phase_sketches,
            stage_totals=store.stage_totals,
            stage_sketches=store.stage_sketches,
            exemplar_spans=store.exemplars.slowest(),
            incomplete_exemplars=store._incomplete_exemplars(),
            dropped=store.dropped,
            evicted=store.evicted,
            reconciliation_worst=store.reconciliation_worst,
            reconciliation_violations=store.reconciliation_violations,
        )

    @classmethod
    def from_stores(cls, stores) -> "StreamingLatencyAnalysis":
        """Merge several stores (e.g. one per machine) into one
        analysis: sketches merge bucket-wise, exact accumulators add,
        and the union of reservoirs re-ranks into one."""
        stores = list(stores)
        if not stores:
            raise ValueError("no stores to merge")
        first = cls.from_store(stores[0])
        latency = {k: s.copy() for k, s in first.latency_sketches.items()}
        phases = {k: s.copy() for k, s in first.phase_sketches.items()}
        stages = {k: s.copy() for k, s in first.stage_sketches.items()}
        totals = {k: list(v) for k, v in first.stage_totals.items()}
        exemplar_spans = list(first.spans)
        incompletes = list(first.incomplete_exemplars)
        dropped, evicted = first.dropped, first.evicted
        worst = first._reconciliation_worst
        violations = first._reconciliation_violations
        for store in stores[1:]:
            other = cls.from_store(store)
            for group, theirs in (
                (latency, other.latency_sketches),
                (phases, other.phase_sketches),
                (stages, other.stage_sketches),
            ):
                for name, sketch in theirs.items():
                    if name in group:
                        group[name].merge(sketch)
                    else:
                        group[name] = sketch.copy()
            for stage, entry in other.stage_totals.items():
                mine = totals.setdefault(stage, [0.0, 0.0, 0.0, 0])
                for i in range(4):
                    mine[i] += entry[i]
            exemplar_spans.extend(other.spans)
            incompletes.extend(other.incomplete_exemplars)
            dropped += other.dropped
            evicted += other.evicted
            worst = max(worst, other._reconciliation_worst)
            violations += other._reconciliation_violations
        exemplar_spans.sort(key=lambda s: s.latency, reverse=True)
        return cls(
            latency_sketches=latency, phase_sketches=phases,
            stage_totals=totals, stage_sketches=stages,
            exemplar_spans=exemplar_spans,
            incomplete_exemplars=incompletes,
            dropped=dropped, evicted=evicted,
            reconciliation_worst=worst,
            reconciliation_violations=violations,
        )

    # -- protocol: decomposition tables ------------------------------------

    @property
    def requests(self) -> int:
        """Phased complete requests folded into the sketches."""
        return self.latency_sketches["all"].count

    def _sketch_row(self, sketch: QuantileSketch) -> dict:
        p50, p90, p95, p99 = sketch.quantiles(self.QUANTILES)
        return {
            "count": sketch.count,
            "mean": sketch.mean(),
            "p50": p50, "p90": p90, "p95": p95, "p99": p99,
            "max": sketch.max,
        }

    def end_to_end(self) -> Dict[str, dict]:
        out = {
            origin: self._sketch_row(sketch)
            for origin, sketch in sorted(self.latency_sketches.items())
            if origin != "all" and sketch.count
        }
        if self.latency_sketches["all"].count:
            out["all"] = self._sketch_row(self.latency_sketches["all"])
        return out

    def phase_decomposition(self) -> Dict[str, dict]:
        total = self.latency_sketches["all"].sum or 1.0
        out = {}
        for phase in PHASES:
            sketch = self.phase_sketches[phase]
            if not sketch.count:
                continue
            row = self._sketch_row(sketch)
            row["share"] = sketch.sum / total
            out[phase] = row
        return out

    def stage_decomposition(self) -> Dict[str, dict]:
        total = self.latency_sketches["all"].sum or 1.0
        out = {}
        for stage in sorted(self.stage_totals):
            wait, service, blocked, count = self.stage_totals[stage]
            if not count:
                continue
            out[stage] = {
                "traversals": count,
                "queue_wait": wait / count,
                "service": service / count,
                "blocked": blocked / count,
                "share": (wait + service + blocked) / total,
            }
        return out

    # -- protocol: tail attribution ----------------------------------------

    def tail_cohort(self, q: float = 0.95) -> List[RequestSpan]:
        """Exemplars at or above the sketched ``q`` threshold — the
        retained slice of the true cohort (at most K spans)."""
        if not self.spans:
            return []
        threshold = self.latency_sketches["all"].quantile(q)
        return [s for s in self.spans if s.latency >= threshold]

    def bottleneck_attribution(self, q: float = 0.95) -> List[dict]:
        cohort = self.tail_cohort(q)
        if not cohort:
            return []
        acc: Dict[str, float] = {}
        total = 0.0
        for span in cohort:
            total += span.latency
            for hop in span.hops:
                segments = hop.segments()
                if segments is None:
                    continue
                acc[hop.stage] = acc.get(hop.stage, 0.0) + sum(segments)
            phases = span.phases()
            acc["gmem"] = acc.get("gmem", 0.0) + (
                phases["memory_wait"] + phases["memory_service"]
                + phases["memory_block"]
            )
        total = total or 1.0
        ranked = [
            {"stage": stage, "cycles": cycles, "share": cycles / total}
            for stage, cycles in acc.items()
        ]
        ranked.sort(key=lambda row: row["share"], reverse=True)
        return ranked

    def slowest(self, n: int = 5) -> List[RequestSpan]:
        return self.spans[:n] if n is not None else list(self.spans)

    def quantile_curve(self, qs: Sequence[float]) -> List[float]:
        return self.latency_sketches["all"].quantiles(qs)

    # -- protocol: integrity and summary -----------------------------------

    def reconciliation_error(self) -> float:
        return self._reconciliation_worst

    def summary(self) -> dict:
        if not self.latency_sketches["all"].count:
            return {"requests": 0, "mode": "streaming"}
        attribution = self.bottleneck_attribution()
        return {
            "mode": "streaming",
            "requests": self.requests,
            "dropped": self.dropped,
            "evicted": self.evicted,
            "end_to_end": self.end_to_end(),
            "phases": self.phase_decomposition(),
            "bottleneck": attribution[0] if attribution else None,
            "reconciliation_error": self.reconciliation_error(),
            "sketches": {
                "latency": {
                    name: sketch.to_dict()
                    for name, sketch in sorted(self.latency_sketches.items())
                },
            },
        }
