"""Cedar performance-monitoring hardware.

"The Cedar approach to performance monitoring relies on external
hardware to collect time-stamped event traces and histograms of various
hardware signals.  The event tracers can each collect 1M events and the
histogrammers have 64K 32-bit counters" (Section 2).  Software can also
post events ("software event tracing").

The Table 2 methodology is implemented by :class:`PrefetchProbe`: first
word Latency and Interarrival time are "measured for every prefetch
request by recording when an address from the prefetch unit is issued to
the forward network and when each datum returns to the prefetch buffer".
"""

from repro.monitor.tracer import Event, EventTracer
from repro.monitor.histogram import Histogrammer
from repro.monitor.probes import PrefetchProbe, ProbeSummary
from repro.monitor.signals import (
    SIGNAL_CATALOG,
    Signal,
    SignalBus,
    Subscription,
)

__all__ = [
    "Event",
    "EventTracer",
    "Histogrammer",
    "PrefetchProbe",
    "ProbeSummary",
    "SIGNAL_CATALOG",
    "Signal",
    "SignalBus",
    "Subscription",
]
