"""Cedar performance-monitoring hardware and the observability layer.

"The Cedar approach to performance monitoring relies on external
hardware to collect time-stamped event traces and histograms of various
hardware signals.  The event tracers can each collect 1M events and the
histogrammers have 64K 32-bit counters" (Section 2).  Software can also
post events ("software event tracing").

The Table 2 methodology is implemented by :class:`PrefetchProbe`: first
word Latency and Interarrival time are "measured for every prefetch
request by recording when an address from the prefetch unit is issued to
the forward network and when each datum returns to the prefetch buffer".

On top of the probe hardware sits the machine-wide observability stack:

* :class:`MetricsRegistry` — counters / gauges / time-weighted series
  keyed by component path (``gmem.module[12]``, ``net.fwd.s1[3]``);
* the utilization monitors (:mod:`repro.monitor.monitors`) — broadcast
  bus subscribers deriving busy-fraction timelines, queue-occupancy
  distributions, and service-time histograms;
* :class:`ChromeTracer` — whole-run Chrome/Perfetto trace export
  (``python -m repro trace <experiment> --out trace.json``);
* :class:`RunReport` / :class:`ReportCollector` — structured per-run
  reports (``python -m repro run-all`` / ``python -m repro report``).

Everything subscribes through the zero-cost :class:`SignalBus`; an
unmonitored machine pays one guarded branch per would-be emission and
its cycle counts are bit-identical with or without monitors attached.
"""

from repro.monitor.tracer import (
    ChromeTracer,
    Event,
    EventTracer,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.monitor.histogram import Histogrammer
from repro.monitor.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timeline,
    TimeWeighted,
)
from repro.monitor.monitors import (
    ClusterMonitor,
    MemoryMonitor,
    NetworkMonitor,
    PrefetchMonitor,
    SyncMonitor,
    attach_standard_monitors,
    detach_monitors,
)
from repro.monitor.probes import PrefetchProbe, ProbeSummary
from repro.monitor.report import (
    DEFAULT_REPORT_DIR,
    ReportCollector,
    RunReport,
    aggregate_reports,
    render_report_summary,
)
from repro.monitor.signals import (
    SIGNAL_CATALOG,
    Signal,
    SignalBus,
    Subscription,
)
from repro.monitor.spans import (
    LatencyAnalysis,
    RequestSpan,
    SpanCollector,
    validate_spans,
    validate_spans_file,
)

__all__ = [
    "ChromeTracer",
    "ClusterMonitor",
    "Counter",
    "DEFAULT_REPORT_DIR",
    "Event",
    "EventTracer",
    "Gauge",
    "Histogrammer",
    "LatencyAnalysis",
    "MemoryMonitor",
    "MetricsRegistry",
    "NetworkMonitor",
    "PrefetchMonitor",
    "PrefetchProbe",
    "ProbeSummary",
    "ReportCollector",
    "RequestSpan",
    "RunReport",
    "SIGNAL_CATALOG",
    "Signal",
    "SignalBus",
    "SpanCollector",
    "Subscription",
    "SyncMonitor",
    "Timeline",
    "TimeWeighted",
    "aggregate_reports",
    "attach_standard_monitors",
    "detach_monitors",
    "render_report_summary",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_spans",
    "validate_spans_file",
]
