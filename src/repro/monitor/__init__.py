"""Cedar performance-monitoring hardware and the observability layer.

"The Cedar approach to performance monitoring relies on external
hardware to collect time-stamped event traces and histograms of various
hardware signals.  The event tracers can each collect 1M events and the
histogrammers have 64K 32-bit counters" (Section 2).  Software can also
post events ("software event tracing").

The Table 2 methodology is implemented by :class:`PrefetchProbe`: first
word Latency and Interarrival time are "measured for every prefetch
request by recording when an address from the prefetch unit is issued to
the forward network and when each datum returns to the prefetch buffer".

On top of the probe hardware sits the machine-wide observability stack:

* :class:`MetricsRegistry` — counters / gauges / time-weighted series
  keyed by component path (``gmem.module[12]``, ``net.fwd.s1[3]``);
* the utilization monitors (:mod:`repro.monitor.monitors`) — broadcast
  bus subscribers deriving busy-fraction timelines, queue-occupancy
  distributions, and service-time histograms;
* :class:`ChromeTracer` — whole-run Chrome/Perfetto trace export
  (``python -m repro trace <experiment> --out trace.json``);
* :class:`RunReport` / :class:`ReportCollector` — structured per-run
  reports (``python -m repro run-all`` / ``python -m repro report``);
* :class:`MetricTimeline` / :class:`TimelineRecorder` — time-resolved
  interval metric series riding the engine pulse, with bounded memory
  via power-of-two coalescing (``python -m repro timeline``);
* :mod:`repro.monitor.profiler` — host wall-clock profiling with
  per-subsystem frame attribution (``python -m repro profile``).

Everything subscribes through the zero-cost :class:`SignalBus`; an
unmonitored machine pays one guarded branch per would-be emission and
its cycle counts are bit-identical with or without monitors attached.
"""

# Exports resolve lazily (PEP 562): ``from repro.monitor import X`` works
# as before, but importing a leaf like ``repro.monitor.signals`` no longer
# drags the whole observability stack in — which both keeps
# ``import repro.network`` light and breaks the import cycle
# network.resource -> monitor.signals -> (eager __init__) -> spans ->
# gmemory -> network.resource.
_EXPORTS = {
    "ChromeTracer": "repro.monitor.tracer",
    "Event": "repro.monitor.tracer",
    "EventTracer": "repro.monitor.tracer",
    "validate_chrome_trace": "repro.monitor.tracer",
    "validate_chrome_trace_file": "repro.monitor.tracer",
    "Histogrammer": "repro.monitor.histogram",
    "Counter": "repro.monitor.metrics",
    "Gauge": "repro.monitor.metrics",
    "MetricsRegistry": "repro.monitor.metrics",
    "Timeline": "repro.monitor.metrics",
    "TimeWeighted": "repro.monitor.metrics",
    "ClusterMonitor": "repro.monitor.monitors",
    "MemoryMonitor": "repro.monitor.monitors",
    "NetworkMonitor": "repro.monitor.monitors",
    "PrefetchMonitor": "repro.monitor.monitors",
    "SyncMonitor": "repro.monitor.monitors",
    "attach_standard_monitors": "repro.monitor.monitors",
    "detach_monitors": "repro.monitor.monitors",
    "PrefetchProbe": "repro.monitor.probes",
    "ProbeSummary": "repro.monitor.probes",
    "DEFAULT_REPORT_DIR": "repro.monitor.report",
    "ReportCollector": "repro.monitor.report",
    "RunReport": "repro.monitor.report",
    "aggregate_reports": "repro.monitor.report",
    "render_report_summary": "repro.monitor.report",
    "NULL_SIGNAL": "repro.monitor.signals",
    "SIGNAL_CATALOG": "repro.monitor.signals",
    "Signal": "repro.monitor.signals",
    "SignalBus": "repro.monitor.signals",
    "Subscription": "repro.monitor.signals",
    "LatencyAnalysis": "repro.monitor.spans",
    "RequestSpan": "repro.monitor.spans",
    "SpanCollector": "repro.monitor.spans",
    "validate_spans": "repro.monitor.spans",
    "validate_spans_file": "repro.monitor.spans",
    "SampledSpanCollector": "repro.monitor.sampling",
    "ExemplarReservoir": "repro.monitor.sketch",
    "QuantileSketch": "repro.monitor.sketch",
    "SampledStreamingSpanStore": "repro.monitor.streamstore",
    "StreamingLatencyAnalysis": "repro.monitor.streamstore",
    "StreamingSpanStore": "repro.monitor.streamstore",
    "DEFAULT_TELEMETRY_DIR": "repro.monitor.telemetry",
    "FleetTelemetry": "repro.monitor.telemetry",
    "HeartbeatEmitter": "repro.monitor.telemetry",
    "TELEMETRY_VERSION": "repro.monitor.telemetry",
    "TelemetrySink": "repro.monitor.telemetry",
    "validate_telemetry": "repro.monitor.telemetry",
    "validate_telemetry_file": "repro.monitor.telemetry",
    "FleetProgress": "repro.monitor.progress",
    "TransitionPrinter": "repro.monitor.progress",
    "make_progress": "repro.monitor.progress",
    "check_section_parity": "repro.monitor.compare",
    "compare_reports": "repro.monitor.compare",
    "compare_streaming_docs": "repro.monitor.compare",
    "load_reports": "repro.monitor.compare",
    "render_compare": "repro.monitor.compare",
    "DEFAULT_INTERVAL_CYCLES": "repro.monitor.timeline",
    "MAX_INTERVALS": "repro.monitor.timeline",
    "MetricTimeline": "repro.monitor.timeline",
    "SeriesProbe": "repro.monitor.timeline",
    "TIMELINE_VERSION": "repro.monitor.timeline",
    "TimelineRecorder": "repro.monitor.timeline",
    "machine_probes": "repro.monitor.timeline",
    "validate_timeline": "repro.monitor.timeline",
    "validate_timeline_file": "repro.monitor.timeline",
    "HostProfile": "repro.monitor.profiler",
    "profile_call": "repro.monitor.profiler",
    "render_profile": "repro.monitor.profiler",
}


def __getattr__(name):
    from importlib import import_module

    target = _EXPORTS.get(name)
    if target is None:
        # plain submodule access, e.g. ``repro.monitor.signals``
        try:
            return import_module(f"repro.monitor.{name}")
        except ImportError:
            raise AttributeError(
                f"module 'repro.monitor' has no attribute {name!r}"
            ) from None
    value = getattr(import_module(target), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "DEFAULT_INTERVAL_CYCLES",
    "DEFAULT_TELEMETRY_DIR",
    "HostProfile",
    "MAX_INTERVALS",
    "MetricTimeline",
    "SeriesProbe",
    "TIMELINE_VERSION",
    "TimelineRecorder",
    "machine_probes",
    "profile_call",
    "render_profile",
    "validate_timeline",
    "validate_timeline_file",
    "FleetProgress",
    "FleetTelemetry",
    "HeartbeatEmitter",
    "NULL_SIGNAL",
    "TELEMETRY_VERSION",
    "TelemetrySink",
    "TransitionPrinter",
    "check_section_parity",
    "compare_reports",
    "compare_streaming_docs",
    "load_reports",
    "make_progress",
    "render_compare",
    "validate_telemetry",
    "validate_telemetry_file",
    "SampledSpanCollector",
    "SampledStreamingSpanStore",
    "StreamingLatencyAnalysis",
    "StreamingSpanStore",
    "ExemplarReservoir",
    "QuantileSketch",
    "ChromeTracer",
    "ClusterMonitor",
    "Counter",
    "DEFAULT_REPORT_DIR",
    "Event",
    "EventTracer",
    "Gauge",
    "Histogrammer",
    "LatencyAnalysis",
    "MemoryMonitor",
    "MetricsRegistry",
    "NetworkMonitor",
    "PrefetchMonitor",
    "PrefetchProbe",
    "ProbeSummary",
    "ReportCollector",
    "RequestSpan",
    "RunReport",
    "SIGNAL_CATALOG",
    "Signal",
    "SignalBus",
    "SpanCollector",
    "Subscription",
    "SyncMonitor",
    "Timeline",
    "TimeWeighted",
    "aggregate_reports",
    "attach_standard_monitors",
    "detach_monitors",
    "render_report_summary",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_spans",
    "validate_spans_file",
]
