"""Host-time hotspot attribution: where the *wall-clock* goes.

Everything else in the monitor package measures simulated time; this
module measures the simulator itself.  The sim trajectory in
``BENCH_sim.json`` shows the engine plateauing around a few hundred
thousand events per second, and the ROADMAP's open item — a batched
event loop pushing toward 1M events/sec — needs to know *which frames*
hold the plateau before anything is worth rewriting.

:func:`profile_call` runs a callable under :mod:`cProfile` and folds
the flat ``pstats`` rows two ways:

* **per-subsystem attribution** — each frame's file path is matched to
  a Cedar subsystem (``engine``, ``network``, ``gmemory``, ``cluster``,
  ``prefetch``, ``monitor``, ``kernels``, ``faults``, ``other``) and
  self-time is summed per bucket, so the report answers "is the time in
  the event loop, the fabric model, or the instrumentation?";
* **top frames** — the hottest individual functions by self-time, each
  tagged with its subsystem.

The result is a plain JSON-serializable document (:class:`HostProfile`
``.to_dict()``), rendered for humans by :func:`render_profile` and
exposed as ``python -m repro profile EXP``.  cProfile inflates absolute
wall-clock (tracing overhead is real), so the document reports
*shares*, not absolute events/sec — the shape survives the overhead
even though the magnitudes don't.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

#: profile document format version.
PROFILE_VERSION = 1

#: subsystem attribution by file-path fragment, first match wins.
#: Ordered most-specific first: ``monitor`` before ``core`` so an
#: instrumented run shows its observability cost as ``monitor``, not as
#: the subsystem that happened to call it.
SUBSYSTEM_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("monitor", "repro/monitor"),
    ("engine", "repro/core/engine"),
    ("core", "repro/core"),
    ("network", "repro/network"),
    ("gmemory", "repro/gmemory"),
    ("cluster", "repro/cluster"),
    ("prefetch", "repro/prefetch"),
    ("kernels", "repro/kernels"),
    ("faults", "repro/faults"),
    ("experiments", "repro/experiments"),
)


def frame_subsystem(filename: str) -> str:
    """Attribute one frame's file path to a subsystem bucket.

    Paths outside the package (stdlib heapq, json, the harness itself)
    fall into ``other``; built-ins (``~``) land there too.
    """
    normalized = filename.replace("\\", "/")
    for subsystem, fragment in SUBSYSTEM_PATTERNS:
        if fragment in normalized:
            return subsystem
    return "other"


@dataclass(frozen=True)
class HostProfile:
    """One profiled run: subsystem shares plus the hottest frames."""

    experiment: str
    wall_seconds: float
    total_calls: int
    #: subsystem -> cumulative self-time seconds.
    subsystems: Dict[str, float]
    #: hottest frames by self-time: dicts with function / file / line /
    #: subsystem / self_seconds / calls.
    frames: List[dict] = field(default_factory=list)

    def subsystem_shares(self) -> Dict[str, float]:
        """Subsystem -> fraction of attributed self-time (sums to 1.0
        when any time was recorded)."""
        total = sum(self.subsystems.values())
        if total <= 0:
            return {name: 0.0 for name in self.subsystems}
        return {name: t / total for name, t in self.subsystems.items()}

    def to_dict(self) -> dict:
        return {
            "version": PROFILE_VERSION,
            "experiment": self.experiment,
            "wall_seconds": round(self.wall_seconds, 6),
            "total_calls": self.total_calls,
            "subsystems": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.subsystems.items())
            },
            "subsystem_shares": {
                name: round(share, 4)
                for name, share in sorted(self.subsystem_shares().items())
            },
            "frames": self.frames,
        }


def profile_call(
    fn: Callable[[], object],
    experiment: str = "",
    top: int = 15,
) -> Tuple[HostProfile, object]:
    """Run ``fn()`` under cProfile; returns ``(profile, fn's result)``.

    Self-time (``tottime``) is what gets attributed — cumulative time
    would double-count every caller/callee pair and pin everything on
    ``run_programs``.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stats = pstats.Stats(profiler)
    subsystems: Dict[str, float] = {}
    rows = []
    total_calls = 0
    for (filename, line, function), (
        calls, _primitive, tottime, _cumtime, _callers,
    ) in stats.stats.items():
        subsystem = frame_subsystem(filename)
        subsystems[subsystem] = subsystems.get(subsystem, 0.0) + tottime
        total_calls += calls
        rows.append({
            "function": function,
            "file": filename,
            "line": line,
            "subsystem": subsystem,
            "self_seconds": round(tottime, 6),
            "calls": calls,
        })
    rows.sort(key=lambda r: -r["self_seconds"])
    return HostProfile(
        experiment=experiment,
        wall_seconds=stats.total_tt,
        total_calls=total_calls,
        subsystems=subsystems,
        frames=rows[:top],
    ), result


def _shorten(path: str, limit: int = 44) -> str:
    normalized = path.replace("\\", "/")
    marker = "repro/"
    idx = normalized.rfind(marker)
    short = normalized[idx:] if idx >= 0 else normalized.rsplit("/", 1)[-1]
    return short if len(short) <= limit else "…" + short[-(limit - 1):]


def render_comparison(scalar: HostProfile, batched: HostProfile) -> str:
    """Side-by-side subsystem shares for the scalar vs batched engine
    drains, with the share delta in percentage points.

    This is the map of where the remaining scalar time lives: a
    subsystem whose share *grows* under the batched drain is one the
    batch dispatch does not reach (callback-body work — component state
    mutation, packet handling), while a shrinking share marks overhead
    the batching removed (per-event frames, heap traffic).  Wall times
    are cProfile-inflated; read shares and the delta column, not
    magnitudes."""
    names = sorted(
        set(scalar.subsystems) | set(batched.subsystems),
        key=lambda n: -(
            scalar.subsystem_shares().get(n, 0.0)
            + batched.subsystem_shares().get(n, 0.0)
        ),
    )
    s_shares = scalar.subsystem_shares()
    b_shares = batched.subsystem_shares()
    lines = [
        f"batched-vs-scalar profile: {scalar.experiment or '(anonymous)'}",
        f"  scalar   {scalar.wall_seconds:.3f}s under cProfile, "
        f"{scalar.total_calls:,} calls",
        f"  batched  {batched.wall_seconds:.3f}s under cProfile, "
        f"{batched.total_calls:,} calls "
        f"({scalar.total_calls - batched.total_calls:+,} frames removed)",
        "  (tracing inflates absolute time; read shares, not magnitudes)",
        "",
        f"  {'subsystem':<12} {'scalar':>8} {'batched':>8} {'delta':>8}",
    ]
    for name in names:
        s = s_shares.get(name, 0.0)
        b = b_shares.get(name, 0.0)
        lines.append(
            f"  {name:<12} {s * 100:7.1f}% {b * 100:7.1f}% "
            f"{(b - s) * 100:+7.1f}pp"
        )
    return "\n".join(lines)


def render_profile(profile: HostProfile) -> str:
    """Human-readable report: subsystem share bars, then top frames."""
    lines = [
        f"host profile: {profile.experiment or '(anonymous)'}",
        f"  wall time  {profile.wall_seconds:.3f}s under cProfile "
        "(tracing inflates absolute time; read shares, not magnitudes)",
        f"  calls      {profile.total_calls:,}",
        "",
        "subsystem self-time shares",
    ]
    shares = profile.subsystem_shares()
    width = 32
    for name, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1 if share > 0 else 0, round(share * width))
        lines.append(
            f"  {name:<12} {share * 100:5.1f}%  "
            f"{profile.subsystems[name]:7.3f}s  {bar}"
        )
    lines.append("")
    lines.append("hottest frames (self time)")
    for row in profile.frames:
        location = f"{_shorten(row['file'])}:{row['line']}"
        lines.append(
            f"  {row['self_seconds']:7.3f}s  {row['subsystem']:<11} "
            f"{row['function']:<28} {location}  x{row['calls']:,}"
        )
    return "\n".join(lines)
