"""Fleet telemetry: runner lifecycle events and worker heartbeats.

The per-run observability stack (metrics, spans, sketches) answers
"what did one simulation do"; this module answers "what is the runner
*fleet* doing right now".  Two primitives:

* **Lifecycle events** — a versioned structured schema
  (``TELEMETRY_VERSION``) describing every transition an
  experiment makes through the runner: ``run_queued``,
  ``worker_started``, ``heartbeat``, ``cache_hit``, ``retry``,
  ``failed``, ``completed``.  Every event is stamped with the
  experiment name, the :meth:`~repro.core.config.CedarConfig.stable_hash`
  of the machine configuration, the wall-clock time, and the attempt
  number.  :class:`TelemetrySink` appends them as JSONL under
  ``.repro-telemetry/`` and :func:`validate_telemetry` checks a stream
  against the schema (the sibling of ``validate_spans`` /
  ``validate_chrome_trace``).

* **Worker heartbeats** — :class:`HeartbeatEmitter` runs inside the
  isolated worker process.  It observes every machine the experiment
  builds (the same context-observer hook the report collector uses)
  and arms an engine *pulse* — a read-only hook riding the Watchdog's
  check cadence (:meth:`~repro.core.engine.Engine.attach_pulse`), so
  the unmonitored hot path stays untouched.  At most every
  ``min_interval_s`` wall seconds the pulse ships engine self-metrics
  (events processed, sim cycles, events/sec, peak RSS) back over the
  worker's existing result pipe.  The parent uses heartbeat *silence*
  — not just wall clock — to tell a hung worker from a slow one.

Everything here is clock-injectable (``clock=``) so tests drive the
plumbing deterministically.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

#: lifecycle-event schema version; bump on breaking shape changes.
#: v2: ``cache_hit`` events carry the result store's shard and
#: checksum-verification outcome, so differential runs can confirm
#: both sides served verified entries.
TELEMETRY_VERSION = 2

#: default JSONL sink location (repo-/cwd-relative).
DEFAULT_TELEMETRY_DIR = ".repro-telemetry"

#: default worker heartbeat floor: at most one beat per this many wall
#: seconds, however often the engine pulse visits.
DEFAULT_HEARTBEAT_S = 0.25

#: the lifecycle vocabulary, in the order a healthy run traverses it.
EVENT_TYPES = (
    "run_queued",
    "worker_started",
    "heartbeat",
    "cache_hit",
    "retry",
    "failed",
    "completed",
)

#: fields every event must carry.
REQUIRED_FIELDS = ("v", "type", "experiment", "config_hash", "t_wall", "attempt")

#: per-type payload fields (beyond the required six).
TYPE_FIELDS: Dict[str, tuple] = {
    "heartbeat": ("events_processed", "sim_cycles", "events_per_sec"),
    "cache_hit": ("key", "shard", "verified"),
    "retry": ("error", "next_attempt", "backoff_s"),
    "failed": ("error",),
    "completed": ("elapsed_s", "cached"),
}


def make_event(
    type_: str,
    experiment: str,
    config_hash: str,
    t_wall: float,
    attempt: int = 1,
    **extra,
) -> Dict[str, object]:
    """One schema-valid lifecycle event as a JSON-ready dict."""
    if type_ not in EVENT_TYPES:
        raise ValueError(f"unknown telemetry event type {type_!r}")
    event: Dict[str, object] = {
        "v": TELEMETRY_VERSION,
        "type": type_,
        "experiment": experiment,
        "config_hash": config_hash,
        "t_wall": t_wall,
        "attempt": attempt,
    }
    event.update(extra)
    return event


# ---------------------------------------------------------------------------
# validation (the CI artifact check)


def validate_telemetry(events: Iterable[Dict[str, object]]) -> Dict[str, int]:
    """Check an event stream against the schema essentials.

    Returns per-type counts; raises ``ValueError`` on malformation —
    unknown versions, unknown types, missing required or per-type
    fields, or non-numeric stamps.
    """
    counts: Dict[str, int] = {}
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object: {event!r}")
        if event.get("v") != TELEMETRY_VERSION:
            raise ValueError(
                f"{where}: unsupported telemetry version {event.get('v')!r}"
            )
        for field in REQUIRED_FIELDS:
            if field not in event:
                raise ValueError(f"{where}: missing {field!r}")
        type_ = event["type"]
        if type_ not in EVENT_TYPES:
            raise ValueError(f"{where}: unknown event type {type_!r}")
        if not isinstance(event["t_wall"], (int, float)):
            raise ValueError(f"{where}: t_wall is not a number")
        attempt = event["attempt"]
        if not isinstance(attempt, int) or attempt < 0:
            raise ValueError(f"{where}: attempt must be a non-negative int")
        for field in TYPE_FIELDS.get(type_, ()):
            if field not in event:
                raise ValueError(f"{where}: {type_} event missing {field!r}")
        counts[type_] = counts.get(type_, 0) + 1
    return counts


def validate_telemetry_file(path) -> Dict[str, int]:
    """Load a JSONL sink file and validate it; see
    :func:`validate_telemetry`."""
    events = []
    with open(path) as fh:
        for n, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{n}: unparseable JSONL: {exc}")
    return validate_telemetry(events)


# ---------------------------------------------------------------------------
# the append-only sink


class TelemetrySink:
    """Append-only JSONL lifecycle sink (one event per line, flushed
    per write, so a killed run still leaves every emitted event on
    disk).  Use as a context manager or call :meth:`close`."""

    def __init__(self, path, clock: Callable[[], float] = time.time) -> None:
        self.path = Path(path)
        self.clock = clock
        self.emitted = 0
        self._fh = None

    def emit(self, event: Dict[str, object]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._fh.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FleetTelemetry:
    """One run-all's telemetry session: stamps events with the config
    hash and wall clock, fans them out to the JSONL sink and any
    in-process listener (the live progress renderer).

    ``heartbeat_s`` is the worker-side beat floor the runner passes
    into each worker; the parent also uses it as the granularity of
    stall accounting.
    """

    def __init__(
        self,
        sink: Optional[TelemetrySink] = None,
        config=None,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if config is None:
            from repro.core.config import DEFAULT_CONFIG

            config = DEFAULT_CONFIG
        self.config_hash = config.stable_hash()
        self.sink = sink
        self.on_event = on_event
        self.heartbeat_s = heartbeat_s
        self.clock = clock
        self.events = 0

    def event(
        self, type_: str, experiment: str, attempt: int = 1, **extra
    ) -> Dict[str, object]:
        event = make_event(
            type_,
            experiment,
            self.config_hash,
            round(self.clock(), 6),
            attempt,
            **extra,
        )
        if self.sink is not None:
            self.sink.emit(event)
        if self.on_event is not None:
            self.on_event(event)
        self.events += 1
        return event

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


# ---------------------------------------------------------------------------
# worker heartbeats


def peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB, or None when the
    platform has no ``resource`` module (Windows)."""
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    return int(peak // 1024) if sys.platform == "darwin" else int(peak)


class HeartbeatEmitter:
    """Worker-side heartbeat source.

    Installed (inside the worker process) as a context observer: every
    machine the experiment builds gets an engine pulse
    (:meth:`~repro.core.engine.Engine.attach_pulse`) that rides the
    watchdog check cadence.  The pulse is wall-clock rate-limited to
    ``min_interval_s`` and ships cumulative engine self-metrics through
    ``send`` — in the runner, the worker's result pipe.

    A beat therefore only flows while an engine is actually processing
    events: a worker wedged inside one event (or hung before building a
    machine) goes silent, which is exactly the signal the parent's
    stall budget keys on.
    """

    def __init__(
        self,
        send: Callable[[object], None],
        min_interval_s: float = DEFAULT_HEARTBEAT_S,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.send = send
        self.min_interval_s = min_interval_s
        self.clock = clock
        self.beats = 0
        self._engines: List[object] = []
        self._observer = None
        self._last = float("-inf")

    # -- installation ------------------------------------------------------

    def install(self) -> "HeartbeatEmitter":
        from repro.core.context import add_context_observer

        if self._observer is None:
            self._observer = add_context_observer(self._observe)
        return self

    def uninstall(self) -> None:
        from repro.core.context import remove_context_observer

        if self._observer is not None:
            remove_context_observer(self._observer)
            self._observer = None
        for engine in self._engines:
            engine.detach_pulse()

    def __enter__(self) -> "HeartbeatEmitter":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def _observe(self, ctx) -> None:
        self._engines.append(ctx.engine)
        ctx.engine.attach_pulse(self._pulse)

    # -- beating -----------------------------------------------------------

    def _pulse(self, engine) -> None:
        now = self.clock()
        if now - self._last >= self.min_interval_s:
            self._last = now
            self.beat()

    def payload(self) -> Dict[str, object]:
        """Cumulative engine self-metrics across every machine built so
        far (monotone in events processed, so the parent can read
        forward progress straight off consecutive beats)."""
        events = sum(e.events_processed for e in self._engines)
        wall = sum(e.run_wall_s for e in self._engines)
        current = self._engines[-1] if self._engines else None
        return {
            "events_processed": events,
            "sim_cycles": current.now if current is not None else 0.0,
            "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            "peak_rss_kb": peak_rss_kb(),
            "machines": len(self._engines),
        }

    def beat(self) -> None:
        """Ship one heartbeat now (rate limit already applied by the
        pulse path; callers may also beat explicitly, e.g. the worker's
        hello beat before any machine exists)."""
        try:
            self.send(("hb", self.payload()))
            self.beats += 1
        except Exception:
            # a broken pipe must never kill the simulation mid-run; the
            # parent notices the silence instead.
            pass
