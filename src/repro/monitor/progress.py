"""Live fleet progress for ``run-all``: a TTY table, or plain lines.

Both renderers consume the telemetry lifecycle-event stream
(:mod:`repro.monitor.telemetry`) through a single ``handle(event)``
method, so they plug straight into
:class:`~repro.monitor.telemetry.FleetTelemetry` as its ``on_event``
listener:

* :class:`FleetProgress` — when stderr is a real terminal: one row per
  experiment (state, elapsed, events/sec, events, retries, cache
  status), repainted in place with ANSI cursor movement on every
  event.  Heartbeats animate the running rows.
* :class:`TransitionPrinter` — the CI-safe fallback when stdout/stderr
  is a pipe: one plain line per state *transition* (heartbeats are
  folded into the next transition line rather than printed, so logs
  stay readable).

:func:`make_progress` picks the renderer from ``out.isatty()``.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Optional, TextIO

#: states a row can be in, in display order of interest.
_STATES = ("queued", "running", "retrying", "cached", "done", "FAILED")


class _Row:
    __slots__ = (
        "name", "state", "queued_at", "started_at", "finished_at",
        "attempts", "events", "events_per_sec", "sim_cycles", "beats",
        "elapsed_s", "error",
    )

    def __init__(self, name: str, now: float) -> None:
        self.name = name
        self.state = "queued"
        self.queued_at = now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attempts = 0
        self.events = 0
        self.events_per_sec = 0.0
        self.sim_cycles = 0.0
        self.beats = 0
        self.elapsed_s: Optional[float] = None
        self.error: Optional[str] = None

    def elapsed(self, now: float) -> float:
        if self.elapsed_s is not None:
            return self.elapsed_s
        anchor = self.started_at if self.started_at is not None else self.queued_at
        end = self.finished_at if self.finished_at is not None else now
        return max(0.0, end - anchor)


class TransitionPrinter:
    """Plain line-per-transition progress (the no-TTY / CI fallback).

    Heartbeats update row state silently; every *transition* (queued,
    started, retry, failed, completed, cache hit) prints one line with
    the latest known progress folded in.
    """

    def __init__(
        self,
        out: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.out = out if out is not None else sys.stderr
        self.clock = clock
        self.rows: Dict[str, _Row] = {}
        self._t0 = clock()

    # -- event intake ------------------------------------------------------

    def _row(self, name: str) -> _Row:
        row = self.rows.get(name)
        if row is None:
            row = self.rows[name] = _Row(name, self.clock())
        return row

    def _apply(self, event: Dict[str, object]) -> bool:
        """Fold one lifecycle event into the row model; returns True
        when it was a state *transition* (vs a heartbeat update)."""
        type_ = event.get("type")
        row = self._row(str(event.get("experiment", "?")))
        now = self.clock()
        if type_ == "run_queued":
            row.state = "queued"
        elif type_ == "worker_started":
            row.state = "running"
            row.started_at = now
            row.attempts = int(event.get("attempt", 1))
        elif type_ == "heartbeat":
            row.beats += 1
            row.events = int(event.get("events_processed", row.events))
            row.events_per_sec = float(
                event.get("events_per_sec", row.events_per_sec)
            )
            row.sim_cycles = float(event.get("sim_cycles", row.sim_cycles))
            return False
        elif type_ == "retry":
            row.state = "retrying"
            row.error = str(event.get("error", ""))
        elif type_ == "cache_hit":
            row.state = "cached"
            row.finished_at = now
            row.elapsed_s = 0.0
        elif type_ == "failed":
            row.state = "FAILED"
            row.finished_at = now
            row.error = str(event.get("error", ""))
        elif type_ == "completed":
            row.state = "cached" if event.get("cached") else "done"
            row.finished_at = now
            elapsed = event.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                row.elapsed_s = float(elapsed)
        return True

    def handle(self, event: Dict[str, object]) -> None:
        if self._apply(event):
            self._print_transition(event)

    __call__ = handle

    # -- rendering ---------------------------------------------------------

    def _print_transition(self, event: Dict[str, object]) -> None:
        row = self.rows[str(event.get("experiment", "?"))]
        t = self.clock() - self._t0
        note = ""
        if row.state in ("running", "retrying", "FAILED") and row.events:
            note = f" [{row.events} events, {row.events_per_sec:g} ev/s]"
        if row.state == "retrying":
            note += f" (attempt {row.attempts} failed: {row.error})"
        elif row.state == "FAILED":
            note += f": {row.error}"
        elif row.state == "done" and row.elapsed_s is not None:
            note += f" in {row.elapsed_s:.1f}s"
        print(
            f"[fleet] {t:7.2f}s {row.name:<18} {row.state}{note}",
            file=self.out,
        )

    def close(self) -> None:
        """Final summary line."""
        done = sum(1 for r in self.rows.values() if r.state in ("done", "cached"))
        failed = sum(1 for r in self.rows.values() if r.state == "FAILED")
        print(
            f"[fleet] {len(self.rows)} experiments: "
            f"{done} ok, {failed} failed",
            file=self.out,
        )


class FleetProgress(TransitionPrinter):
    """Live TTY renderer: one row per experiment, repainted in place.

    Inherits the row model from :class:`TransitionPrinter`; every
    event (heartbeats included) triggers a repaint capped at
    ``max_fps`` so a fast beat stream cannot saturate the terminal.
    """

    #: repaint rate cap (frames per wall second).
    max_fps = 20.0

    def __init__(
        self,
        out: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        super().__init__(out=out, clock=clock)
        self._painted = 0
        self._last_paint = float("-inf")

    def handle(self, event: Dict[str, object]) -> None:
        transition = self._apply(event)
        now = self.clock()
        if transition or now - self._last_paint >= 1.0 / self.max_fps:
            self._last_paint = now
            self._paint()

    __call__ = handle

    def _format_row(self, row: _Row, now: float) -> str:
        state = row.state
        elapsed = row.elapsed(now)
        cells = (
            f"{row.name:<18.18}"
            f" {state:<9}"
            f" {elapsed:7.1f}s"
            f" {row.events:>12,}"
            f" {row.events_per_sec:>11,.0f}/s"
            f" {max(0, row.attempts - 1):>3} retr"
        )
        if state == "FAILED" and row.error:
            cells += f"  {row.error}"
        return cells[:118]

    def _paint(self) -> None:
        out = self.out
        now = self.clock()
        lines = [
            " experiment         state      elapsed        events        ev/s  retries",
        ]
        lines.extend(
            self._format_row(row, now) for row in self.rows.values()
        )
        if self._painted:
            # move back to the top of the previously painted block
            out.write(f"\x1b[{self._painted}F")
        for line in lines:
            out.write("\x1b[2K" + line + "\n")
        self._painted = len(lines)
        out.flush()

    def close(self) -> None:
        """Leave the final table on screen."""
        if self.rows:
            self._paint()


def make_progress(
    out: Optional[TextIO] = None,
    force_tty: Optional[bool] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> TransitionPrinter:
    """The right renderer for ``out``: :class:`FleetProgress` when it
    is a terminal, :class:`TransitionPrinter` otherwise.  ``force_tty``
    overrides detection (tests; ``--no-progress`` handles the other
    direction at the CLI)."""
    out = out if out is not None else sys.stderr
    if force_tty is None:
        try:
            force_tty = bool(out.isatty())
        except (AttributeError, ValueError):
            force_tty = False
    cls = FleetProgress if force_tty else TransitionPrinter
    return cls(out=out, clock=clock)
