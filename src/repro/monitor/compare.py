"""Cross-run differential reports: ``python -m repro compare A B``.

Loads two runs' worth of structured results — per-experiment
:class:`~repro.monitor.report.RunReport` JSONs (a single file or a
whole ``.repro-reports/`` directory) or, with ``--stream``, merged
streaming spans documents built on the mergeable
:class:`~repro.monitor.sketch.QuantileSketch` — and renders
per-metric and per-quantile deltas.

Only *deterministic simulated* quantities are diffed (simulated
cycles, engine event counts, traced-request counts, latency means and
quantiles, per-interval timeline values): two identical-seed runs
produce exactly zero deltas, so
the comparison is a seedable CI gate, while wall-clock fields
(elapsed seconds, realized events/sec) are reported nowhere — they
differ run to run by construction.

Significance uses the paper's own stability metric
(:func:`repro.metrics.stability.stability`): a pair ``(a, b)`` is
**significant** when its stability ``min/max`` falls below the
threshold (default 0.98, i.e. a >2% swing).  The CLI exits non-zero
when any significant delta survives — the primitive the sweep engine
and a CI perf gate both want.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.metrics.stability import stability

#: a pair whose min/max stability falls below this is significant
#: (0.98 ~ a swing of more than 2%).
DEFAULT_STABILITY_THRESHOLD = 0.98

#: the quantile columns diffed from latency summaries and sketches.
QUANTILE_KEYS = ("p50", "p90", "p95", "p99")


def pair_stability(a: float, b: float) -> float:
    """St of the two-member ensemble {a, b}: ``min/max`` in (0, 1].

    Degenerate pairs are handled the way a differential report needs:
    exactly equal values (including 0 == 0) are perfectly stable
    (1.0); a zero against a non-zero is maximally unstable (0.0).
    """
    if a == b:
        return 1.0
    if a <= 0.0 or b <= 0.0:
        return 0.0
    return stability([a, b])


@dataclass(frozen=True)
class Delta:
    """One metric's A-vs-B comparison."""

    experiment: str
    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def stability(self) -> float:
        return pair_stability(self.a, self.b)

    def significant(self, threshold: float = DEFAULT_STABILITY_THRESHOLD) -> bool:
        return self.stability < threshold


@dataclass
class CompareResult:
    """All deltas between two runs, plus coverage differences."""

    deltas: List[Delta] = field(default_factory=list)
    #: experiments present in only one side (coverage differences are
    #: always significant: the runs did different work).
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)
    threshold: float = DEFAULT_STABILITY_THRESHOLD

    @property
    def significant(self) -> List[Delta]:
        return [d for d in self.deltas if d.significant(self.threshold)]

    @property
    def ok(self) -> bool:
        """True when the runs agree: no significant deltas and the same
        experiment coverage."""
        return not self.significant and not self.only_a and not self.only_b


# ---------------------------------------------------------------------------
# loading


def load_reports(path) -> Dict[str, Dict]:
    """Run reports from ``path``: a directory of per-experiment JSONs
    (the ``.repro-reports/`` layout) or a single report file.  Keyed by
    experiment name; raises ``ValueError`` when nothing loads."""
    p = Path(path)
    reports: Dict[str, Dict] = {}
    if p.is_dir():
        for entry in sorted(p.glob("*.json")):
            try:
                doc = json.loads(entry.read_text())
            except ValueError as exc:
                raise ValueError(f"unreadable report {entry}: {exc}")
            reports[str(doc.get("experiment", entry.stem))] = doc
    elif p.is_file():
        doc = json.loads(p.read_text())
        reports[str(doc.get("experiment", p.stem))] = doc
    else:
        raise ValueError(
            f"no reports at {path}; run `python -m repro run-all` first"
        )
    if not reports:
        raise ValueError(
            f"no reports under {path}/; run `python -m repro run-all` first"
        )
    return reports


# ---------------------------------------------------------------------------
# report comparison


def _timeline_rows(machine: Dict, prefix: str) -> Dict[str, float]:
    """The windowed timeline metrics of one machine record: one row per
    series per interval (``m0.timeline[net.fwd.s1.busy].i004``), so a
    regression is localized to *which interval* moved, not just that
    the run's totals drifted.  Interval geometry rows catch the
    structural drift case (different widths stop the per-interval rows
    from meaning the same window)."""
    rows: Dict[str, float] = {}
    timeline = machine.get("timeline")
    if not isinstance(timeline, dict):
        return rows
    rows[f"{prefix}timeline.intervals"] = float(timeline.get("intervals", 0))
    rows[f"{prefix}timeline.interval_cycles"] = float(
        timeline.get("interval_cycles", 0.0)
    )
    series = timeline.get("series")
    if not isinstance(series, dict):
        return rows
    for name, entry in sorted(series.items()):
        values = entry.get("values") if isinstance(entry, dict) else None
        if not isinstance(values, list):
            continue
        base = f"{prefix}timeline[{name}].i"
        for k, value in enumerate(values):
            if isinstance(value, (int, float)):
                rows[f"{base}{k:03d}"] = float(value)
    return rows


def _latency_rows(machine: Dict, prefix: str) -> Dict[str, float]:
    """The deterministic latency metrics of one machine record."""
    rows: Dict[str, float] = {}
    latency = machine.get("latency")
    if not isinstance(latency, dict) or not latency.get("requests"):
        return rows
    rows[f"{prefix}traced_requests"] = float(latency["requests"])
    for origin, table in sorted(latency.get("end_to_end", {}).items()):
        if not isinstance(table, dict):
            continue
        base = f"{prefix}latency[{origin}]."
        for key in ("count", "mean", "max") + QUANTILE_KEYS:
            value = table.get(key)
            if isinstance(value, (int, float)):
                rows[base + key] = float(value)
    return rows


def report_metrics(report: Dict) -> Dict[str, float]:
    """Flatten one RunReport dict into its deterministic simulated
    metrics (no wall-clock fields)."""
    rows: Dict[str, float] = {
        "total_sim_cycles": float(report.get("total_sim_cycles", 0.0)),
        "total_engine_events": float(report.get("total_engine_events", 0)),
        "machines_built": float(report.get("machines_built", 0)),
    }
    for i, machine in enumerate(report.get("machines", [])):
        prefix = f"m{i}."
        cycles = machine.get("sim_cycles")
        if isinstance(cycles, (int, float)):
            rows[f"{prefix}sim_cycles"] = float(cycles)
        events = machine.get("engine", {}).get("events_processed")
        if isinstance(events, (int, float)):
            rows[f"{prefix}events_processed"] = float(events)
        rows.update(_latency_rows(machine, prefix))
        rows.update(_timeline_rows(machine, prefix))
    return rows


def _has_section(reports: Dict[str, Dict], section: str) -> bool:
    """Whether any machine record in ``reports`` carries ``section``."""
    return any(
        isinstance(machine.get(section), dict) and machine.get(section)
        for doc in reports.values()
        for machine in doc.get("machines", [])
        if isinstance(machine, dict)
    )


def check_section_parity(
    a_reports: Dict[str, Dict], b_reports: Dict[str, Dict]
) -> None:
    """Raise ``ValueError`` when exactly one report set carries a
    ``latency`` or ``timeline`` section: the sets were collected with
    different options, so every shared metric in that section would
    diff against a fabricated 0.0 — a wall of false regressions, not a
    comparison.  Coverage differences (an experiment present on one
    side only) are *not* parity errors; they stay flagged in the
    differential report."""
    for section, remedy in (
        ("latency", "collect both sides the same way (run-all --reports)"),
        ("timeline", "re-run both sides with the same --interval sampling"),
    ):
        a_has = _has_section(a_reports, section)
        b_has = _has_section(b_reports, section)
        if a_has != b_has:
            missing = "B" if a_has else "A"
            raise ValueError(
                f"report set {missing} has no {section} sections but the "
                f"other set does; {remedy}"
            )


def compare_reports(
    a_reports: Dict[str, Dict],
    b_reports: Dict[str, Dict],
    threshold: float = DEFAULT_STABILITY_THRESHOLD,
) -> CompareResult:
    """Diff two report sets (experiment name -> RunReport dict).

    Raises ``ValueError`` (via :func:`check_section_parity`) when one
    set carries latency/timeline sections and the other has none — the
    CLI surfaces that as its standard one-line ``error:`` instead of a
    spurious wall of zero-vs-nonzero deltas."""
    check_section_parity(a_reports, b_reports)
    result = CompareResult(threshold=threshold)
    result.only_a = sorted(set(a_reports) - set(b_reports))
    result.only_b = sorted(set(b_reports) - set(a_reports))
    for name in sorted(set(a_reports) & set(b_reports)):
        a_rows = report_metrics(a_reports[name])
        b_rows = report_metrics(b_reports[name])
        for metric in sorted(set(a_rows) | set(b_rows)):
            a = a_rows.get(metric, 0.0)
            b = b_rows.get(metric, 0.0)
            result.deltas.append(Delta(name, metric, a, b))
    return result


# ---------------------------------------------------------------------------
# streaming-sketch comparison


def _doc_sketches(doc: Dict) -> Dict[str, "QuantileSketch"]:
    from repro.monitor.sketch import QuantileSketch

    out = {}
    sketches = doc.get("sketches", {})
    for group in ("latency", "phases"):
        for name, payload in sketches.get(group, {}).items():
            out[f"{group}[{name}]"] = QuantileSketch.from_dict(payload)
    return out


def compare_streaming_docs(
    a_doc: Dict,
    b_doc: Dict,
    threshold: float = DEFAULT_STABILITY_THRESHOLD,
    label: str = "(stream)",
) -> CompareResult:
    """Diff two streaming spans documents per sketch and per quantile.

    Counts, means, and extrema are exact; quantile deltas inherit the
    sketches' declared relative-error bound, so a threshold tighter
    than ``1 - 2*relative_error`` compares noise — the default 0.98
    against 1% sketches is the sensible floor.
    """
    result = CompareResult(threshold=threshold)
    a_sketches = _doc_sketches(a_doc)
    b_sketches = _doc_sketches(b_doc)
    result.only_a = sorted(set(a_sketches) - set(b_sketches))
    result.only_b = sorted(set(b_sketches) - set(a_sketches))
    qs = [float(k[1:]) / 100.0 for k in QUANTILE_KEYS]
    for name in sorted(set(a_sketches) & set(b_sketches)):
        sa, sb = a_sketches[name], b_sketches[name]
        result.deltas.append(Delta(label, f"{name}.count", sa.count, sb.count))
        result.deltas.append(
            Delta(label, f"{name}.mean", sa.mean(), sb.mean())
        )
        for key, q in zip(QUANTILE_KEYS, qs):
            result.deltas.append(
                Delta(label, f"{name}.{key}", sa.quantile(q), sb.quantile(q))
            )
    for counter in ("complete", "incomplete", "dropped"):
        result.deltas.append(
            Delta(
                label,
                counter,
                float(a_doc.get(counter, 0)),
                float(b_doc.get(counter, 0)),
            )
        )
    return result


# ---------------------------------------------------------------------------
# rendering


def render_compare(
    result: CompareResult,
    a_label: str = "A",
    b_label: str = "B",
    show_all: bool = False,
) -> str:
    """Human-readable differential report: the significant deltas (or
    every delta with ``show_all``), coverage differences, and a one
    line verdict."""
    from repro.util.tables import Table

    lines: List[str] = []
    significant = result.significant
    shown = result.deltas if show_all else significant
    if shown:
        flagged = {id(d) for d in significant}
        table = Table(
            title=f"Differential report ({a_label} vs {b_label})",
            columns=["experiment", "metric", a_label, b_label,
                     "delta", "stability", "sig"],
            precision=2,
        )
        for delta in shown:
            table.add_row(
                [
                    delta.experiment,
                    delta.metric,
                    delta.a,
                    delta.b,
                    delta.delta,
                    delta.stability,
                    "*" if id(delta) in flagged else "",
                ]
            )
        lines.append(table.render())
    for side, names, other in (
        (a_label, result.only_a, b_label),
        (b_label, result.only_b, a_label),
    ):
        if names:
            lines.append(
                f"only in {side} (missing from {other}): {', '.join(names)}"
            )
    total = len(result.deltas)
    if result.ok:
        lines.append(
            f"OK: {total} metrics compared, zero significant deltas "
            f"(stability threshold {result.threshold:g})"
        )
    else:
        lines.append(
            f"DIFFER: {len(significant)} of {total} metrics significant "
            f"(stability < {result.threshold:g})"
            + (
                f", coverage differs by "
                f"{len(result.only_a) + len(result.only_b)} experiment(s)"
                if result.only_a or result.only_b
                else ""
            )
        )
    return "\n\n".join(lines)
