"""Post-run analysis of a simulated machine.

Turns the per-resource statistics every simulation accumulates into the
reports a performance engineer wants: utilization by subsystem, the
bottleneck ranking, and an ASCII heat strip of the network stages.
This is the software half of the paper's performance-monitoring story —
the hardware tracers/histogrammers collect, these tools interpret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.machine import CedarMachine
from repro.monitor.spans import LatencyAnalysis, PHASES, RequestSpan
from repro.network.resource import Resource
from repro.util.ascii_chart import line_chart, sparkline
from repro.util.tables import Table


@dataclass(frozen=True)
class ResourceReport:
    name: str
    utilization: float
    blocked_fraction: float
    packets: int
    words: int

    @property
    def pressure(self) -> float:
        """Utilization plus blocking: how contended the resource is."""
        return self.utilization + self.blocked_fraction


def _report(resource: Resource, elapsed: float) -> ResourceReport:
    blocked = resource.stats.blocked_cycles / elapsed if elapsed > 0 else 0.0
    return ResourceReport(
        name=resource.name,
        utilization=resource.utilization(elapsed),
        blocked_fraction=min(1.0, blocked),
        packets=resource.stats.packets,
        words=resource.stats.words,
    )


def machine_resources(machine: CedarMachine) -> List[Resource]:
    """Every queueing resource in the machine, in a stable order.

    Shared-fabric configurations alias stage links between the two
    network objects; each physical resource is listed once.
    """
    out: List[Resource] = []
    seen = set()

    def add(resource: Resource) -> None:
        if id(resource) not in seen:
            seen.add(id(resource))
            out.append(resource)

    nets = [machine.forward_network]
    if machine.reverse_network is not machine.forward_network:
        nets.append(machine.reverse_network)
    for net in nets:
        for port in net.injection_ports:
            add(port)
        for stage in net.stages:
            for link in stage:
                add(link)
    for module in machine.gmem.modules:
        add(module)
    for cluster in machine.clusters:
        add(cluster.cache)
        add(cluster.cluster_memory)
    return out


def utilization_report(
    machine: CedarMachine, elapsed: Optional[float] = None
) -> Dict[str, float]:
    """Mean utilization per subsystem."""
    elapsed = elapsed if elapsed is not None else machine.engine.now
    groups: Dict[str, List[float]] = {}
    for resource in machine_resources(machine):
        name = resource.name
        if name.startswith("gm["):
            key = "global memory modules"
        elif ".inject" in name:
            key = "network injection ports"
        elif ".s0" in name or ".s1" in name or ".s2" in name:
            key = "network stage links"
        elif name.endswith(".cache"):
            key = "cluster caches"
        elif name.endswith(".cmem"):
            key = "cluster memories"
        else:
            key = "other"
        groups.setdefault(key, []).append(resource.utilization(elapsed))
    return {key: sum(v) / len(v) for key, v in groups.items() if v}


def bottlenecks(
    machine: CedarMachine, top: int = 5, elapsed: Optional[float] = None
) -> List[ResourceReport]:
    """The most contended individual resources, by pressure."""
    if top < 1:
        raise ValueError("top must be positive")
    elapsed = elapsed if elapsed is not None else machine.engine.now
    reports = [_report(r, elapsed) for r in machine_resources(machine)]
    reports.sort(key=lambda r: r.pressure, reverse=True)
    return reports[:top]


_SHADES = " .:-=+*#%@"


def stage_heat_strip(machine: CedarMachine, elapsed: Optional[float] = None) -> str:
    """One character per network link, per stage: utilization 0..1 as
    a density shade — the at-a-glance view of where traffic piles up."""
    elapsed = elapsed if elapsed is not None else machine.engine.now
    lines = []
    nets = [("fwd", machine.forward_network)]
    if machine.reverse_network is not machine.forward_network:
        nets.append(("rev", machine.reverse_network))
    for label, net in nets:
        for stage_idx, stage in enumerate(net.stages):
            cells = []
            for link in stage:
                u = link.utilization(elapsed)
                cells.append(_SHADES[min(len(_SHADES) - 1, int(u * len(_SHADES)))])
            lines.append(f"{label}.s{stage_idx} |{''.join(cells)}|")
    modules = machine.gmem.modules
    cells = []
    for module in modules:
        u = module.utilization(elapsed)
        cells.append(_SHADES[min(len(_SHADES) - 1, int(u * len(_SHADES)))])
    lines.append(f"gm     |{''.join(cells)}|")
    lines.append("        utilization shade: ' '=idle .. '@'=saturated")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# timeline rendering (the `repro timeline` output)


def timeline_report(doc: Dict, width: int = 64) -> str:
    """Sparkline view of one timeline document
    (:meth:`~repro.monitor.timeline.MetricTimeline.to_dict`): one row
    per series, per-interval values as density shades, so the question
    "when did the network saturate / the queues back up?" is answered
    by scanning a column of the terminal.  Flat all-zero series are
    summarized in one count line instead of printed — a quiet fault
    injector shouldn't cost thirty blank rows."""
    edges = doc.get("edges", [])
    if not edges:
        return "timeline: no intervals sampled (run shorter than one interval?)"
    header = (
        f"timeline: {doc.get('intervals', len(edges))} intervals x "
        f"{doc.get('interval_cycles', 0.0):g} cycles"
        f" (sampled at {doc.get('initial_interval_cycles', 0.0):g}, "
        f"{doc.get('coalesces', 0)} coalesce(s)), "
        f"0..{edges[-1]:g} cycles"
    )
    name_width = max(
        (len(name) for name in doc.get("series", {})), default=0
    )
    lines = [header, ""]
    flat = 0
    for name, entry in sorted(doc.get("series", {}).items()):
        values = entry.get("values", [])
        if not any(values):
            flat += 1
            continue
        peak = max(values)
        spark = sparkline(values, width=width, lo=0.0, hi=peak)
        lines.append(
            f"  {name:<{name_width}} |{spark}| "
            f"peak {peak:g} ({entry.get('kind', '?')})"
        )
    if flat:
        lines.append(f"  ({flat} all-zero series not shown)")
    lines.append(
        "  shade: ' '=0 .. '@'=series peak; each cell is one interval"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# request-latency rendering (the `repro analyze` output)

#: waterfall glyph per phase, in timeline order.
_PHASE_GLYPHS = dict(zip(PHASES, "fwsbr"))


def latency_tables(analysis: LatencyAnalysis) -> str:
    """The per-phase / per-stage / per-origin decomposition tables."""
    phase_table = Table(
        title="latency decomposition by phase (cycles)",
        columns=["phase", "n", "mean", "p50", "p90", "p95", "p99", "max", "share%"],
    )
    for phase, row in analysis.phase_decomposition().items():
        phase_table.add_row([
            phase, row["count"], row["mean"], row["p50"], row["p90"],
            row["p95"], row["p99"], row["max"], 100.0 * row["share"],
        ])
    stage_table = Table(
        title="queue wait vs. service per stage (cycles/traversal)",
        columns=["stage", "traversals", "queue_wait", "service", "blocked", "share%"],
        precision=2,
    )
    for stage, row in analysis.stage_decomposition().items():
        stage_table.add_row([
            stage, row["traversals"], row["queue_wait"], row["service"],
            row["blocked"], 100.0 * row["share"],
        ])
    origin_table = Table(
        title="end-to-end latency by origin (cycles)",
        columns=["origin", "n", "mean", "p50", "p90", "p95", "p99", "max"],
    )
    for origin, row in analysis.end_to_end().items():
        origin_table.add_row([
            origin, row["count"], row["mean"], row["p50"], row["p90"],
            row["p95"], row["p99"], row["max"],
        ])
    rendered = "\n\n".join(
        t.render() for t in (phase_table, stage_table, origin_table)
    )
    dropped = getattr(analysis, "dropped", 0)
    if dropped:
        rendered += (
            f"\n(population truncated: {dropped} requests dropped at the "
            f"collector cap)"
        )
    return rendered


def latency_distribution_chart(
    analysis: LatencyAnalysis, width: int = 64, height: int = 12
) -> str:
    """End-to-end latency quantile curve (x: percentile, y: cycles)."""
    qs = [i / 100.0 for i in range(1, 100)]
    values = analysis.quantile_curve(qs)
    points = [(q * 100.0, value) for q, value in zip(qs, values)]
    return line_chart(
        {"latency": points},
        width=width,
        height=height,
        title="end-to-end latency quantiles",
        x_label="percentile",
        y_label="cycles",
    )


def _waterfall_row(span: RequestSpan, scale: float, width: int) -> str:
    phases = span.phases()
    bar = []
    for phase in PHASES:
        cells = int(round(phases[phase] * scale))
        bar.append(_PHASE_GLYPHS[phase] * cells)
    bar = "".join(bar)[:width].ljust(width)
    notes = ""
    if span.faults:
        kinds = sorted({fault["type"] for fault in span.faults})
        notes = "  !" + ",".join(kinds)
    return (
        f"#{span.request_id:<8d} {span.origin:<8s} port {span.port:<3d} "
        f"{span.latency:8.1f} cy |{bar}|{notes}"
    )


def span_waterfalls(
    analysis: LatencyAnalysis, top: int = 5, width: int = 56
) -> str:
    """Slowest-``top`` request waterfalls: one bar per request, phases
    as glyph runs proportional to their share of the slowest latency."""
    slowest = analysis.slowest(top)
    if not slowest:
        return "no completed requests"
    scale = width / max(s.latency for s in slowest)
    legend = "  ".join(f"{g}={p}" for p, g in _PHASE_GLYPHS.items())
    lines = [f"slowest {len(slowest)} requests  ({legend})"]
    lines.extend(_waterfall_row(span, scale, width) for span in slowest)
    return "\n".join(lines)


def latency_report(analysis: LatencyAnalysis, top: int = 5) -> str:
    """The full `repro analyze` text block: tables, quantile chart,
    bottleneck attribution, exemplar waterfalls, reconciliation check."""
    if not analysis.spans:
        return "no completed request spans collected"
    parts = []
    dropped = getattr(analysis, "dropped", 0)
    if dropped:
        parts.append(
            f"WARNING: {dropped} requests were dropped at the collector's "
            f"cap — the tables below describe a truncated population "
            f"(use --stream or raise max_requests for full coverage)"
        )
    parts.extend([latency_tables(analysis), latency_distribution_chart(analysis)])
    attribution = analysis.bottleneck_attribution()
    if attribution:
        worst = attribution[0]
        parts.append(
            f"bottleneck: stage {worst['stage']!r} contributes "
            f"{100.0 * worst['share']:.0f}% of p95-cohort latency"
        )
    parts.append(span_waterfalls(analysis, top=top))
    parts.append(
        f"phase sums reconcile with end-to-end latency to within "
        f"{analysis.reconciliation_error():.3g} cycles "
        f"(bound: 1 cycle/request)"
    )
    return "\n\n".join(parts)
