"""Post-run analysis of a simulated machine.

Turns the per-resource statistics every simulation accumulates into the
reports a performance engineer wants: utilization by subsystem, the
bottleneck ranking, and an ASCII heat strip of the network stages.
This is the software half of the paper's performance-monitoring story —
the hardware tracers/histogrammers collect, these tools interpret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.machine import CedarMachine
from repro.network.resource import Resource


@dataclass(frozen=True)
class ResourceReport:
    name: str
    utilization: float
    blocked_fraction: float
    packets: int
    words: int

    @property
    def pressure(self) -> float:
        """Utilization plus blocking: how contended the resource is."""
        return self.utilization + self.blocked_fraction


def _report(resource: Resource, elapsed: float) -> ResourceReport:
    blocked = resource.stats.blocked_cycles / elapsed if elapsed > 0 else 0.0
    return ResourceReport(
        name=resource.name,
        utilization=resource.utilization(elapsed),
        blocked_fraction=min(1.0, blocked),
        packets=resource.stats.packets,
        words=resource.stats.words,
    )


def machine_resources(machine: CedarMachine) -> List[Resource]:
    """Every queueing resource in the machine, in a stable order.

    Shared-fabric configurations alias stage links between the two
    network objects; each physical resource is listed once.
    """
    out: List[Resource] = []
    seen = set()

    def add(resource: Resource) -> None:
        if id(resource) not in seen:
            seen.add(id(resource))
            out.append(resource)

    nets = [machine.forward_network]
    if machine.reverse_network is not machine.forward_network:
        nets.append(machine.reverse_network)
    for net in nets:
        for port in net.injection_ports:
            add(port)
        for stage in net.stages:
            for link in stage:
                add(link)
    for module in machine.gmem.modules:
        add(module)
    for cluster in machine.clusters:
        add(cluster.cache)
        add(cluster.cluster_memory)
    return out


def utilization_report(
    machine: CedarMachine, elapsed: Optional[float] = None
) -> Dict[str, float]:
    """Mean utilization per subsystem."""
    elapsed = elapsed if elapsed is not None else machine.engine.now
    groups: Dict[str, List[float]] = {}
    for resource in machine_resources(machine):
        name = resource.name
        if name.startswith("gm["):
            key = "global memory modules"
        elif ".inject" in name:
            key = "network injection ports"
        elif ".s0" in name or ".s1" in name or ".s2" in name:
            key = "network stage links"
        elif name.endswith(".cache"):
            key = "cluster caches"
        elif name.endswith(".cmem"):
            key = "cluster memories"
        else:
            key = "other"
        groups.setdefault(key, []).append(resource.utilization(elapsed))
    return {key: sum(v) / len(v) for key, v in groups.items() if v}


def bottlenecks(
    machine: CedarMachine, top: int = 5, elapsed: Optional[float] = None
) -> List[ResourceReport]:
    """The most contended individual resources, by pressure."""
    if top < 1:
        raise ValueError("top must be positive")
    elapsed = elapsed if elapsed is not None else machine.engine.now
    reports = [_report(r, elapsed) for r in machine_resources(machine)]
    reports.sort(key=lambda r: r.pressure, reverse=True)
    return reports[:top]


_SHADES = " .:-=+*#%@"


def stage_heat_strip(machine: CedarMachine, elapsed: Optional[float] = None) -> str:
    """One character per network link, per stage: utilization 0..1 as
    a density shade — the at-a-glance view of where traffic piles up."""
    elapsed = elapsed if elapsed is not None else machine.engine.now
    lines = []
    nets = [("fwd", machine.forward_network)]
    if machine.reverse_network is not machine.forward_network:
        nets.append(("rev", machine.reverse_network))
    for label, net in nets:
        for stage_idx, stage in enumerate(net.stages):
            cells = []
            for link in stage:
                u = link.utilization(elapsed)
                cells.append(_SHADES[min(len(_SHADES) - 1, int(u * len(_SHADES)))])
            lines.append(f"{label}.s{stage_idx} |{''.join(cells)}|")
    modules = machine.gmem.modules
    cells = []
    for module in modules:
        u = module.utilization(elapsed)
        cells.append(_SHADES[min(len(_SHADES) - 1, int(u * len(_SHADES)))])
    lines.append(f"gm     |{''.join(cells)}|")
    lines.append("        utilization shade: ' '=idle .. '@'=saturated")
    return "\n".join(lines)
