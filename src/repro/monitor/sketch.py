"""Online quantile sketches and exemplar retention for unbounded runs.

The buffered observability path (:class:`~repro.monitor.spans.SpanCollector`
+ :class:`~repro.monitor.histogram.Histogrammer`) needs either a request
cap or pre-declared histogram bounds — a week-long soak run overflows
both.  This module provides the two constant-footprint primitives the
streaming path is built on:

* :class:`QuantileSketch` — a mergeable DDSketch-style quantile sketch
  over relative-error buckets.  No ``lo``/``hi`` must be declared up
  front: values land in logarithmic buckets ``ceil(log_gamma(v))`` with
  ``gamma = (1+alpha)/(1-alpha)``, so every reported quantile is within
  a *relative* error ``alpha`` of the exact sample quantile, whatever
  the data range turns out to be.  Bucket count grows with the log of
  the dynamic range (~1000 buckets spans nine decades at 1%), not with
  the sample count.

* :class:`ExemplarReservoir` — tree-buffer-style retention of the most
  informative recent history: the K **slowest complete** request spans
  (eviction keyed on latency rank, ties broken by a seeded hash so
  retention among equal-latency spans is reproducible but unbiased)
  plus the K **most recent incomplete** spans.  Everything else is
  released the moment it has been folded into the sketches.

Both structures are deterministic (no wall clock, no unseeded
randomness) and JSON-serializable, so streaming run reports reproduce
bit-identically for a fixed simulation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: serialized-sketch schema version (see :meth:`QuantileSketch.to_dict`).
SKETCH_VERSION = 1

#: default quantile relative-error bound (1%).
DEFAULT_RELATIVE_ERROR = 0.01

#: default bucket cap; past it the *lowest* buckets collapse together,
#: degrading only the extreme-low quantiles (latency analyses read the
#: upper tail).  At 1% relative error this spans ~20 decades, so real
#: workloads never hit it — it is a hard memory guarantee, not a knob.
DEFAULT_MAX_BUCKETS = 2048


class QuantileSketch:
    """A mergeable quantile sketch with bounded relative error.

    >>> s = QuantileSketch(relative_error=0.01)
    >>> for v in range(1, 1001):
    ...     s.record(float(v))
    >>> abs(s.quantile(0.5) - 500) / 500 < 0.01
    True

    Values ``<= 0`` land in a dedicated zero bucket and report as
    ``0.0`` (cycle latencies are non-negative; an exact zero has no
    logarithm).  ``merge`` is bucket-wise addition, so it is
    associative and commutative as long as neither operand has hit the
    bucket cap — merging sketches of two run halves equals sketching
    the whole run.
    """

    __slots__ = ("relative_error", "_gamma", "_ln_gamma", "_buckets",
                 "_zero_count", "count", "_sum", "_min", "_max",
                 "max_buckets", "collapsed")

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        if max_buckets < 2:
            raise ValueError("max_buckets must be at least 2")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._ln_gamma = math.log(self._gamma)
        #: bucket index -> count; index i covers (gamma^(i-1), gamma^i].
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self.max_buckets = max_buckets
        #: True once the bucket cap forced a low-bucket collapse (the
        #: low quantiles are then upper bounds, not alpha-accurate).
        self.collapsed = False

    # -- recording ---------------------------------------------------------

    def _key(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._ln_gamma))

    def record(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self.count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero_count += 1
            return
        buckets = self._buckets
        key = self._key(value)
        buckets[key] = buckets.get(key, 0) + 1
        if len(buckets) > self.max_buckets:
            self._collapse()

    def _collapse(self) -> None:
        """Merge the lowest buckets until back under the cap.  Collapsing
        upward into the lowest *surviving* bucket keeps every collapsed
        sample's reported value an over-estimate bounded by that
        bucket's value — the upper tail stays alpha-accurate."""
        keys = sorted(self._buckets)
        spill = 0
        while len(keys) > self.max_buckets - 1:
            spill += self._buckets.pop(keys.pop(0))
        if spill:
            self._buckets[keys[0]] = self._buckets.get(keys[0], 0) + spill
            self.collapsed = True

    # -- queries -----------------------------------------------------------

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def mean(self) -> float:
        if not self.count:
            raise ValueError("no samples recorded")
        return self._sum / self.count

    def bucket_count(self) -> int:
        """Distinct buckets currently held (the memory footprint)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1), within ``relative_error``
        of the exact sample quantile ``sorted(values)[rank - 1]`` with
        ``rank = ceil(q * count)`` — the same cumulative-count
        convention :meth:`Histogrammer.percentile` walks, so the two
        backends estimate the same order statistic."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if not self.count:
            raise ValueError("no samples recorded")
        target = q * self.count
        if self._zero_count and self._zero_count >= target:
            return 0.0
        seen = self._zero_count
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen >= target:
                # bucket midpoint in value space: 2*gamma^key/(gamma+1)
                return (
                    2.0 * math.pow(self._gamma, key) / (self._gamma + 1.0)
                )
        return self._max if self._max is not None else 0.0

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    # -- merging -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place (and return self).
        Operands must share the same ``relative_error``."""
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sketches with different relative errors: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        buckets = self._buckets
        for key, n in other._buckets.items():
            buckets[key] = buckets.get(key, 0) + n
        self._zero_count += other._zero_count
        self.count += other.count
        self._sum += other._sum
        if other._min is not None:
            self._min = other._min if self._min is None else min(self._min, other._min)
        if other._max is not None:
            self._max = other._max if self._max is None else max(self._max, other._max)
        self.collapsed = self.collapsed or other.collapsed
        if len(buckets) > self.max_buckets:
            self._collapse()
        return self

    def copy(self) -> "QuantileSketch":
        return QuantileSketch.from_dict(self.to_dict())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready state; :meth:`from_dict` round-trips it exactly."""
        return {
            "version": SKETCH_VERSION,
            "relative_error": self.relative_error,
            "count": self.count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "zero_count": self._zero_count,
            "collapsed": self.collapsed,
            # JSON objects key on strings; sorted for stable output
            "buckets": {str(k): self._buckets[k] for k in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        if data.get("version") != SKETCH_VERSION:
            raise ValueError(f"unsupported sketch version: {data.get('version')!r}")
        sketch = cls(relative_error=float(data["relative_error"]))
        sketch._buckets = {int(k): int(n) for k, n in data["buckets"].items()}
        sketch._zero_count = int(data["zero_count"])
        sketch.count = int(data["count"])
        sketch._sum = float(data["sum"])
        sketch._min = None if data["min"] is None else float(data["min"])
        sketch._max = None if data["max"] is None else float(data["max"])
        sketch.collapsed = bool(data.get("collapsed", False))
        return sketch


# ---------------------------------------------------------------------------
# exemplar retention


def _tie_hash(request_id: int, seed: int) -> int:
    """Deterministic tie-break mix for equal-latency spans (splitmix-ish,
    so retention does not simply favour low request ids)."""
    x = (request_id ^ (seed * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class ExemplarReservoir:
    """Fixed-size retention of the most informative spans.

    Keeps the ``k`` slowest **complete** spans (latency rank; equal
    latencies tie-break on a seeded hash of the request id, so two runs
    of the same simulation retain the same exemplars) and the ``k``
    most **recent incomplete** spans (by birth time — the in-flight
    tail a hung run leaves behind).  Memory is O(k) regardless of how
    many spans are offered.
    """

    def __init__(self, k: int = 64, seed: int = 0) -> None:
        if k < 1:
            raise ValueError("reservoir size must be positive")
        self.k = k
        self.seed = seed
        #: (latency, tie, span) min-ordered list, at most k entries.
        self._slowest: List[Tuple[float, int, object]] = []
        #: (birth, tie, span), at most k entries, oldest evicted first.
        self._recent_incomplete: List[Tuple[float, int, object]] = []
        self.offered_complete = 0
        self.offered_incomplete = 0

    def _rank(self, latency: float, request_id: int) -> Tuple[float, int]:
        return (latency, _tie_hash(request_id, self.seed))

    def offer_complete(self, span) -> bool:
        """Offer a completed span; returns True when retained.  The
        caller may release spans that are not."""
        self.offered_complete += 1
        import heapq

        entry = (*self._rank(span.latency, span.request_id), span)
        if len(self._slowest) < self.k:
            heapq.heappush(self._slowest, entry)
            return True
        if entry[:2] <= self._slowest[0][:2]:
            return False
        heapq.heapreplace(self._slowest, entry)
        return True

    def offer_incomplete(self, span) -> None:
        """Offer an incomplete span (an in-flight eviction or a sim-end
        orphan); only the ``k`` most recent births are kept."""
        self.offered_incomplete += 1
        import heapq

        entry = (span.birth, _tie_hash(span.request_id, self.seed), span)
        if len(self._recent_incomplete) < self.k:
            heapq.heappush(self._recent_incomplete, entry)
        elif entry[:2] > self._recent_incomplete[0][:2]:
            heapq.heapreplace(self._recent_incomplete, entry)

    # -- views -------------------------------------------------------------

    def slowest(self, n: Optional[int] = None) -> List[object]:
        """The retained complete spans, slowest first."""
        ordered = [e[2] for e in sorted(self._slowest, reverse=True)]
        return ordered if n is None else ordered[:n]

    def incompletes(self) -> List[object]:
        """The retained incomplete spans, most recent birth first."""
        return [e[2] for e in sorted(self._recent_incomplete, reverse=True)]

    def __len__(self) -> int:
        return len(self._slowest) + len(self._recent_incomplete)
