"""Machine configuration for the Cedar simulator.

Every numeric parameter published in Section 2 of the paper appears here
with its paper value as the default; experiments vary them (cluster
count, queue depths, prefetch block sizes) to reproduce the evaluation
and the ablation studies called out in DESIGN.md.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

from repro.faults.plan import FaultPlan
from repro.util.units import KB, MB


@dataclass(frozen=True)
class CEConfig:
    """One Alliant computational element (CE).

    The CE is a pipelined 68020-compatible with a 64-bit vector unit.
    Peak 11.8 MFLOPS at a 170 ns cycle means two floating-point results
    per cycle when chaining two operations per memory operand, which is
    how all the paper's kernels are coded ("All versions chain two
    operations per memory request", Section 4.1).
    """

    cycle_ns: float = 170.0
    #: vector registers: eight 32-word registers.
    vector_registers: int = 8
    vector_register_words: int = 32
    #: peak chained flops per cycle (2 => 11.76 MFLOPS at 170ns).
    flops_per_cycle: float = 2.0
    #: cache allows each CE two outstanding misses (lockup-free, paper Sec. 2).
    max_outstanding_misses: int = 2
    #: vector instruction startup in cycles (drives the 274 vs 376 MFLOPS
    #: effective-vs-absolute peak distinction for 32-word operand chunks).
    vector_startup_cycles: int = 12


@dataclass(frozen=True)
class CacheConfig:
    """Shared 4-way interleaved cluster cache (Alliant FX/8)."""

    size_bytes: int = 512 * KB
    line_bytes: int = 32
    banks: int = 4
    write_back: bool = True
    lockup_free: bool = True
    #: eight 64-bit words per instruction cycle across the cluster
    #: (48 MB/s per CE, 384 MB/s per cluster at 170ns).
    words_per_cycle: int = 8
    hit_cycles: int = 1


@dataclass(frozen=True)
class ClusterMemoryConfig:
    """Interleaved cluster memory behind the shared cache."""

    size_bytes: int = 32 * MB
    #: cluster memory bandwidth is half the cache's (192 MB/s per cluster).
    words_per_cycle: int = 4
    access_cycles: int = 6


@dataclass(frozen=True)
class ConcurrencyBusConfig:
    """Concurrency control bus: fast fork/join/synchronization.

    "concurrent start is a single instruction that spreads the iterations
    of a parallel loop ... The whole cluster is thus gang-scheduled."
    A CDOALL "can typically start in a few microseconds" (Section 3.2):
    a few us at 170 ns is a few tens of cycles.
    """

    concurrent_start_cycles: int = 18  # ~3 us
    join_cycles: int = 6
    self_schedule_cycles: int = 2


@dataclass(frozen=True)
class NetworkConfig:
    """One unidirectional multistage shuffle-exchange network.

    Built from 8x8 crossbar switches with 64-bit-wide data paths; a
    two-word queue sits on each switch input and output port and
    flow control between stages prevents queue overflow (Section 2).
    """

    switch_radix: int = 8
    #: two-word queue on each crossbar input and output port (Section 2).
    queue_words: int = 2
    #: queue at the CE/module network interface.
    injection_queue_words: int = 4
    #: extra per-stage pipeline cycles beyond the 1-word/cycle transfer.
    #: With 0, a 1-word packet spends exactly 1 cycle per stage, making
    #: the unloaded inject+2-stages+memory+inject+2-stages path the
    #: paper's 8-cycle minimal latency.
    stage_cycles: float = 0.0
    #: words a single link can accept per cycle.
    link_words_per_cycle: float = 1.0
    #: maximum packet size in 64-bit words (header + up to 3 data words).
    max_packet_words: int = 4
    #: ablation switch: route requests AND replies through one shared
    #: network instead of Cedar's two unidirectional ones.
    shared_single_network: bool = False
    #: with the shared network: give replies their own injection
    #: buffering (a minimal virtual-channel-style escape) so the
    #: request/reply protocol deadlock cannot form at the entry points.
    reply_escape: bool = False


@dataclass(frozen=True)
class GlobalMemoryConfig:
    """Globally shared memory: 64 MB, double-word interleaved and aligned.

    Peak bandwidth 768 MB/s (24 MB/s per CE), matching the network.
    Each module contains a synchronization processor executing the
    Zhu-Yew Test-And-Operate instruction set.
    """

    size_bytes: int = 64 * MB
    #: number of independently-cycling interleaved modules.
    modules: int = 32
    #: module busy time per 8-byte word access.  2 cycles x 32 modules
    #: sustains 16 words/cycle machine-wide = 768 MB/s at 170 ns — the
    #: published peak global bandwidth (24 MB/s per CE).
    access_cycles: int = 2
    #: extra cycles the module's sync processor needs per sync instruction.
    sync_op_cycles: int = 2
    #: request queue at each module, in words.
    module_queue_words: int = 4
    #: DRAM bank recovery after each access: dead time before the module
    #: can start the next request.  Adds nothing to an isolated access's
    #: latency but caps sustained bandwidth below the nominal peak —
    #: the "specific implementation constraints" [Turn93] the paper
    #: blames for prefetch degradation beyond two clusters.
    recovery_cycles: float = 1.0


@dataclass(frozen=True)
class PrefetchConfig:
    """Per-CE prefetch unit (PFU), Section 2 'Data Prefetch'."""

    buffer_words: int = 512
    max_outstanding: int = 512
    #: cycles to arm (length/stride/mask) and fire the PFU.
    arm_cycles: int = 6
    #: cycles to move a word between the prefetch buffer and the CE;
    #: together with the 8-cycle minimal network+memory latency this
    #: yields the 13-cycle CE-observed global latency of Section 4.1.
    buffer_to_ce_cycles: int = 5
    #: requests the PFU may issue per cycle.
    issue_per_cycle: int = 1


@dataclass(frozen=True)
class VMConfig:
    """Xylem virtual memory parameters."""

    page_bytes: int = 4 * KB
    tlb_entries: int = 64
    #: cost of a TLB miss serviced from a valid PTE in global memory.
    tlb_miss_cycles: int = 120
    #: cost of a true page fault (Xylem service), in cycles (~1 ms).
    page_fault_cycles: int = 6000


@dataclass(frozen=True)
class RuntimeConfig:
    """Runtime library loop-scheduling costs (Section 3.2).

    "a typical loop startup latency of 90 us and fetching the next
    iteration takes about 30 us" for XDOALL; SDOALL start is similar to
    XDOALL (it schedules over clusters through global memory); CDOALL
    uses the concurrency bus.  Without the Cedar synchronization
    instructions, self-scheduling falls back to lock-based software
    queues, multiplying the per-iteration fetch cost.
    """

    xdoall_startup_us: float = 90.0
    xdoall_fetch_us: float = 30.0
    sdoall_startup_us: float = 90.0
    sdoall_fetch_us: float = 30.0
    cdoall_startup_us: float = 3.0
    cdoall_fetch_us: float = 0.4
    #: multiplier on fetch cost when Cedar sync instructions are disabled.
    no_sync_fetch_factor: float = 3.0
    #: extra barrier cost across clusters (used by FL052-style analyses).
    multicluster_barrier_us: float = 60.0


@dataclass(frozen=True)
class CedarConfig:
    """Full-machine configuration: four Alliant FX/8 clusters by default."""

    clusters: int = 4
    ces_per_cluster: int = 8
    ce: CEConfig = field(default_factory=CEConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    cluster_memory: ClusterMemoryConfig = field(default_factory=ClusterMemoryConfig)
    concurrency_bus: ConcurrencyBusConfig = field(default_factory=ConcurrencyBusConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    global_memory: GlobalMemoryConfig = field(default_factory=GlobalMemoryConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    vm: VMConfig = field(default_factory=VMConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: fault-injection schedule; the all-zero default is inert (machine
    #: assembly skips the injector entirely) but still hashed, so cached
    #: results are keyed by the fault schedule too.
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ValueError("need at least one cluster")
        if self.ces_per_cluster < 1:
            raise ValueError("need at least one CE per cluster")

    @property
    def total_ces(self) -> int:
        """Total computational elements in the machine."""
        return self.clusters * self.ces_per_cluster

    @property
    def peak_mflops(self) -> float:
        """Absolute peak (376 MFLOPS for the full 32-CE machine)."""
        per_ce = self.ce.flops_per_cycle / (self.ce.cycle_ns * 1e-9) / 1e6
        return per_ce * self.total_ces

    @property
    def effective_peak_mflops(self) -> float:
        """Peak net of unavoidable vector startup (~274 MFLOPS, Sec. 4.1).

        Vector work arrives in vector-register-sized chunks; each chunk of
        length L pays ``vector_startup_cycles`` on top of L compute cycles.
        """
        length = self.ce.vector_register_words
        eff = length / (length + self.ce.vector_startup_cycles)
        return self.peak_mflops * eff

    # -- stable identity --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain nested dict of every field (JSON-serializable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CedarConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        kwargs = dict(data)
        for f in fields(cls):
            if f.name in kwargs and isinstance(kwargs[f.name], dict):
                sub_cls = f.default_factory  # nested config dataclasses
                kwargs[f.name] = sub_cls(**kwargs[f.name])
        return cls(**kwargs)

    def stable_hash(self) -> str:
        """Deterministic hex digest of the full configuration.

        Stable across processes and sessions (unlike ``hash()``, which
        is salted): the canonical JSON of :meth:`to_dict` with sorted
        keys, SHA-256 hashed.  Two configs share a hash iff every field
        is equal, so it is a safe cache key for memoized experiment
        results.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


DEFAULT_CONFIG = CedarConfig()
