"""SimContext: the machine-assembly and component-lifecycle layer.

Everything that lives in a simulated Cedar — networks, global memory,
prefetch units, clusters, CEs, the Xylem file system — is a
**component** registered in one :class:`SimContext`.  The context owns
the shared substrate (the event :class:`~repro.core.engine.Engine`, the
:class:`~repro.monitor.signals.SignalBus`, the
:class:`~repro.core.config.CedarConfig`) and gives every component the
same four-phase lifecycle:

``attach(ctx)``
    Called exactly once when the component is registered; the component
    caches its engine/bus/config references and its signal channels
    here.  Wiring between components happens in the assembly plan, not
    inside component constructors.
``reset()``
    Return the component to its post-attach state (counters zeroed,
    queues empty) so a machine can be reused across experiment runs
    without re-assembly.
``stats()``
    A flat ``dict`` of the component's counters — the raw material for
    post-run analysis and experiment result stores.
``describe()``
    Static structural facts (topology, sizes) — the material for the
    Figure 1/2 reproductions.

The protocol is structural (duck-typed): anything with those four
callables is a component.  :func:`validate_component` checks compliance,
and :class:`ComponentAdapter` wraps objects that cannot grow the
methods themselves (e.g. :class:`~repro.xylem.filesystem.XylemFileSystem`,
whose ``stats`` is already a data attribute).

Assembly plans
--------------

A machine variant is a *plan*: an ordered list of named build steps.
:func:`register_variant` / :data:`NETWORK_VARIANTS` make the ablation
variants (dual network, one shared fabric, shared + reply escape)
data, not ``if``/``else`` chains — the variant is selected by
``config.network`` and each builder returns the forward/reverse
network pair declaratively.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.config import CedarConfig, DEFAULT_CONFIG
from repro.core.engine import Engine, make_engine
from repro.monitor.signals import Signal, SignalBus


# ---------------------------------------------------------------------------
# context observers: the attachment point for machine-wide instrumentation
#
# The paper's monitors clip onto a *running* machine from outside; the
# software analogue is a process-global list of callables invoked with
# every newly created SimContext.  The observability layer (ChromeTracer,
# the run-report collector) registers here so experiment code — which
# builds machines internally and never exposes them — can be traced and
# metered without modification.  With no observers registered (the
# default), context construction pays one empty-tuple iteration.

_CONTEXT_OBSERVERS: List[Callable[["SimContext"], None]] = []


def add_context_observer(observer: Callable[["SimContext"], None]):
    """Register ``observer`` to be called with every SimContext built
    from now on (machine assembly has not happened yet when it runs —
    subscribe broadcast, which sees future channels).  Returns the
    observer for use with :func:`remove_context_observer`."""
    _CONTEXT_OBSERVERS.append(observer)
    return observer


def remove_context_observer(observer: Callable[["SimContext"], None]) -> None:
    """Deregister; unknown observers are ignored."""
    try:
        _CONTEXT_OBSERVERS.remove(observer)
    except ValueError:
        pass


@runtime_checkable
class Component(Protocol):
    """Structural protocol for everything registered in a SimContext."""

    def attach(self, ctx: "SimContext") -> None: ...

    def reset(self) -> None: ...

    def stats(self) -> Dict[str, object]: ...

    def describe(self) -> Dict[str, object]: ...


_LIFECYCLE = ("attach", "reset", "stats", "describe")


def validate_component(obj: object) -> None:
    """Raise ``TypeError`` unless ``obj`` satisfies the protocol."""
    missing = [m for m in _LIFECYCLE if not callable(getattr(obj, m, None))]
    if missing:
        raise TypeError(
            f"{type(obj).__name__} is not a Component: missing {missing}"
        )


class ComponentAdapter:
    """Wrap an arbitrary object as a Component.

    Used for objects whose public surface conflicts with the lifecycle
    names (``XylemFileSystem.stats`` is a data attribute) or that
    predate the protocol.  The wrapped object stays reachable as
    ``adapter.target``.
    """

    def __init__(
        self,
        target: object,
        *,
        reset: Optional[Callable[[], None]] = None,
        stats: Optional[Callable[[], Dict[str, object]]] = None,
        describe: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        self.target = target
        self._reset = reset
        self._stats = stats
        self._describe = describe

    def attach(self, ctx: "SimContext") -> None:
        attach = getattr(self.target, "attach", None)
        if callable(attach):
            attach(ctx)

    def reset(self) -> None:
        if self._reset is not None:
            self._reset()

    def stats(self) -> Dict[str, object]:
        return dict(self._stats()) if self._stats is not None else {}

    def describe(self) -> Dict[str, object]:
        return dict(self._describe()) if self._describe is not None else {}


class SimContext:
    """The shared substrate plus the component registry of one machine.

    >>> ctx = SimContext()
    >>> ctx.config.total_ces
    32
    """

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        engine: Optional[Engine] = None,
        bus: Optional[SignalBus] = None,
    ) -> None:
        self.config = config
        # feature-gated default: the batched drain unless CEDAR_BATCHED
        # turns it off (an explicit ``engine`` always wins).
        self.engine = engine if engine is not None else make_engine()
        self.bus = bus if bus is not None else SignalBus()
        self._components: Dict[str, object] = {}
        for observer in tuple(_CONTEXT_OBSERVERS):
            observer(self)

    # -- registry --------------------------------------------------------------

    def add(self, name: str, component):
        """Register ``component`` under ``name`` and attach it.

        Returns the component, so assembly code can register and bind in
        one expression.
        """
        if name in self._components:
            raise ValueError(f"component {name!r} already registered")
        validate_component(component)
        self._components[name] = component
        component.attach(self)
        return component

    def component(self, name: str):
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(
                f"no component {name!r}; have {sorted(self._components)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def components(self) -> Iterator[Tuple[str, object]]:
        """``(name, component)`` pairs in registration order."""
        return iter(self._components.items())

    def names(self):
        return list(self._components)

    # -- signals ---------------------------------------------------------------

    def signal(self, name: str, key=None) -> Signal:
        """Shorthand for ``ctx.bus.signal(name, key)``."""
        return self.bus.signal(name, key)

    # -- lifecycle fan-out -----------------------------------------------------

    def reset(self) -> None:
        """Fresh-machine state without re-assembly: the engine back at
        time zero with an empty queue, and every component reset, in
        registration order.  Signal subscriptions on the bus are
        preserved (monitors survive machine reuse)."""
        self.engine.reset()
        for component in self._components.values():
            component.reset()

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-component counters: ``{component name: {counter: value}}``."""
        return {
            name: dict(component.stats())
            for name, component in self._components.items()
        }

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Per-component structural summaries."""
        return {
            name: dict(component.describe())
            for name, component in self._components.items()
        }


# ---------------------------------------------------------------------------
# declarative network-variant registry (the ablation switchboard)

#: variant name -> builder(ctx, n_ports) -> (forward, reverse) networks.
NETWORK_VARIANTS: Dict[str, Callable] = {}


def register_variant(name: str):
    """Decorator registering a network-assembly variant by name."""

    def _register(builder: Callable):
        NETWORK_VARIANTS[name] = builder
        return builder

    return _register


def network_variant_for(config: CedarConfig) -> str:
    """Map a configuration to its assembly variant name."""
    net = config.network
    if net.shared_single_network and net.reply_escape:
        return "shared-escape"
    if net.shared_single_network:
        return "shared"
    return "dual"


def _make_network(ctx: SimContext, name: str, n_ports: int):
    from repro.network.omega import OmegaNetwork

    net = ctx.config.network
    return OmegaNetwork(
        ctx.engine,
        name=name,
        n_ports=n_ports,
        switch_radix=net.switch_radix,
        queue_words=net.queue_words,
        stage_cycles=net.stage_cycles,
        link_words_per_cycle=net.link_words_per_cycle,
        injection_queue_words=net.injection_queue_words,
    )


@register_variant("dual")
def _dual_networks(ctx: SimContext, n_ports: int):
    """Cedar's design: two physically separate unidirectional networks."""
    return _make_network(ctx, "fwd", n_ports), _make_network(ctx, "rev", n_ports)


@register_variant("shared")
def _shared_network(ctx: SimContext, n_ports: int):
    """Ablation: requests and replies contend on one fabric."""
    fwd = _make_network(ctx, "fwd", n_ports)
    return fwd, fwd


@register_variant("shared-escape")
def _shared_with_escape(ctx: SimContext, n_ports: int):
    """One fabric, but replies keep their own injection buffers: stage
    contention without the entry-point deadlock."""
    fwd = _make_network(ctx, "fwd", n_ports)
    return fwd, fwd.view_with_own_injection("rev")


def build_networks(ctx: SimContext, n_ports: int):
    """Build the (forward, reverse) pair for ``ctx.config``'s variant."""
    variant = network_variant_for(ctx.config)
    return NETWORK_VARIANTS[variant](ctx, n_ports)
