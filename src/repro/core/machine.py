"""The assembled Cedar machine.

Builds Figure 1: clusters of CEs on one side, two unidirectional
multistage networks in the middle, interleaved global memory with
synchronization processors on the other side, plus per-CE prefetch
units.  Kernel studies drive it with CE generator programs.

Assembly is declarative: a :class:`~repro.core.context.SimContext` owns
the engine / signal bus / config, the network topology comes from the
:data:`~repro.core.context.NETWORK_VARIANTS` registry keyed off the
configuration (dual fabrics, one shared fabric, shared with reply
escape), and every part of the machine is registered as a named
component with the attach/reset/stats/describe lifecycle.
``CedarMachine`` itself is a thin facade over the context that keeps
the accessors the experiments use (``machine.gmem``, ``machine.pfu(0)``,
``machine.probe`` ...).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.config import CedarConfig, DEFAULT_CONFIG
from repro.core.context import ComponentAdapter, SimContext, build_networks
from repro.core.engine import SimulationError, Watchdog
from repro.faults.injector import FaultInjector
from repro.cluster.ce import CE
from repro.cluster.cluster import Cluster
from repro.gmemory.module import GlobalMemory
from repro.monitor.probes import PrefetchProbe
from repro.network.packet import Packet
from repro.prefetch.pfu import PrefetchUnit
from repro.xylem.filesystem import FSStats, XylemFileSystem


class CedarMachine:
    """Four Alliant FX/8 clusters, two omega networks, global memory.

    ``monitor_port`` clips a :class:`PrefetchProbe` onto one CE's PFU
    signal channels, reproducing the paper's methodology ("we monitored
    all requests of a single processor").
    """

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        monitor_port: Optional[int] = None,
    ) -> None:
        self.ctx = SimContext(config)
        self.config = config
        self.engine = self.ctx.engine
        self.bus = self.ctx.bus
        self._assemble()
        self.probe: Optional[PrefetchProbe] = None
        self.monitor_port = monitor_port
        if monitor_port is not None:
            self.probe = PrefetchProbe().attach(self.bus, monitor_port)

    # -- assembly plan ----------------------------------------------------------

    def _assemble(self) -> None:
        ctx = self.ctx
        config = self.config
        n_ports = max(config.total_ces, config.global_memory.modules)

        forward, reverse = build_networks(ctx, n_ports)
        self.forward_network = ctx.add("net.fwd", forward)
        if reverse is not forward:
            ctx.add("net.rev", reverse)
        self.reverse_network = reverse

        self.gmem = ctx.add(
            "gmem", GlobalMemory(self.engine, config.global_memory, reverse)
        )

        self.filesystem = XylemFileSystem()
        ctx.add(
            "xylem.fs",
            ComponentAdapter(
                self.filesystem,
                reset=self._reset_filesystem,
                stats=lambda: vars(self.filesystem.stats).copy(),
                describe=lambda: {"costs": vars(self.filesystem.costs).copy()},
            ),
        )

        self.clusters: List[Cluster] = []
        for cid in range(config.clusters):
            self.clusters.append(ctx.add(f"cluster[{cid}]", Cluster(self, cid)))

        self.ces: List[CE] = []
        self._pfus: Dict[int, PrefetchUnit] = {}
        for cid in range(config.clusters):
            for local in range(config.ces_per_cluster):
                ce = CE(self, cid, local)
                self.ces.append(ce)
                self.clusters[cid].ces.append(ce)
                # CE.stats is the CEStats record (public API) — adapt the
                # lifecycle around it instead of renaming it.
                ctx.add(
                    f"ce[{ce.port}]",
                    ComponentAdapter(
                        ce, reset=ce.reset, stats=ce.counters, describe=ce.describe
                    ),
                )
                self._pfus[ce.port] = ctx.add(
                    f"pfu[{ce.port}]",
                    PrefetchUnit(
                        self.engine,
                        ce.port,
                        self.forward_network,
                        self.gmem,
                        config.prefetch,
                        vm_config=config.vm,
                    ),
                )
                self.reverse_network.register_sink(ce.port, self._make_sink(ce.port))
        # memory modules may outnumber CEs; replies only target CE ports,
        # but register a trap on the rest to fail loudly if misrouted.
        for port in range(config.total_ces, n_ports):
            self.reverse_network.register_sink(port, self._unexpected_sink(port))

        # fault injection arms last (it instruments the components
        # registered above).  An inert plan builds nothing at all — the
        # no-fault machine is bit-identical to one assembled before the
        # faults subsystem existed.
        self.faults: Optional[FaultInjector] = None
        if config.faults.enabled:
            self.faults = ctx.add("faults", FaultInjector(config.faults))

    def _reset_filesystem(self) -> None:
        self.filesystem._files.clear()
        self.filesystem.stats = FSStats()

    # -- wiring -----------------------------------------------------------------

    def _make_sink(self, port: int):
        deliver = self.bus.signal("req.deliver", key=port)
        engine = self.engine

        def _sink(packet: Packet) -> None:
            if deliver.callbacks:
                deliver.emit(packet, engine.now)
            handler = packet.meta.get("handler")
            if handler is not None:
                handler(packet)
                # the reply is terminal here; handlers extract what they
                # need (sync results, block word counts) before returning
                packet.release()
                return
            if "pfu_stream" in packet.meta:
                self._pfus[port].deliver(packet)
                packet.release()
                return
            raise RuntimeError(f"reply at port {port} with no handler: {packet}")

        return _sink

    @staticmethod
    def _unexpected_sink(port: int):
        def _sink(packet: Packet) -> None:
            raise RuntimeError(f"reply delivered to unattached port {port}: {packet}")

        return _sink

    # -- accessors ----------------------------------------------------------------

    def ce(self, port: int) -> CE:
        return self.ces[port]

    def pfu(self, port: int) -> PrefetchUnit:
        return self._pfus[port]

    def cluster_of(self, port: int) -> Cluster:
        return self.clusters[port // self.config.ces_per_cluster]

    def reset(self) -> None:
        """Fresh-machine state without re-assembly (engine at time zero,
        all component counters cleared); monitors stay subscribed."""
        self.ctx.reset()

    # -- running ---------------------------------------------------------------------

    def run_programs(
        self,
        programs: Dict[int, Generator],
        max_events: Optional[int] = None,
        watchdog: Optional[Watchdog] = None,
    ) -> float:
        """Run one generator program per CE port; returns completion time
        (cycles) of the last CE to finish.

        ``watchdog`` supervises the run (budgets + livelock detection,
        see :class:`~repro.core.engine.Watchdog`); one without its own
        ``progress`` callable gets a machine-level fingerprint — programs
        still running plus words delivered by each fabric — so a run
        that burns events while moving nothing aborts with a
        :class:`~repro.core.engine.WatchdogError` diagnostic dump.
        """
        engine = self.engine
        remaining = len(programs)

        def _finished(_ce: CE) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                engine.request_stop()

        for port, program in programs.items():
            self.ce(port).run(program, on_done=_finished)
        participants = [self.ce(port) for port in programs]
        if watchdog is not None:
            if watchdog.progress is None:
                fwd, rev = self.forward_network, self.reverse_network
                watchdog.progress = lambda: (
                    remaining,
                    fwd.total_words_delivered(),
                    rev.total_words_delivered(),
                )
            engine.attach_watchdog(watchdog)
        try:
            if max_events is None:
                engine.run_until_idle()
            else:
                engine.run(max_events=max_events)
            if remaining:
                stuck = [ce.port for ce in participants if not ce.done]
                raise SimulationError(f"CEs never finished: {stuck}")
            finish = max(ce.stats.finished_at or 0.0 for ce in participants)
            # drain in-flight traffic (e.g. writes the CEs never waited
            # for) so memory/network counters are complete; `finish` is
            # unaffected.
            if max_events is None:
                engine.run_until_idle()
            else:
                engine.run(max_events=max_events)
        finally:
            if watchdog is not None:
                engine.detach_watchdog()
        return finish

    # -- topology description (Figures 1 and 2) -----------------------------------------

    def describe_topology(self) -> Dict[str, object]:
        """Structural summary used by the Figure 1/2 reproduction bench."""
        return {
            "clusters": self.config.clusters,
            "ces_per_cluster": self.config.ces_per_cluster,
            "total_ces": self.config.total_ces,
            "networks": 2,
            "network_stages": self.forward_network.n_stages,
            "stage_radices": list(self.forward_network.radices),
            "memory_modules": self.config.global_memory.modules,
            "global_memory_mb": self.config.global_memory.size_bytes // (1 << 20),
            "cluster_memory_mb": self.config.cluster_memory.size_bytes // (1 << 20),
            "cache_kb": self.config.cache.size_bytes // 1024,
            "peak_mflops": round(self.config.peak_mflops, 1),
            "effective_peak_mflops": round(self.config.effective_peak_mflops, 1),
        }
