"""The assembled Cedar machine.

Builds Figure 1: clusters of CEs on one side, two unidirectional
multistage networks in the middle, interleaved global memory with
synchronization processors on the other side, plus per-CE prefetch
units.  Kernel studies drive it with CE generator programs.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.config import CedarConfig, DEFAULT_CONFIG
from repro.core.engine import Engine
from repro.cluster.ce import CE
from repro.cluster.cluster import Cluster
from repro.gmemory.module import GlobalMemory
from repro.monitor.probes import PrefetchProbe
from repro.network.omega import OmegaNetwork
from repro.network.packet import Packet
from repro.prefetch.pfu import PrefetchUnit


class CedarMachine:
    """Four Alliant FX/8 clusters, two omega networks, global memory.

    ``monitor_port`` attaches a :class:`PrefetchProbe` to one CE's PFU,
    reproducing the paper's methodology ("we monitored all requests of a
    single processor").
    """

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        monitor_port: Optional[int] = None,
    ) -> None:
        self.config = config
        self.engine = Engine()
        n_ports = max(config.total_ces, config.global_memory.modules)
        net = config.network
        self.forward_network = OmegaNetwork(
            self.engine,
            name="fwd",
            n_ports=n_ports,
            switch_radix=net.switch_radix,
            queue_words=net.queue_words,
            stage_cycles=net.stage_cycles,
            link_words_per_cycle=net.link_words_per_cycle,
            injection_queue_words=net.injection_queue_words,
        )
        if net.shared_single_network and net.reply_escape:
            # one fabric, but replies keep their own injection buffers:
            # stage contention without the entry-point deadlock
            self.reverse_network = self.forward_network.view_with_own_injection("rev")
        elif net.shared_single_network:
            # ablation: requests and replies contend on one fabric
            self.reverse_network = self.forward_network
        else:
            self.reverse_network = OmegaNetwork(
                self.engine,
                name="rev",
                n_ports=n_ports,
                switch_radix=net.switch_radix,
                queue_words=net.queue_words,
                stage_cycles=net.stage_cycles,
                link_words_per_cycle=net.link_words_per_cycle,
                injection_queue_words=net.injection_queue_words,
            )
        self.gmem = GlobalMemory(self.engine, config.global_memory, self.reverse_network)
        from repro.xylem.filesystem import XylemFileSystem

        self.filesystem = XylemFileSystem()
        self.clusters: List[Cluster] = [
            Cluster(self, cid) for cid in range(config.clusters)
        ]
        self.ces: List[CE] = []
        for cid in range(config.clusters):
            for local in range(config.ces_per_cluster):
                ce = CE(self, cid, local)
                self.ces.append(ce)
                self.clusters[cid].ces.append(ce)
        self.probe: Optional[PrefetchProbe] = None
        self._pfus: Dict[int, PrefetchUnit] = {}
        self.monitor_port = monitor_port
        for ce in self.ces:
            probe = None
            if monitor_port is not None and ce.port == monitor_port:
                probe = PrefetchProbe()
                self.probe = probe
            self._pfus[ce.port] = PrefetchUnit(
                self.engine,
                ce.port,
                self.forward_network,
                self.gmem,
                config.prefetch,
                vm_config=config.vm,
                probe=probe,
            )
            self.reverse_network.register_sink(ce.port, self._make_sink(ce.port))
        # memory modules may outnumber CEs; replies only target CE ports,
        # but register a trap on the rest to fail loudly if misrouted.
        for port in range(config.total_ces, n_ports):
            self.reverse_network.register_sink(port, self._unexpected_sink(port))

    # -- wiring -----------------------------------------------------------------

    def _make_sink(self, port: int):
        pfu = None  # resolved lazily; _pfus filled during construction

        def _sink(packet: Packet) -> None:
            handler = packet.meta.get("handler")
            if handler is not None:
                handler(packet)
                return
            if "pfu_stream" in packet.meta:
                self._pfus[port].deliver(packet)
                return
            raise RuntimeError(f"reply at port {port} with no handler: {packet}")

        return _sink

    @staticmethod
    def _unexpected_sink(port: int):
        def _sink(packet: Packet) -> None:
            raise RuntimeError(f"reply delivered to unattached port {port}: {packet}")

        return _sink

    # -- accessors ----------------------------------------------------------------

    def ce(self, port: int) -> CE:
        return self.ces[port]

    def pfu(self, port: int) -> PrefetchUnit:
        return self._pfus[port]

    def cluster_of(self, port: int) -> Cluster:
        return self.clusters[port // self.config.ces_per_cluster]

    # -- running ---------------------------------------------------------------------

    def run_programs(
        self,
        programs: Dict[int, Generator],
        max_events: Optional[int] = None,
    ) -> float:
        """Run one generator program per CE port; returns completion time
        (cycles) of the last CE to finish."""
        for port, program in programs.items():
            self.ce(port).run(program)
        participants = [self.ce(port) for port in programs]
        self.engine.run(
            max_events=max_events,
            stop_when=lambda: all(ce.done for ce in participants),
        )
        if not all(ce.done for ce in participants):
            from repro.core.engine import SimulationError

            stuck = [ce.port for ce in participants if not ce.done]
            raise SimulationError(f"CEs never finished: {stuck}")
        finish = max(ce.stats.finished_at or 0.0 for ce in participants)
        # drain in-flight traffic (e.g. writes the CEs never waited for)
        # so memory/network counters are complete; `finish` is unaffected.
        self.engine.run(max_events=max_events)
        return finish

    # -- topology description (Figures 1 and 2) -----------------------------------------

    def describe_topology(self) -> Dict[str, object]:
        """Structural summary used by the Figure 1/2 reproduction bench."""
        return {
            "clusters": self.config.clusters,
            "ces_per_cluster": self.config.ces_per_cluster,
            "total_ces": self.config.total_ces,
            "networks": 2,
            "network_stages": self.forward_network.n_stages,
            "stage_radices": list(self.forward_network.radices),
            "memory_modules": self.config.global_memory.modules,
            "global_memory_mb": self.config.global_memory.size_bytes // (1 << 20),
            "cluster_memory_mb": self.config.cluster_memory.size_bytes // (1 << 20),
            "cache_kb": self.config.cache.size_bytes // 1024,
            "peak_mflops": round(self.config.peak_mflops, 1),
            "effective_peak_mflops": round(self.config.effective_peak_mflops, 1),
        }
