"""Core: configuration, event engine, and the assembled Cedar machine."""

from repro.core.config import (
    CEConfig,
    CacheConfig,
    CedarConfig,
    ClusterMemoryConfig,
    ConcurrencyBusConfig,
    DEFAULT_CONFIG,
    GlobalMemoryConfig,
    NetworkConfig,
    PrefetchConfig,
    RuntimeConfig,
    VMConfig,
)
from repro.core.context import Component, ComponentAdapter, SimContext
from repro.core.engine import Engine, SimulationError
from repro.core.machine import CedarMachine

__all__ = [
    "Component",
    "ComponentAdapter",
    "SimContext",
    "CEConfig",
    "CacheConfig",
    "CedarConfig",
    "ClusterMemoryConfig",
    "ConcurrencyBusConfig",
    "DEFAULT_CONFIG",
    "GlobalMemoryConfig",
    "NetworkConfig",
    "PrefetchConfig",
    "RuntimeConfig",
    "VMConfig",
    "Engine",
    "SimulationError",
    "CedarMachine",
]
