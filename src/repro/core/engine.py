"""Discrete-event simulation engine.

The simulator's native time unit is the CE instruction cycle.  Components
schedule callbacks at absolute cycle times; ties are broken in FIFO
scheduling order so simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Engine:
    """A deterministic event-driven simulation kernel.

    >>> eng = Engine()
    >>> hits = []
    >>> eng.schedule(5, lambda: hits.append(eng.now))
    >>> eng.run()
    >>> hits
    [5]
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now: float = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self._now + delay, callback)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run until the queue drains (or a bound is hit); return final time.

        ``until`` bounds simulated time, ``max_events`` bounds work, and
        ``stop_when`` is polled after every event for early termination.
        """
        processed = 0
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            self._now = when
            callback()
            self._events_processed += 1
            processed += 1
            if stop_when is not None and stop_when():
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely livelock"
                )
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
