"""Discrete-event simulation engine.

The simulator's native time unit is the CE instruction cycle.  Components
schedule callbacks at absolute cycle times; ties are broken in FIFO
scheduling order so simulations are fully deterministic.

Hot-path design
---------------

Events are *slot-based records*: plain lists ``[when, seq, callback,
args]`` ordered by ``(when, seq)``.  The record doubles as the
**cancellation handle** — :meth:`Engine.cancel` blanks the callback
slot in place, so cancellation is O(1) and cancelled slots are skipped
(and reclaimed) when they surface at the head of the queue.

Executed records are recycled through a bounded **free list** instead
of being re-allocated per event: the run loops push each drained
record (blanked of its callback and args) onto the free list and
``schedule`` / ``schedule_after`` refill from it, so steady-state
scheduling allocates nothing.  The cancellation contract is therefore
*until the event runs*: a handle whose event has executed is dead and
``cancel`` on it returns ``False`` (the record may since have been
recycled into a different pending event — holding handles past
execution to cancel them later was never meaningful and is now
undefined).

The pending set is split into two structures:

* a **sorted tail** (deque): most simulation scheduling is monotone —
  each event is scheduled at or after the latest pending time — so an
  append keeps the deque sorted by ``(when, seq)`` with no heap work;
* a **heap** for the out-of-order remainder.

The run loop merges the two sorted sequences by comparing their heads.
Chained hot loops (the PFU issue loop, resource service/finish) hit
the deque path: O(1) append, O(1) popleft, no sift.

Callbacks take positional ``*args`` captured in the record, so hot
loops schedule *bound methods with arguments* instead of allocating a
fresh closure per event.

:meth:`Engine.run_until_idle` is the batch fast path: a tight drain
loop with no bound/predicate checks per event.  ``run()`` delegates to
it whenever no bound is requested.

Batched dispatch
----------------

:class:`BatchedEngine` restructures both the pending set and the drain
around the observation that events *cluster on timestamps* (a
cycle-synchronous machine finishes tens of services per cycle):

* the pending set becomes a **bucket queue** — a dict mapping each
  pending timestamp to the list of its event records, plus a heap of
  the *unique* timestamps.  Scheduling is one dict probe and an append
  (no per-record heap sift; the heap sees one push per new timestamp,
  roughly the number of distinct cycles instead of the number of
  events), and bucket lists are sequence-ordered for free because
  sequence numbers are globally monotone — appends arrive in seq
  order, so a popped bucket IS the dispatch order with no sort;
* the drain pops one whole timestamp bucket per transaction, stores
  the clock once per batch, and hands consecutive events bound to the
  same underlying function to a registered **group handler**
  (:func:`register_batch_handler`) in one Python call instead of one
  frame per event.  Group handlers inline hot callback chains (see
  ``repro.network.resource``) while performing the identical state
  mutations in the identical order — cancellation, ``request_stop``
  mid-batch, and the resume contract all behave exactly as in the
  scalar drain, so cycles, event counts, and final state are
  bit-identical.

:func:`make_engine` selects the engine class from the
``CEDAR_BATCHED`` environment variable (default on); the scalar
:class:`Engine` remains the reference semantics and the fallback for
bounded/watchdogged runs.
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from time import perf_counter as _perf_counter
from types import MethodType as _MethodType
from typing import Callable, Dict, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop

#: A scheduled event slot: ``[when, seq, callback, args]``.  ``callback``
#: is ``None`` once cancelled.  The list itself is the cancellation handle.
EventHandle = list

#: free-list depth cap: enough to absorb the steady-state churn of a
#: large machine without pinning unbounded memory after a burst.
_FREE_LIST_MAX = 8192

#: default pulse cadence (processed events between pulse-hook visits
#: when no caller watchdog supplies its own ``check_every``).
PULSE_CHECK_EVERY = 4096


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


# ---------------------------------------------------------------------------
# batched group dispatch
#
# A group handler receives one same-timestamp batch and a start index
# whose record's callback is a bound method of its registered function
# (e.g. a ``Resource._finish`` due this cycle) and dispatches the
# maximal run of such records in one Python call.  The registry is
# keyed on the unbound function object; only :class:`BatchedEngine`
# consults it.

#: unbound function -> ``handler(engine, batch, i, n) -> (next_i, executed)``.
#: The handler must consume records from ``batch[i]`` forward, in
#: order, for as long as each record is cancelled (``callback is
#: None`` — decrement ``engine._cancelled`` and recycle the slot) or
#: bound to the registered function (dispatch it: blank and recycle
#: the record).  It returns ``(next_i, executed)`` at the first record
#: bound elsewhere, at ``n``, or — with the index of the first
#: *unconsumed* record — immediately after a dispatched callback calls
#: :meth:`Engine.request_stop`.  ``executed`` counts non-cancelled
#: dispatches only.  The handler must always make progress (consume at
#: least one record) when ``batch[i]`` matches its function.  When an
#: exception escapes a dispatched callback, the handler must post
#: ``engine._group_progress = (next_i, executed)`` — counting the
#: raising record as consumed — before propagating, so the drain
#: requeues exactly the unconsumed remainder and never re-queues
#: records the handler already executed or recycled.
_BATCH_HANDLERS: Dict[object, Callable] = {}


def register_batch_handler(func: Callable, handler: Callable) -> Callable:
    """Register ``handler`` as the group dispatcher for events whose
    callback is a bound method of ``func``.  Returns ``handler``.

    The handler must be *semantically transparent*: dispatching the run
    through it performs exactly the state mutations, in exactly the
    order, that calling each record's callback in sequence would — the
    bit-identity contract between :class:`BatchedEngine` and
    :class:`Engine` rests on this.
    """
    _BATCH_HANDLERS[func] = handler
    return handler


def batched_enabled() -> bool:
    """Whether ``CEDAR_BATCHED`` selects the batched engine (default on).

    Read at call time, not import time, so tests and the identity
    harness can flip the gate between runs in one process.
    """
    return os.environ.get("CEDAR_BATCHED", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


def make_engine() -> "Engine":
    """The feature-gated engine factory: a :class:`BatchedEngine` when
    ``CEDAR_BATCHED`` is on (the default), a scalar :class:`Engine`
    otherwise.  Machine assembly (``SimContext``) builds its engine
    through this, so one environment variable flips every simulation in
    the process between the two drains."""
    return BatchedEngine() if batched_enabled() else Engine()


class WatchdogError(SimulationError):
    """Raised when a :class:`Watchdog` aborts a run.

    ``dump`` carries the engine's diagnostic state snapshot
    (:meth:`Engine.dump_state`) taken at the moment of the abort.
    """

    def __init__(self, message: str, dump: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.dump = dump or {}


class Watchdog:
    """Run supervisor: budgets and no-progress (livelock) detection.

    Attach to an engine with :meth:`Engine.attach_watchdog`; every
    ``check_every`` processed events the watchdog verifies:

    * **cycle budget** — simulated cycles consumed since arming stay
      within ``max_cycles``;
    * **event budget** — events processed since arming stay within
      ``max_events``;
    * **progress** — the ``progress`` fingerprint (any equality-
      comparable value; the caller supplies a callable describing real
      forward progress, e.g. packets delivered + programs finished)
      changes at least once every ``stall_checks`` consecutive checks.
      With no ``progress`` callable, the engine clock is the
      fingerprint: a frozen clock across a full stall window is the
      classic zero-delay event livelock.

    A violation raises :class:`WatchdogError` carrying a diagnostic
    state dump.  The watchdog is a pure observer — a run that stays
    within budget and keeps progressing is bit-identical with and
    without it (it only *reads* engine state).
    """

    __slots__ = (
        "max_cycles",
        "max_events",
        "progress",
        "check_every",
        "stall_checks",
        "on_check",
        "_cycles_at_arm",
        "_events_at_arm",
        "_since_check",
        "_last_fp",
        "_stall_count",
    )

    #: sentinel distinguishing "no fingerprint yet" from any real value.
    _UNSET = object()

    def __init__(
        self,
        max_cycles: Optional[float] = None,
        max_events: Optional[int] = None,
        progress: Optional[Callable[[], object]] = None,
        check_every: int = 8192,
        stall_checks: int = 8,
        on_check: Optional[Callable[["Engine"], None]] = None,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be at least one event")
        if stall_checks < 1:
            raise ValueError("stall_checks must be at least one check")
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.progress = progress
        self.check_every = check_every
        self.stall_checks = stall_checks
        #: optional cadence hook, called with the engine at every check
        #: before the budget tests — how heartbeat pulses piggyback on
        #: the watchdog's periodic visits without a second counter on
        #: the event loop.  Must only *read* engine state.
        self.on_check = on_check
        self._cycles_at_arm = 0.0
        self._events_at_arm = 0
        self._since_check = 0
        self._last_fp: object = Watchdog._UNSET
        self._stall_count = 0

    def _arm(self, engine: "Engine") -> None:
        self._cycles_at_arm = engine.now
        self._events_at_arm = engine.events_processed
        self._since_check = 0
        self._last_fp = Watchdog._UNSET
        self._stall_count = 0

    def _check(self, engine: "Engine") -> None:
        if self.on_check is not None:
            self.on_check(engine)
        cycles = engine.now - self._cycles_at_arm
        if self.max_cycles is not None and cycles > self.max_cycles:
            self._abort(
                engine,
                f"cycle budget exceeded: {cycles:.0f} > {self.max_cycles:.0f}",
            )
        events = engine.events_processed - self._events_at_arm
        if self.max_events is not None and events > self.max_events:
            self._abort(
                engine,
                f"event budget exceeded: {events} > {self.max_events}",
            )
        fp = self.progress() if self.progress is not None else engine.now
        if fp == self._last_fp:
            self._stall_count += 1
            if self._stall_count >= self.stall_checks:
                window = self.stall_checks * self.check_every
                self._abort(
                    engine,
                    f"no progress across {window} events "
                    f"(fingerprint frozen at {fp!r}); likely livelock",
                )
        else:
            self._last_fp = fp
            self._stall_count = 0

    def _abort(self, engine: "Engine", reason: str) -> None:
        raise WatchdogError(f"watchdog abort: {reason}", engine.dump_state())


class Engine:
    """A deterministic event-driven simulation kernel.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(5, lambda: hits.append(eng.now))
    >>> _ = eng.run()
    >>> hits
    [5]

    **Resume contract**: ``run(until=T)`` advances ``now`` to exactly
    ``T`` and leaves every event scheduled after ``T`` on the queue.  A
    subsequent ``run()`` (or ``run(until=T2)``) continues from the
    preserved queue with no events lost, duplicated, or reordered —
    bounded runs compose: ``run(until=a); run()`` processes the same
    events at the same times as a single unbounded ``run()``.
    """

    __slots__ = (
        "_heap",
        "_tail",
        "_tail_last",
        "_next_seq",
        "_now",
        "_events_processed",
        "_cancelled",
        "_stop_requested",
        "_run_wall_s",
        "_runs",
        "_watchdog",
        "_pulse",
        "_pulse_every",
        "_pulse_watchdog",
        "_free",
    )

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._tail: deque = deque()
        #: recycled event records (blanked); schedule paths refill from
        #: here so steady-state scheduling allocates no new lists.
        self._free: List[list] = []
        #: timestamp of the tail's last record; -inf when the tail is
        #: empty, so the monotone-append test is one float compare.
        self._tail_last = float("-inf")
        self._next_seq = itertools.count().__next__
        self._now: float = 0.0
        self._events_processed = 0
        self._cancelled = 0
        self._stop_requested = False
        #: wall-clock seconds spent inside run loops (self-metrics).
        self._run_wall_s = 0.0
        self._runs = 0
        #: armed run supervisor; None keeps the unchecked fast paths.
        self._watchdog: Optional[Watchdog] = None
        #: armed pulse hook (heartbeats); rides the watchdog cadence.
        self._pulse: Optional[Callable[["Engine"], None]] = None
        self._pulse_every = PULSE_CHECK_EVERY
        #: the internal pulse-only watchdog, when one is armed (so
        #: detach_watchdog can tell it apart from a caller's).
        self._pulse_watchdog: Optional[Watchdog] = None

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, when: float, callback: Callable, *args) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when`` (>= now).

        Returns the event's slot record, usable with :meth:`cancel`.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        free = self._free
        if free:
            record = free.pop()
            record[0] = when
            record[1] = self._next_seq()
            record[2] = callback
            record[3] = args
        else:
            record = [when, self._next_seq(), callback, args]
        if when >= self._tail_last or not self._tail:
            self._tail.append(record)
            self._tail_last = when
        else:
            _heappush(self._heap, record)
        return record

    def schedule_after(self, delay: float, callback: Callable, *args) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self._now + delay
        free = self._free
        if free:
            record = free.pop()
            record[0] = when
            record[1] = self._next_seq()
            record[2] = callback
            record[3] = args
        else:
            record = [when, self._next_seq(), callback, args]
        if when >= self._tail_last or not self._tail:
            self._tail.append(record)
            self._tail_last = when
        else:
            _heappush(self._heap, record)
        return record

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event by its handle.

        O(1): the slot is blanked in place and reclaimed lazily when it
        reaches the head of the queue.  Returns ``False`` if the event
        already ran or was already cancelled.
        """
        if handle[2] is None:
            return False
        handle[2] = None
        handle[3] = ()
        self._cancelled += 1
        return True

    def request_stop(self) -> None:
        """Ask the running loop to stop after the current event.

        Cheaper than a ``stop_when`` predicate (a flag check instead of
        a callback per event); used by completion-counting drivers like
        :meth:`~repro.core.machine.CedarMachine.run_programs`.
        """
        self._stop_requested = True

    def run_until_idle(self) -> float:
        """Batch fast path: drain the queue with no per-event bound,
        predicate, or budget checks; returns the final time.

        Honors :meth:`request_stop` and skips cancelled slots.  With a
        caller watchdog armed the drain routes through the checked loop
        instead (``run()``'s fast path also requires no watchdog, so
        this does not recurse); with only the pulse-only supervisor
        armed it takes the pulsed fast drain.
        """
        if self._watchdog is not None:
            if self._watchdog is self._pulse_watchdog:
                return self._drain_pulsed()
            return self.run(until=None)
        self._stop_requested = False
        heap = self._heap
        tail = self._tail
        pop = _heappop
        popleft = tail.popleft
        free = self._free
        free_max = _FREE_LIST_MAX
        processed = 0
        started = _perf_counter()
        try:
            while True:
                if heap:
                    if tail and tail[0] < heap[0]:
                        record = popleft()
                    else:
                        record = pop(heap)
                else:
                    try:
                        record = popleft()
                    except IndexError:
                        break
                callback = record[2]
                if callback is None:
                    self._cancelled -= 1
                    if len(free) < free_max:
                        free.append(record)
                    continue
                self._now = record[0]
                args = record[3]
                # blank the slot first: cancel() on an executed handle is
                # then a no-op returning False, and the record drops its
                # callback/args references immediately.
                record[2] = None
                record[3] = ()
                # plain call beats CALL_FUNCTION_EX on the no-arg path
                if args:
                    callback(*args)
                else:
                    callback()
                # recycle after the callback: any events it scheduled
                # took records from the free list, never this one.
                if len(free) < free_max:
                    free.append(record)
                processed += 1
                if self._stop_requested:
                    break
        finally:
            self._events_processed += processed
            self._run_wall_s += _perf_counter() - started
            self._runs += 1
        return self._now

    def _drain_pulsed(self) -> float:
        """Fast drain with only the pulse-only supervisor armed: the
        same unchecked loop as :meth:`run_until_idle` plus one
        local-counter compare per event to visit the read-only pulse at
        its cadence.  Event order and callbacks are untouched — pulsed
        runs stay bit-identical with bare ones — at a fraction of the
        checked loop's per-event bookkeeping cost.  ``_events_processed``
        is flushed before each pulse visit so the hook reads a current
        count."""
        self._stop_requested = False
        heap = self._heap
        tail = self._tail
        pop = _heappop
        popleft = tail.popleft
        free = self._free
        free_max = _FREE_LIST_MAX
        pulse = self._pulse
        next_pulse = self._pulse_every
        processed = 0
        flushed = 0
        started = _perf_counter()
        try:
            while True:
                if heap:
                    if tail and tail[0] < heap[0]:
                        record = popleft()
                    else:
                        record = pop(heap)
                else:
                    try:
                        record = popleft()
                    except IndexError:
                        break
                callback = record[2]
                if callback is None:
                    self._cancelled -= 1
                    if len(free) < free_max:
                        free.append(record)
                    continue
                self._now = record[0]
                args = record[3]
                record[2] = None
                record[3] = ()
                if args:
                    callback(*args)
                else:
                    callback()
                if len(free) < free_max:
                    free.append(record)
                processed += 1
                if processed >= next_pulse:
                    next_pulse = processed + self._pulse_every
                    self._events_processed += processed - flushed
                    flushed = processed
                    if pulse is not None:
                        pulse(self)
                if self._stop_requested:
                    break
        finally:
            self._events_processed += processed - flushed
            self._run_wall_s += _perf_counter() - started
            self._runs += 1
        return self._now

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run until the queue drains (or a bound is hit); return final time.

        ``until`` bounds simulated time, ``max_events`` bounds work, and
        ``stop_when`` is polled after every event for early termination.
        With no bounds at all this delegates to :meth:`run_until_idle`.

        After an ``until``-bounded return, ``now == until`` and the
        queue is intact; calling ``run()`` again *continues correctly*
        (see the class docstring's resume contract).
        """
        if until is None and max_events is None and stop_when is None:
            if self._watchdog is None:
                return self.run_until_idle()
            if self._watchdog is self._pulse_watchdog:
                return self._drain_pulsed()
        self._stop_requested = False
        heap = self._heap
        tail = self._tail
        pop = _heappop
        popleft = tail.popleft
        started = _perf_counter()
        try:
            self._run_bounded(until, max_events, stop_when, heap, tail, pop, popleft)
        finally:
            self._run_wall_s += _perf_counter() - started
            self._runs += 1
        return self._now

    def _run_bounded(self, until, max_events, stop_when, heap, tail, pop, popleft):
        processed = 0
        wd = self._watchdog
        free = self._free
        while True:
            if heap:
                if tail and tail[0] < heap[0]:
                    head, from_tail = tail[0], True
                else:
                    head, from_tail = heap[0], False
            elif tail:
                head, from_tail = tail[0], True
            else:
                break
            if head[2] is None:
                popleft() if from_tail else pop(heap)
                self._cancelled -= 1
                if len(free) < _FREE_LIST_MAX:
                    free.append(head)
                continue
            when = head[0]
            if until is not None and when > until:
                self._now = until
                break
            popleft() if from_tail else pop(heap)
            self._now = when
            callback = head[2]
            args = head[3]
            head[2] = None
            head[3] = ()
            if args:
                callback(*args)
            else:
                callback()
            if len(free) < _FREE_LIST_MAX:
                free.append(head)
            self._events_processed += 1
            processed += 1
            if wd is not None:
                wd._since_check += 1
                if wd._since_check >= wd.check_every:
                    wd._since_check = 0
                    wd._check(self)
            if self._stop_requested:
                break
            if stop_when is not None and stop_when():
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely livelock"
                )

    # -- supervision -------------------------------------------------------

    def attach_watchdog(self, watchdog: Watchdog) -> Watchdog:
        """Arm ``watchdog`` over subsequent runs (budgets and progress
        count from this moment).  Runs route through the checked loop
        until :meth:`detach_watchdog`.  An armed pulse survives: it
        rides the new watchdog's check cadence (via ``on_check``) while
        the watchdog is armed and re-arms on its own when it detaches.
        """
        watchdog._arm(self)
        if self._pulse is not None and watchdog.on_check is None:
            watchdog.on_check = self._pulse
        self._watchdog = watchdog
        self._pulse_watchdog = None
        return watchdog

    def detach_watchdog(self) -> Optional[Watchdog]:
        """Disarm the current watchdog (restoring the unchecked fast
        paths, unless a pulse stays armed) and return it, or None when
        none was armed (a pulse-only supervisor does not count)."""
        watchdog = self._watchdog
        self._watchdog = None
        if watchdog is not None and watchdog is self._pulse_watchdog:
            self._pulse_watchdog = None
            return None
        if watchdog is not None and watchdog.on_check is self._pulse:
            watchdog.on_check = None
        if self._pulse is not None:
            self._arm_pulse_watchdog()
        return watchdog

    def attach_pulse(
        self,
        pulse: Callable[["Engine"], None],
        every: int = PULSE_CHECK_EVERY,
    ) -> Callable[["Engine"], None]:
        """Arm a periodic read-only hook: ``pulse(engine)`` roughly every
        ``every`` processed events, piggybacking on the watchdog check
        cadence (worker heartbeats use this).  With no caller watchdog
        armed, a budget-free pulse-only supervisor routes unbounded
        drains through the pulsed fast path (:meth:`_drain_pulsed`) and
        bounded runs through the checked loop; when a caller arms a real
        watchdog the pulse rides its checks instead.  The hook must only
        read engine state, so pulsed runs stay bit-identical with
        unpulsed ones."""
        self._pulse = pulse
        self._pulse_every = every
        if self._watchdog is not None:
            if self._watchdog.on_check is None:
                self._watchdog.on_check = pulse
        else:
            self._arm_pulse_watchdog()
        return pulse

    def detach_pulse(self) -> Optional[Callable[["Engine"], None]]:
        """Disarm the pulse hook (restoring the unchecked fast paths
        when no caller watchdog is armed) and return it, or None."""
        pulse = self._pulse
        self._pulse = None
        if self._watchdog is not None:
            if self._watchdog is self._pulse_watchdog:
                self._watchdog = None
            elif self._watchdog.on_check is pulse:
                self._watchdog.on_check = None
        self._pulse_watchdog = None
        return pulse

    def _arm_pulse_watchdog(self) -> None:
        # budget-free supervisor whose only job is the cadence visit; a
        # fresh-counter progress fingerprint always changes, so it can
        # never declare a livelock on its own.
        watchdog = Watchdog(
            check_every=self._pulse_every,
            progress=itertools.count().__next__,
            on_check=self._pulse,
        )
        watchdog._arm(self)
        self._watchdog = watchdog
        self._pulse_watchdog = watchdog

    def dump_state(self, limit: int = 10) -> Dict[str, object]:
        """Diagnostic snapshot for abort reports: the self-metrics plus
        the next ``limit`` live queued events with callback names —
        enough to see *what* a stuck simulation keeps rescheduling."""
        live = [r for r in self._pending_records() if r[2] is not None]
        live.sort(key=lambda r: (r[0], r[1]))
        upcoming = [
            {
                "when": record[0],
                "seq": record[1],
                "callback": getattr(
                    record[2], "__qualname__", repr(record[2])
                ),
            }
            for record in live[:limit]
        ]
        state = self.self_metrics()
        state["upcoming"] = upcoming
        return state

    def _pending_records(self):
        """Every queued record (live and cancelled), storage-agnostic —
        the seam :meth:`dump_state` reads so engine subclasses with a
        different pending-set layout only override this."""
        yield from self._tail
        yield from self._heap

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) + len(self._tail) - self._cancelled

    @property
    def run_wall_s(self) -> float:
        """Wall-clock seconds spent inside run loops since reset."""
        return self._run_wall_s

    def self_metrics(self) -> Dict[str, object]:
        """The engine's own observability counters: dispatch volume,
        realized events/sec, and queue depths.  This is the native data
        source for the BENCH trajectory and per-run reports."""
        wall = self._run_wall_s
        return {
            "events_processed": self._events_processed,
            "events_per_sec": round(self._events_processed / wall, 1) if wall > 0 else 0.0,
            "run_wall_s": round(wall, 6),
            "runs": self._runs,
            "sim_cycles": self._now,
            "pending": self.pending(),
            "queue_depth_tail": len(self._tail),
            "queue_depth_heap": len(self._heap),
            "cancelled_pending": self._cancelled,
        }

    def reset(self) -> None:
        """Return to time zero with an empty queue, in place — holders
        of an engine reference (components) stay valid."""
        self._heap.clear()
        self._tail.clear()
        self._free.clear()
        self._tail_last = float("-inf")
        self._next_seq = itertools.count().__next__
        self._now = 0.0
        self._events_processed = 0
        self._cancelled = 0
        self._stop_requested = False
        self._run_wall_s = 0.0
        self._runs = 0
        self._watchdog = None
        self._pulse = None
        self._pulse_watchdog = None


class BatchedEngine(Engine):
    """The cycle-synchronous batched drain (see the module docstring).

    Same public surface and bit-identical behaviour as :class:`Engine`,
    with a different pending-set layout: a **bucket queue** — a dict
    mapping each pending timestamp to its (seq-ordered) list of event
    records, plus a heap of the unique pending timestamps.  Scheduling
    costs one dict probe and a list append; the heap is touched once
    per *distinct timestamp*, not once per event.  Bounded and
    watchdog-supervised runs dispatch scalar (one callback per Python
    call, per-event checks) over the same buckets, so supervision
    semantics match the reference engine exactly.

    >>> eng = BatchedEngine()
    >>> hits = []
    >>> _ = eng.schedule(5, lambda: hits.append(eng.now))
    >>> _ = eng.run()
    >>> hits
    [5]
    """

    __slots__ = ("_buckets", "_ts_heap", "_group_progress")

    def __init__(self) -> None:
        super().__init__()
        #: pending timestamp -> list of event records in seq order.
        #: Invariant: ``when`` is a key of ``_buckets`` iff ``when`` is
        #: in ``_ts_heap`` (exactly once) — maintained by scheduling
        #: (push on bucket creation only) and the drains (pop both
        #: together).
        self._buckets: Dict[float, List[list]] = {}
        self._ts_heap: List[float] = []
        #: ``(next_i, executed)`` posted by a group handler that is
        #: propagating an exception, so the drain requeues exactly the
        #: unconsumed remainder (see :func:`register_batch_handler`).
        self._group_progress: Optional[Tuple[int, int]] = None

    # -- scheduling into the bucket queue ----------------------------------

    def schedule(self, when: float, callback: Callable, *args) -> EventHandle:
        """See :meth:`Engine.schedule`; same contract, bucket storage.

        Bucket append order *is* scheduling order, so records need no
        sequence stamp — the seq slot stays 0 (every record in a
        batched engine carries 0, keeping :meth:`dump_state`'s stable
        sort equal to dispatch order)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        free = self._free
        if free:
            record = free.pop()
            record[0] = when
            record[2] = callback
            record[3] = args
        else:
            record = [when, 0, callback, args]
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [record]
            _heappush(self._ts_heap, when)
        else:
            bucket.append(record)
        return record

    def schedule_after(self, delay: float, callback: Callable, *args) -> EventHandle:
        """See :meth:`Engine.schedule_after`; same contract, bucket
        storage (see :meth:`schedule` for the seq-slot convention)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self._now + delay
        free = self._free
        if free:
            record = free.pop()
            record[0] = when
            record[2] = callback
            record[3] = args
        else:
            record = [when, 0, callback, args]
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [record]
            _heappush(self._ts_heap, when)
        else:
            bucket.append(record)
        return record

    def _requeue(self, when: float, batch: List[list], i: int) -> None:
        """Reinstate ``batch[i:]`` as the front of the ``when`` bucket —
        the resume contract after ``request_stop`` mid-batch or an
        exception escaping a callback.  Events scheduled *at* ``when``
        during the batch (strictly higher seq) already re-created the
        bucket; the unconsumed remainder goes in front of them."""
        rest = batch[i:]
        buckets = self._buckets
        existing = buckets.get(when)
        if existing is None:
            buckets[when] = rest
            _heappush(self._ts_heap, when)
        else:
            rest.extend(existing)
            buckets[when] = rest

    # -- introspection over buckets ----------------------------------------

    def _pending_records(self):
        for bucket in self._buckets.values():
            yield from bucket

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(map(len, self._buckets.values())) - self._cancelled

    def reset(self) -> None:
        super().reset()
        self._buckets.clear()
        self._ts_heap.clear()

    # -- run loops ----------------------------------------------------------

    def run_until_idle(self) -> float:
        """Batched fast path: drain per-timestamp buckets.  Routing
        mirrors the scalar engine: a caller watchdog forces the checked
        scalar-dispatch loop, the pulse-only supervisor takes the
        batched drain with pulse visits at batch boundaries."""
        wd = self._watchdog
        if wd is not None:
            if wd is self._pulse_watchdog:
                return self._drain_batched(self._pulse)
            return self.run(until=None)
        return self._drain_batched(None)

    def _drain_pulsed(self) -> float:
        return self._drain_batched(self._pulse)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """See :meth:`Engine.run`; bounded/supervised runs take the
        checked scalar-dispatch loop over the bucket queue."""
        if until is None and max_events is None and stop_when is None:
            if self._watchdog is None:
                return self._drain_batched(None)
            if self._watchdog is self._pulse_watchdog:
                return self._drain_batched(self._pulse)
        self._stop_requested = False
        started = _perf_counter()
        try:
            self._run_bounded_buckets(until, max_events, stop_when)
        finally:
            self._run_wall_s += _perf_counter() - started
            self._runs += 1
        return self._now

    def _run_bounded_buckets(self, until, max_events, stop_when) -> None:
        """The checked loop: scalar dispatch (one callback per Python
        call — no group handlers), per-event watchdog/bound/predicate
        checks, identical semantics to :meth:`Engine._run_bounded`."""
        processed = 0
        wd = self._watchdog
        free = self._free
        buckets = self._buckets
        ts_heap = self._ts_heap
        while ts_heap:
            when = ts_heap[0]
            if until is not None and when > until:
                self._now = until
                return
            _heappop(ts_heap)
            batch = buckets.pop(when)
            self._now = when
            n = len(batch)
            i = 0
            try:
                while i < n:
                    record = batch[i]
                    i += 1
                    callback = record[2]
                    if callback is None:
                        self._cancelled -= 1
                        if len(free) < _FREE_LIST_MAX:
                            free.append(record)
                        continue
                    args = record[3]
                    record[2] = None
                    record[3] = ()
                    if args:
                        callback(*args)
                    else:
                        callback()
                    if len(free) < _FREE_LIST_MAX:
                        free.append(record)
                    self._events_processed += 1
                    processed += 1
                    if wd is not None:
                        wd._since_check += 1
                        if wd._since_check >= wd.check_every:
                            wd._since_check = 0
                            wd._check(self)
                    if self._stop_requested:
                        return
                    if stop_when is not None and stop_when():
                        return
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
            finally:
                # early return, watchdog abort, or a raising callback:
                # the unconsumed remainder goes back on the queue so
                # resumed runs see it untouched.
                if i < n:
                    self._requeue(when, batch, i)

    def _drain_batched(self, pulse: Optional[Callable]) -> float:
        """Pop one whole timestamp bucket per transaction, then
        dispatch it in seq order with group-handler coalescing.

        Semantics identical to :meth:`Engine.run_until_idle`:

        * cancellation — a slot blanked by an *earlier* event in the
          same batch is skipped when its turn comes, exactly as when it
          surfaces at the scalar queue head;
        * ``request_stop`` mid-batch — dispatch stops after the current
          event and the unconsumed remainder of the batch is
          reinstated, so a subsequent run resumes with no events lost,
          duplicated, or reordered;
        * monitoring — ``pulse`` (heartbeats, metric timelines) is
          visited only at batch boundaries, with ``events_processed``
          flushed first, so probes never observe a half-dispatched
          cycle.
        """
        self._stop_requested = False
        buckets = self._buckets
        ts_heap = self._ts_heap
        pop_ts = _heappop
        free = self._free
        free_max = _FREE_LIST_MAX
        get_handler = _BATCH_HANDLERS.get
        method = _MethodType
        pulse_every = self._pulse_every
        next_pulse = pulse_every
        processed = 0
        flushed = 0
        started = _perf_counter()
        try:
            while ts_heap:
                when = pop_ts(ts_heap)
                batch = buckets.pop(when)
                self._now = when
                n = len(batch)
                i = 0
                try:
                    while i < n:
                        record = batch[i]
                        cb = record[2]
                        if cb is None:
                            self._cancelled -= 1
                            if len(free) < free_max:
                                free.append(record)
                            i += 1
                            continue
                        if cb.__class__ is method:
                            handler = get_handler(cb.__func__)
                            if handler is not None:
                                # group run: the handler consumes the
                                # maximal run of records bound to its
                                # function (cancelled slots ride along)
                                # in one Python call.
                                try:
                                    i, done = handler(self, batch, i, n)
                                except BaseException:
                                    progress = self._group_progress
                                    if progress is not None:
                                        self._group_progress = None
                                        i, done = progress
                                        processed += done
                                    raise
                                processed += done
                                if self._stop_requested:
                                    break
                                continue
                        # consume before dispatch: a raising callback is
                        # spent (exactly as in the scalar drain), so the
                        # requeue below reinstates only ``batch[i:]``.
                        record[2] = None
                        args = record[3]
                        record[3] = ()
                        i += 1
                        if args:
                            cb(*args)
                        else:
                            cb()
                        if len(free) < free_max:
                            free.append(record)
                        processed += 1
                        if self._stop_requested:
                            break
                finally:
                    if i < n:
                        self._requeue(when, batch, i)
                if self._stop_requested:
                    break
                if pulse is not None and processed >= next_pulse:
                    self._events_processed += processed - flushed
                    flushed = processed
                    next_pulse = processed + pulse_every
                    pulse(self)
        finally:
            self._events_processed += processed - flushed
            self._run_wall_s += _perf_counter() - started
            self._runs += 1
        return self._now
