"""Deterministic fault injection for the Cedar reproduction.

See :mod:`repro.faults.plan` for the declarative fault schedule and
:mod:`repro.faults.injector` for the machine component that arms it.

The injector is imported lazily (PEP 562): :mod:`repro.core.config`
embeds a :class:`FaultPlan`, and an eager injector import here would
close a cycle through the machine modules the injector instruments.
"""

from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan"]


def __getattr__(name: str):
    if name == "FaultInjector":
        from repro.faults.injector import FaultInjector

        return FaultInjector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
