"""FaultPlan: the seeded, declarative description of what may fail.

Cedar's memory path was engineered for loss-free degradation — two-word
port queues with backpressure retry, lockup-free caches, per-module
recovery — so the interesting robustness questions are about *transient*
failures the hardware rides through, not silent data loss.  A
:class:`FaultPlan` declares three such fault classes and their rates:

* **transient switch-port failures**: a stage output port drops the
  transfer it was about to make; the packet re-arbitrates for the port
  after an exponentially growing backoff;
* **stage-port outages**: a port goes *down* for a fixed window; traffic
  already queued waits it out, and new injections whose route crosses
  the down port escape into the reply fabric (the shared-escape network
  variant) for the duration;
* **memory-module ECC stall/retry** and **sync-processor timeouts**:
  the module detects a correctable error (or its synchronization
  processor misses its window) and holds the access for a retry cycle
  before servicing it.

The plan is *data*: plain frozen floats, hashed into
:meth:`~repro.core.config.CedarConfig.stable_hash`, so cached
experiment results are keyed by the fault schedule too.  All randomness
is derived deterministically from ``seed`` per injection site (see
:class:`~repro.faults.injector.FaultInjector`) — the same plan on the
same machine reproduces the same faults, cycle for cycle.

A plan with every rate at zero is *inert*: machine assembly skips the
injector entirely and the simulation is bit-identical to one built
before this subsystem existed (the zero-cost guarantee, extended).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault-injection schedule for one machine."""

    #: root seed; every injection site derives its own stream from it.
    seed: int = 0
    #: per-service-start probability a stage port drops the transfer
    #: (the packet re-arbitrates after exponential backoff).
    switch_fail_rate: float = 0.0
    #: per-service-start probability a stage port goes down outright.
    port_down_rate: float = 0.0
    #: how long a down port stays down, in cycles.
    port_down_cycles: float = 200.0
    #: per-access probability a memory module takes an ECC stall/retry.
    ecc_rate: float = 0.0
    #: cycles one ECC stall/retry holds the module before the access.
    ecc_stall_cycles: float = 16.0
    #: per-sync-op probability the sync processor times out and retries.
    sync_timeout_rate: float = 0.0
    #: cycles one sync-processor timeout costs before the op executes.
    sync_timeout_cycles: float = 48.0
    #: exponential re-arbitration backoff: base * factor^(n-1), capped.
    backoff_base_cycles: float = 2.0
    backoff_factor: float = 2.0
    backoff_max_cycles: float = 64.0

    def __post_init__(self) -> None:
        for name in (
            "switch_fail_rate",
            "port_down_rate",
            "ecc_rate",
            "sync_timeout_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.backoff_base_cycles <= 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be positive and non-shrinking")

    @property
    def enabled(self) -> bool:
        """Whether any fault class can actually fire."""
        return (
            self.switch_fail_rate > 0.0
            or self.port_down_rate > 0.0
            or self.ecc_rate > 0.0
            or self.sync_timeout_rate > 0.0
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultPlan":
        """One-knob plan for sweep studies: transient, ECC, and sync
        faults at ``rate``; full port outages an order rarer."""
        return cls(
            seed=seed,
            switch_fail_rate=rate,
            ecc_rate=rate,
            sync_timeout_rate=rate,
            port_down_rate=rate / 10.0,
            **overrides,
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same schedule shape under a different random stream."""
        return replace(self, seed=seed)
