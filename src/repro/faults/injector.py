"""FaultInjector: deterministic fault injection wired through SimContext.

The injector is a regular machine component (attach/reset/stats/
describe).  At attach time it walks the context's registry and arms
every contended resource it understands:

* each **network stage port** gets a :class:`_PortSite` — transient
  drop-and-re-arbitrate failures and full outages;
* each **memory module** gets a :class:`_ModuleSite` — ECC stall/retry
  cycles and sync-processor timeouts;
* the **forward network** gets this injector as its ``fault_router``,
  enabling degraded-mode escape routing: when a new injection's route
  crosses a port that is currently down, the packet is injected into an
  escape *view* of the reverse fabric instead (the shared-escape
  network variant built with
  :meth:`~repro.network.omega.OmegaNetwork.view_with_own_injection`),
  so requests keep flowing — at shared-fabric contention cost — while
  the port recovers.

Determinism
-----------

Every site owns a private :class:`random.Random` seeded from
``sha256(plan.seed, site name)`` — not Python's salted ``hash`` — so
the decision stream at each site depends only on the plan seed and the
(deterministic) order of service attempts at that site.  Two runs of
the same machine under the same plan produce identical faults, cycle
counts, and metrics; ``reset()`` re-seeds every site so a reused
machine replays the same schedule.

Observability
-------------

Sites publish on the ``fault.*`` signal channels (see
:mod:`repro.monitor.signals`) through the usual guarded fast path, and
the injector keeps plain counters surfaced via ``stats()``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.gmemory.module import GlobalMemory, MemoryModule
from repro.monitor.signals import NULL_SIGNAL
from repro.network.omega import OmegaNetwork
from repro.network.packet import PacketKind
from repro.network.resource import Resource, Transit


def _site_rng(seed: int, name: str) -> random.Random:
    """A private random stream for one site, stable across processes."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class _PortSite:
    """Fault state of one switch output port."""

    __slots__ = ("injector", "rng", "name", "consecutive")

    def __init__(self, injector: "FaultInjector", name: str) -> None:
        self.injector = injector
        self.name = name
        self.rng = _site_rng(injector.plan.seed, name)
        self.consecutive = 0

    def reseed(self) -> None:
        self.rng = _site_rng(self.injector.plan.seed, self.name)
        self.consecutive = 0

    def before_service(self, resource: Resource, transit: Transit) -> float:
        """Cycles the port must hold before this service may start
        (0.0 means the transfer proceeds normally)."""
        inj = self.injector
        plan = inj.plan
        now = resource.engine.now
        until = inj._down.get(resource)
        if until is not None:
            if now < until:
                # port is down: wait out the remaining outage, then the
                # retried service start rolls again.
                return until - now
            del inj._down[resource]
        rng = self.rng
        if plan.port_down_rate and rng.random() < plan.port_down_rate:
            until = now + plan.port_down_cycles
            inj._down[resource] = until
            inj.port_downs += 1
            sig = inj._sig_port_down
            if sig.callbacks:
                sig.emit(resource, now, until)
            return plan.port_down_cycles
        if plan.switch_fail_rate and rng.random() < plan.switch_fail_rate:
            self.consecutive += 1
            backoff = min(
                plan.backoff_base_cycles
                * plan.backoff_factor ** (self.consecutive - 1),
                plan.backoff_max_cycles,
            )
            inj.transients += 1
            sig = inj._sig_transient
            if sig.callbacks:
                sig.emit(resource, transit.packet, now, backoff)
            return backoff
        self.consecutive = 0
        return 0.0


class _ModuleSite:
    """Fault state of one global-memory module."""

    __slots__ = ("injector", "rng", "name", "module")

    def __init__(
        self, injector: "FaultInjector", name: str, module: MemoryModule
    ) -> None:
        self.injector = injector
        self.name = name
        self.module = module
        self.rng = _site_rng(injector.plan.seed, name)

    def reseed(self) -> None:
        self.rng = _site_rng(self.injector.plan.seed, self.name)

    def before_service(self, resource: Resource, transit: Transit) -> float:
        inj = self.injector
        plan = inj.plan
        packet = transit.packet
        if packet.kind is PacketKind.SYNC_REQ:
            if plan.sync_timeout_rate and self.rng.random() < plan.sync_timeout_rate:
                self.module.sync_timeouts += 1
                inj.sync_timeouts += 1
                sig = inj._sig_sync_timeout
                if sig.callbacks:
                    sig.emit(
                        self.module.index,
                        packet.address,
                        resource.engine.now,
                        plan.sync_timeout_cycles,
                    )
                return plan.sync_timeout_cycles
            return 0.0
        if plan.ecc_rate and self.rng.random() < plan.ecc_rate:
            self.module.ecc_retries += 1
            inj.ecc_retries += 1
            sig = inj._sig_ecc
            if sig.callbacks:
                sig.emit(
                    self.module.index,
                    packet,
                    resource.engine.now,
                    plan.ecc_stall_cycles,
                )
            return plan.ecc_stall_cycles
        return 0.0


class FaultInjector:
    """The machine-wide fault-injection component.

    Build it into a machine by enabling any rate on
    ``config.faults`` (assembly registers it automatically), or install
    one explicitly on an assembled machine for tests::

        injector = FaultInjector(plan).install(machine)
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.engine = None
        self._sites: List[object] = []
        #: resources currently down -> cycle they come back up.
        self._down: Dict[Resource, float] = {}
        #: forward network -> escape view of the reverse fabric.
        self._escape: Dict[OmegaNetwork, OmegaNetwork] = {}
        self.transients = 0
        self.port_downs = 0
        self.ecc_retries = 0
        self.sync_timeouts = 0
        self.rerouted = 0
        self._sig_transient = NULL_SIGNAL
        self._sig_port_down = NULL_SIGNAL
        self._sig_ecc = NULL_SIGNAL
        self._sig_sync_timeout = NULL_SIGNAL
        self._sig_reroute = NULL_SIGNAL

    # -- component lifecycle ---------------------------------------------------

    def attach(self, ctx) -> None:
        self.engine = ctx.engine
        bus = ctx.bus
        self._sig_transient = bus.signal("fault.transient")
        self._sig_port_down = bus.signal("fault.port_down")
        self._sig_ecc = bus.signal("fault.ecc")
        self._sig_sync_timeout = bus.signal("fault.sync_timeout")
        self._sig_reroute = bus.signal("fault.reroute")

        networks: List[OmegaNetwork] = []
        for _name, component in ctx.components():
            if isinstance(component, OmegaNetwork):
                networks.append(component)
            elif isinstance(component, GlobalMemory):
                for module in component.modules:
                    if module.fault_hook is None:
                        site = _ModuleSite(self, module.name, module)
                        module.fault_hook = site
                        self._sites.append(site)
        for net in networks:
            for stage in net.stages:
                for link in stage:
                    # shared-fabric views alias stage resources; arm once.
                    if link.fault_hook is None:
                        site = _PortSite(self, link.name)
                        link.fault_hook = site
                        self._sites.append(site)
        self._wire_escape_routes(networks)

    def _wire_escape_routes(self, networks: List[OmegaNetwork]) -> None:
        """Give each forward fabric an escape view of a *different*
        fabric (the dual-network case).  A shared single fabric has no
        disjoint escape path, so degraded routing is skipped there."""
        for net in networks:
            others = [n for n in networks if n.stages is not net.stages]
            if not others:
                continue
            self._escape[net] = others[0].view_with_own_injection(f"esc.{net.name}")
            net.fault_router = self

    def install(self, machine) -> "FaultInjector":
        """Register this injector on an already-assembled machine."""
        machine.ctx.add("faults", self)
        return self

    def reset(self) -> None:
        self._down.clear()
        self.transients = 0
        self.port_downs = 0
        self.ecc_retries = 0
        self.sync_timeouts = 0
        self.rerouted = 0
        for site in self._sites:
            site.reseed()

    def stats(self) -> dict:
        return {
            "transients": self.transients,
            "port_downs": self.port_downs,
            "ecc_retries": self.ecc_retries,
            "sync_timeouts": self.sync_timeouts,
            "rerouted": self.rerouted,
            "ports_down_now": len(self._down),
        }

    def describe(self) -> dict:
        return {
            "seed": self.plan.seed,
            "switch_fail_rate": self.plan.switch_fail_rate,
            "port_down_rate": self.plan.port_down_rate,
            "ecc_rate": self.plan.ecc_rate,
            "sync_timeout_rate": self.plan.sync_timeout_rate,
            "sites": len(self._sites),
            "escape_routes": len(self._escape),
        }

    # -- degraded-mode routing -------------------------------------------------

    def try_reroute(self, net: OmegaNetwork, packet, tail) -> Optional[Transit]:
        """Called by ``net.inject``: when the primary route crosses a
        down port, inject into the escape fabric instead.  Returns the
        escape transit, or ``None`` to proceed on the primary route."""
        down = self._down
        if not down:
            return None
        escape = self._escape.get(net)
        if escape is None:
            return None
        now = self.engine.now
        route = net.route_for(packet, tail)
        blocked = False
        for hop in route:
            until = down.get(hop)
            if until is None:
                continue
            if until > now:
                blocked = True
                break
            del down[hop]
        if not blocked or not escape.can_inject(packet.src):
            return None
        self.rerouted += 1
        sig = self._sig_reroute
        if sig.callbacks:
            sig.emit(net.name, packet, now)
        return escape.inject(packet, tail)
