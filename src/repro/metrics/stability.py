"""Stability and instability of an ensemble of computations.

"we now define stability, St, on P processors of an ensemble of
computations over K codes as follows:

    St(P, Ni, K, e) = min performance(K, e) / max performance(K, e)

where ... e computations are excluded from the ensemble because their
results are outliers ... Instability, In, is defined as the inverse of
Stability."

Excluding ``e`` outliers means removing the e ensemble members that
most improve stability; since stability depends only on the extremes,
the optimum always removes from the sorted ends, so we search all
(top, bottom) splits.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def stability_with_exclusions(
    performance: Sequence[float], exclusions: int
) -> Tuple[float, List[float]]:
    """Best achievable St after removing ``exclusions`` outliers.

    Returns (stability, surviving ensemble sorted ascending).
    """
    values = sorted(float(v) for v in performance)
    if any(v <= 0 for v in values):
        raise ValueError("performance values must be positive")
    if exclusions < 0:
        raise ValueError("exclusions must be non-negative")
    if len(values) - exclusions < 2:
        raise ValueError("need at least two survivors")
    best = -1.0
    best_survivors: List[float] = values
    for low in range(exclusions + 1):
        high = exclusions - low
        survivors = values[low : len(values) - high]
        st = survivors[0] / survivors[-1]
        if st > best:
            best = st
            best_survivors = survivors
    return best, best_survivors


def stability(performance: Sequence[float], exclusions: int = 0) -> float:
    """St(K, e): min/max of the ensemble after optimal e exclusions."""
    st, _ = stability_with_exclusions(performance, exclusions)
    return st


def instability(performance: Sequence[float], exclusions: int = 0) -> float:
    """In(K, e) = 1 / St(K, e)."""
    return 1.0 / stability(performance, exclusions)


def exclusions_for_stability(
    performance: Sequence[float], threshold: float = 0.2
) -> int:
    """Smallest e with St(K, e) >= threshold (the paper asks how many
    exceptions each machine needs to reach workstation-level stability,
    St >= 1/5)."""
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    values = sorted(float(v) for v in performance)
    for e in range(len(values) - 1):
        if stability(values, e) >= threshold:
            return e
    raise ValueError("ensemble cannot reach the threshold with two survivors")
