"""The five Practical Parallelism Tests (PPTs).

PPT1 (Delivered Performance), PPT2 (Stable Performance), PPT3
(Portability and Programmability, judged through restructuring
efficiency), PPT4 (Code and Architecture Scalability), and PPT5
(Technology and Scalable Reimplementability — a design property; the
paper defers it, and our simulator's configurability is the evidence
artifact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.metrics.bands import Band, band_for_speedup, classify
from repro.metrics.stability import instability

#: workstation-level stability bound: "we will define a system as
#: stable if 1/5 <= St(K, e), for small e".
STABILITY_BOUND = 5.0

#: PPT4's tighter per-code stability range: ".5 < St(P, N, 1, 0) < 1".
PPT4_STABILITY_BOUND = 2.0


@dataclass(frozen=True)
class PPT1Result:
    """Delivered performance: band census of a code ensemble."""

    machine: str
    processors: int
    bands: Dict[Band, List[str]]
    passes: bool


def ppt1_delivered_performance(
    machine: str, speedups: Mapping[str, float], processors: int
) -> PPT1Result:
    """PPT1 passes when the ensemble delivers acceptable (intermediate
    or better) performance on average — no majority of unacceptable
    codes."""
    bands = classify(speedups.items(), processors)
    acceptable = len(bands[Band.HIGH]) + len(bands[Band.INTERMEDIATE])
    passes = acceptable > len(bands[Band.UNACCEPTABLE])
    return PPT1Result(machine=machine, processors=processors, bands=bands, passes=passes)


@dataclass(frozen=True)
class PPT2Result:
    """Stable performance: In(K, e) for growing e."""

    machine: str
    instabilities: Tuple[float, ...]  # In(K, 0), In(K, 1), ...
    exceptions_needed: int
    passes: bool


def ppt2_stable_performance(
    machine: str,
    performance: Sequence[float],
    max_exceptions: int = 6,
    small_e: int = 2,
) -> PPT2Result:
    """PPT2 passes when workstation-level stability (In <= 5) is
    reachable with a small number of exceptions."""
    values = list(performance)
    instabilities = tuple(
        instability(values, e) for e in range(min(max_exceptions, len(values) - 2) + 1)
    )
    needed = next(
        (e for e, inst in enumerate(instabilities) if inst <= STABILITY_BOUND),
        len(instabilities),
    )
    return PPT2Result(
        machine=machine,
        instabilities=instabilities,
        exceptions_needed=needed,
        passes=needed <= small_e,
    )


@dataclass(frozen=True)
class PPT3Result:
    """Restructuring efficiency: Table 6's band census."""

    machine: str
    high: List[str]
    intermediate: List[str]
    unacceptable: List[str]

    @property
    def counts(self) -> Tuple[int, int, int]:
        return (len(self.high), len(self.intermediate), len(self.unacceptable))


def ppt3_restructuring_bands(
    machine: str, efficiencies: Mapping[str, float], processors: int
) -> PPT3Result:
    """Census of restructured-code efficiencies (Ep = speedup/P)."""
    speedups = {name: e * processors for name, e in efficiencies.items()}
    bands = classify(speedups.items(), processors)
    return PPT3Result(
        machine=machine,
        high=bands[Band.HIGH],
        intermediate=bands[Band.INTERMEDIATE],
        unacceptable=bands[Band.UNACCEPTABLE],
    )


@dataclass(frozen=True)
class PPT4Result:
    """Scalability over a (processors, problem size) grid."""

    machine: str
    #: (processors, N) -> band
    grid: Dict[Tuple[int, int], Band]
    #: per processor count: instability across problem sizes.
    size_instability: Dict[int, float]

    def scalable_at(self, band: Band) -> List[Tuple[int, int]]:
        return sorted(k for k, v in self.grid.items() if v == band)

    def passes(self) -> bool:
        """Scalable with at-least-intermediate performance everywhere
        measured, and size-stability within the factor-2 range."""
        no_bad = all(b is not Band.UNACCEPTABLE for b in self.grid.values())
        stable = all(v <= PPT4_STABILITY_BOUND for v in self.size_instability.values())
        return no_bad and stable


def ppt4_scalability(
    machine: str,
    speedups: Mapping[Tuple[int, int], float],
    mflops: Mapping[Tuple[int, int], float],
) -> PPT4Result:
    """Classify each (P, N) point and measure per-P size stability."""
    grid = {
        (p, n): band_for_speedup(s, p) for (p, n), s in speedups.items()
    }
    by_p: Dict[int, List[float]] = {}
    for (p, n), rate in mflops.items():
        by_p.setdefault(p, []).append(rate)
    size_instability = {
        p: instability(rates) for p, rates in by_p.items() if len(rates) >= 2
    }
    return PPT4Result(machine=machine, grid=grid, size_instability=size_instability)


PPT5_STATEMENT = (
    "PPT5 (Technology and Scalable Reimplementability) asks whether the "
    "architecture can be reimplemented with much larger processor counts "
    "in current or future technology.  The paper defers it ('We are in "
    "the process of collecting detailed simulation data for various "
    "computations on scaled-up Cedar-like systems').  In this "
    "reproduction the evidence artifact is the simulator itself: "
    "CedarConfig(clusters=8, ...) builds and runs scaled-up Cedar-like "
    "machines (see benchmarks/test_ablations.py::test_ppt5_scaled_up_cedar)."
)
