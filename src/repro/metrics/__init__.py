"""The judging-parallelism methodology (Section 4.3).

Efficiency bands (high >= P/2, acceptable >= P/(2 log2 P)), the
stability/instability measures St(P, N, K, e) and In, and the five
Practical Parallelism Tests.
"""

from repro.metrics.bands import Band, band_for_efficiency, band_for_speedup, classify
from repro.metrics.stability import instability, stability, stability_with_exclusions
from repro.metrics.ppt import (
    PPT1Result,
    PPT2Result,
    PPT3Result,
    PPT4Result,
    ppt1_delivered_performance,
    ppt2_stable_performance,
    ppt3_restructuring_bands,
    ppt4_scalability,
    PPT5_STATEMENT,
)

__all__ = [
    "Band",
    "band_for_efficiency",
    "band_for_speedup",
    "classify",
    "instability",
    "stability",
    "stability_with_exclusions",
    "PPT1Result",
    "PPT2Result",
    "PPT3Result",
    "PPT4Result",
    "ppt1_delivered_performance",
    "ppt2_stable_performance",
    "ppt3_restructuring_bands",
    "ppt4_scalability",
    "PPT5_STATEMENT",
]
