"""Efficiency bands.

"we shall use P/2 and P/2 log P, for P >= 8, as levels that denote
high performance and acceptable performance, respectively.  We refer
to speedups in the three bands defined by these two levels as high,
intermediate, or unacceptable."  (logs are base 2 throughout.)
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Dict, Iterable, List, Tuple


class Band(Enum):
    HIGH = "high"
    INTERMEDIATE = "intermediate"
    UNACCEPTABLE = "unacceptable"


def high_threshold(processors: int) -> float:
    """Speedup at or above P/2 is high performance."""
    _check(processors)
    return processors / 2.0


def acceptable_threshold(processors: int) -> float:
    """Speedup at or above P / (2 log2 P) is acceptable."""
    _check(processors)
    return processors / (2.0 * math.log2(processors))


def band_for_speedup(speedup: float, processors: int) -> Band:
    if speedup >= high_threshold(processors):
        return Band.HIGH
    if speedup >= acceptable_threshold(processors):
        return Band.INTERMEDIATE
    return Band.UNACCEPTABLE


def band_for_efficiency(efficiency: float, processors: int) -> Band:
    """Band from Ep = speedup / P (Table 6 uses Ep > .5 and
    Ep > 1/(2 log P))."""
    return band_for_speedup(efficiency * processors, processors)


def classify(
    speedups: Iterable[Tuple[str, float]], processors: int
) -> Dict[Band, List[str]]:
    """Partition labelled speedups into the three bands."""
    out: Dict[Band, List[str]] = {band: [] for band in Band}
    for label, speedup in speedups:
        out[band_for_speedup(speedup, processors)].append(label)
    return out


def _check(processors: int) -> None:
    if processors < 2:
        raise ValueError("bands are defined for parallel machines (P >= 2)")
