"""The ``python -m repro store`` maintenance subcommands.

``verify`` is the fsck pass (``--repair`` to act on findings; exits 1
while the store is inconsistent), ``repair`` is shorthand for
``verify --repair``, ``gc --max-bytes N`` evicts oldest entries down
to a byte budget, and ``stats`` summarizes the tree.  All operate on
``--dir`` (default: the runner's cache directory).
"""

from __future__ import annotations

from pathlib import Path
from typing import List


def add_store_parser(sub) -> None:
    """Register the ``store`` subcommand tree on the repro CLI."""
    store = sub.add_parser(
        "store", help="inspect and maintain the sharded result store"
    )
    ssub = store.add_subparsers(dest="store_command", required=True)

    def _common(parser) -> None:
        parser.add_argument(
            "--dir", default=None, metavar="DIR",
            help="store root (default .repro-cache)",
        )

    verify = ssub.add_parser(
        "verify", help="fsck every entry (exit 1 on inconsistency)"
    )
    verify.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt entries, remove debris, break stale "
             "locks, re-shard legacy flat entries",
    )
    _common(verify)

    repair = ssub.add_parser("repair", help="shorthand for verify --repair")
    _common(repair)

    gc = ssub.add_parser("gc", help="evict oldest entries to a byte budget")
    gc.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="target total entry bytes",
    )
    _common(gc)

    stats = ssub.add_parser("stats", help="summarize the store tree")
    _common(stats)


def _store(args):
    from repro.experiments.runner import DEFAULT_CACHE_DIR
    from repro.store.core import ResultStore

    root = Path(args.dir or DEFAULT_CACHE_DIR)
    if not root.is_dir():
        raise RuntimeError(
            f"no result store at {root}/; populate one with "
            f"`python -m repro run-all --cached`"
        )
    return ResultStore(root)


def handle_store(args):
    """Dispatch one ``store`` subcommand; returns the rendered text or
    ``(text, exit_code)``."""
    store = _store(args)
    command = args.store_command
    if command in ("verify", "repair"):
        repair = command == "repair" or args.repair
        report = store.verify(repair=repair)
        return _render_verify(store, report)
    if command == "gc":
        report = store.gc(args.max_bytes)
        return (
            f"[store] gc to {args.max_bytes} bytes: kept {report.kept} "
            f"entries ({report.bytes_kept} bytes), evicted "
            f"{report.removed} ({report.bytes_removed} bytes)"
        )
    report = store.stats()
    lines = [
        f"[store] {store.root}/",
        f"  entries      {report.entries} ({report.total_bytes} bytes "
        f"across {report.shards} shards)",
        f"  legacy flat  {report.legacy}",
        f"  quarantined  {report.quarantined}",
        f"  temps/locks  {report.temps}/{report.locks}",
    ]
    return "\n".join(lines)


def _render_verify(store, report):
    mode = "verify --repair" if report.repaired else "verify"
    acted = sum(1 for issue in report.issues if issue.action)
    lines: List[str] = [
        f"[store] {mode} {store.root}/: {report.entries} entries, "
        f"{report.ok} ok, {len(report.issues)} issue(s), {acted} repaired"
    ]
    for issue in report.issues:
        action = f" -> {issue.action}" if issue.action else ""
        lines.append(f"  {issue.kind:<18} {issue.path}{action}")
    text = "\n".join(lines)
    return text if report.consistent else (text, 1)
