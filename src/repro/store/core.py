"""The sharded, content-addressed, crash-safe result store.

This is the durable layer the experiment cache (and, ahead, the
experiment service and sweep engine) sit on.  Entries live two levels
deep, sharded by key prefix::

    store/
      ab/
        abcdef0123....json        one entry per key
        abcdef0123....lock        advisory per-entry write lock
        abcdef0123....<pid>.<n>.tmp   in-flight commit (unique per writer)
      quarantine/                 corrupt entries moved aside, never served
      <name>.<key16>.json         legacy flat entries (pre-v6), re-sharded
                                  on first touch or by ``repair``

Guarantees
----------

* **Durable commits.**  ``put`` writes a unique per-writer temp file,
  fsyncs it, atomically renames it over the entry, then fsyncs the
  shard directory — a crash at any point leaves either the old entry,
  the new entry, or debris that ``verify --repair`` removes; never a
  torn entry served to a reader.
* **Verified reads.**  Every entry carries a sha256 over its canonical
  payload JSON, recomputed on every ``get``.  A mismatch (torn write
  the rename race let through, bit rot, a hand-edited file) quarantines
  the entry and reports a miss — corruption always recomputes, never
  crashes and never serves wrong bytes.
* **Many writers, one store.**  Unique temp names mean concurrent
  writers can never interleave bytes; an advisory lock file
  (O_CREAT|O_EXCL with pid + timestamp, stale-broken when the holder
  is dead, orphaned, or over-age) makes same-key commits take turns.
  Because the store is content-addressed — one key, one logical value —
  a writer that loses the lock race simply skips its redundant write.
* **Self-healing.**  ``verify`` fscks the whole tree (checksums,
  misplaced entries, orphan temps, stale locks, legacy flat files) and
  with ``repair=True`` restores consistency: corrupt entries are
  quarantined (moved aside for post-mortem, never deleted, never
  served), debris removed, legacy entries re-sharded in place.

All I/O goes through the :mod:`repro.store.fs` seam so
:class:`~repro.store.chaos.ChaosFS` can prove each guarantee by
injecting crashes and errnos at every commit point.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.store.fs import RealFS

#: on-disk entry document version; bump on breaking format changes.
STORE_VERSION = 1

#: hex characters of key prefix that name the shard directory.
SHARD_CHARS = 2

_HEX = set("0123456789abcdef")

#: unique-per-process temp suffix counter (pid makes it unique across
#: processes, the counter within one).
_TMP_COUNTER = itertools.count()

#: lock files this process currently holds, by absolute path.  A lock
#: file on disk bearing our pid but absent here was left by an earlier
#: crashed commit in this process — stale by definition.
_HELD_LOCKS: Set[str] = set()


def shard_of(key: str) -> str:
    return key[:SHARD_CHARS]


def payload_checksum(payload: Dict) -> str:
    """sha256 over the canonical (sorted, compact) payload JSON —
    independent of how the wrapper document happens to be formatted."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        pass  # exists but not ours, or unknowable: assume alive
    return True


class FileLock:
    """Advisory per-entry write lock: an O_CREAT|O_EXCL file carrying
    ``{"pid", "t"}``.

    A lock is *stale* — and silently broken — when its holder is a dead
    pid, when it bears this process's pid without being tracked as held
    (a crashed earlier commit in this very process), when its content
    is unreadable (torn lock write), or when it is older than
    ``stale_s``.  Live locks are honored until ``timeout_s``, after
    which :meth:`acquire` returns ``False`` and the caller decides.
    """

    def __init__(
        self,
        fs,
        path: Path,
        timeout_s: float = 5.0,
        stale_s: float = 30.0,
        poll_s: float = 0.01,
        clock=time.time,
    ) -> None:
        self.fs = fs
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.stale_s = stale_s
        self.poll_s = poll_s
        self.clock = clock
        self.held = False

    def acquire(self) -> bool:
        deadline = self.clock() + self.timeout_s
        while True:
            try:
                self.fs.create_excl(
                    self.path,
                    json.dumps(
                        {"pid": os.getpid(), "t": self.clock()}
                    ).encode("utf-8"),
                )
            except FileExistsError:
                if self.is_stale():
                    try:
                        self.fs.unlink(self.path)
                    except OSError:
                        pass
                    continue
                if self.clock() >= deadline:
                    return False
                time.sleep(self.poll_s)
                continue
            _HELD_LOCKS.add(str(self.path))
            self.held = True
            return True

    def is_stale(self) -> bool:
        try:
            info = json.loads(self.fs.read_bytes(self.path))
        except (OSError, ValueError):
            return True  # vanished or torn lock content
        if not isinstance(info, dict):
            return True
        pid, t = info.get("pid"), info.get("t")
        if pid == os.getpid() and str(self.path) not in _HELD_LOCKS:
            return True  # our own orphan from a crashed commit
        if isinstance(pid, int) and not _pid_alive(pid):
            return True
        if not isinstance(t, (int, float)):
            return True
        return self.clock() - t > self.stale_s

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        _HELD_LOCKS.discard(str(self.path))
        try:
            self.fs.unlink(self.path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# reports


@dataclass(frozen=True)
class VerifyIssue:
    """One inconsistency ``verify`` found.  ``action`` says what
    ``repair`` did about it ("" when only reporting)."""

    kind: str  # checksum-mismatch | unparseable | key-mismatch |
    #          # misplaced | orphan-temp | stale-lock | legacy-flat |
    #          # foreign-file
    path: str
    action: str = ""  # quarantined | removed | unlocked | resharded | ""


@dataclass
class VerifyReport:
    entries: int = 0
    ok: int = 0
    issues: List[VerifyIssue] = field(default_factory=list)
    repaired: bool = False

    @property
    def consistent(self) -> bool:
        """No issue left standing: every finding was acted on (or
        there were none)."""
        return all(issue.action for issue in self.issues)


@dataclass(frozen=True)
class GCReport:
    kept: int
    removed: int
    bytes_kept: int
    bytes_removed: int


@dataclass(frozen=True)
class StoreStats:
    entries: int
    total_bytes: int
    shards: int
    legacy: int
    quarantined: int
    temps: int
    locks: int


# ---------------------------------------------------------------------------
# the store


class ResultStore:
    """See the module docstring for the on-disk layout and guarantees.

    ``fs`` defaults to the durable :class:`~repro.store.fs.RealFS`;
    tests pass a :class:`~repro.store.chaos.ChaosFS`.  ``clock`` feeds
    lock staleness and temp-file aging, injectable for determinism.
    """

    QUARANTINE_DIR = "quarantine"

    def __init__(
        self,
        root: Path,
        fs=None,
        lock_timeout_s: float = 5.0,
        stale_lock_s: float = 30.0,
        tmp_grace_s: float = 60.0,
        clock=time.time,
    ) -> None:
        self.root = Path(root)
        self.fs = fs if fs is not None else RealFS()
        self.lock_timeout_s = lock_timeout_s
        self.stale_lock_s = stale_lock_s
        self.tmp_grace_s = tmp_grace_s
        self.clock = clock

    # -- paths -------------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> None:
        if len(key) < SHARD_CHARS + 2 or not set(key) <= _HEX:
            raise ValueError(f"not a content key: {key!r}")

    def entry_path(self, key: str) -> Path:
        self._check_key(key)
        return self.root / shard_of(key) / f"{key}.json"

    def lock_path(self, key: str) -> Path:
        self._check_key(key)
        return self.root / shard_of(key) / f"{key}.lock"

    def _lock(self, key: str) -> FileLock:
        return FileLock(
            self.fs,
            self.lock_path(key),
            timeout_s=self.lock_timeout_s,
            stale_s=self.stale_lock_s,
            clock=self.clock,
        )

    # -- read path ---------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The verified payload for ``key``, or ``None`` on a miss.

        Any corruption — unparseable wrapper, wrong embedded key,
        checksum mismatch — quarantines the entry with a warning and
        reports a miss, so the caller recomputes.  Never raises for a
        bad entry.
        """
        path = self.entry_path(key)
        try:
            data = self.fs.read_bytes(path)
        except FileNotFoundError:
            return None
        except OSError as exc:
            warnings.warn(f"unreadable store entry {path}: {exc}; recomputing")
            return None
        payload, reason = self._validate(data, key)
        if reason is not None:
            self.quarantine(path, reason)
            return None
        return payload

    @staticmethod
    def _validate(data: bytes, key: str):
        """``(payload, None)`` for a sound entry document, else
        ``(None, reason)``."""
        try:
            doc = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, "unparseable"
        if not isinstance(doc, dict) or not isinstance(doc.get("payload"), dict):
            return None, "unparseable"
        if doc.get("key") != key:
            return None, "key-mismatch"
        if doc.get("sha256") != payload_checksum(doc["payload"]):
            return None, "checksum-mismatch"
        return doc["payload"], None

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt file aside — preserved for post-mortem, never
        served again.  Best-effort: an unmovable file is a warning,
        never a crash."""
        qdir = self.root / self.QUARANTINE_DIR
        dest = qdir / f"{Path(path).name}.{reason}.{os.getpid()}-{next(_TMP_COUNTER)}"
        try:
            self.fs.mkdir(qdir)
            self.fs.rename(path, dest)
        except OSError as exc:
            warnings.warn(
                f"corrupt store entry {path}: {reason}; quarantine failed "
                f"({exc}); recomputing"
            )
            return None
        warnings.warn(
            f"corrupt store entry {path}: {reason}; quarantined to "
            f"{dest}; recomputing"
        )
        return dest

    # -- write path --------------------------------------------------------

    def put(self, key: str, payload: Dict) -> bool:
        """Durably commit ``payload`` under ``key``.

        Commit protocol: take the entry's advisory lock, write a
        unique per-writer temp file, fsync it, atomically rename it
        over the entry, fsync the shard directory, release the lock.
        Returns ``False`` when the lock stayed contended past the
        timeout — the store is content-addressed, so a concurrent
        writer is committing the same logical value and this write is
        redundant.

        Real I/O failures (``OSError``) clean up this writer's debris
        and re-raise; a :class:`~repro.store.chaos.SimulatedCrash`
        (BaseException) skips cleanup the way a real process death
        would.
        """
        path = self.entry_path(key)
        shard_dir = path.parent
        doc = {
            "v": STORE_VERSION,
            "key": key,
            "sha256": payload_checksum(payload),
            "payload": payload,
        }
        data = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.fs.mkdir(shard_dir)
        lock = self._lock(key)
        if not lock.acquire():
            warnings.warn(
                f"store entry {key[:16]} lock contended past "
                f"{self.lock_timeout_s:g}s; skipping redundant write"
            )
            return False
        tmp = shard_dir / f"{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        try:
            self.fs.write_bytes(tmp, data, fsync=True)
            self.fs.rename(tmp, path)
            self.fs.fsync_dir(shard_dir)
        except Exception:
            try:
                self.fs.unlink(tmp)
            except OSError:
                pass
            lock.release()
            raise
        lock.release()
        return True

    # -- enumeration -------------------------------------------------------

    def _shard_dirs(self) -> List[Path]:
        dirs = []
        for name in self.fs.listdir(self.root):
            if len(name) == SHARD_CHARS and set(name) <= _HEX:
                dirs.append(self.root / name)
        return dirs

    def keys(self) -> List[str]:
        """Every committed key, in sorted order (consistency not
        checked — that is :meth:`get`'s and :meth:`verify`'s job)."""
        found = []
        for shard_dir in self._shard_dirs():
            for name in self.fs.listdir(shard_dir):
                if name.endswith(".json"):
                    found.append(name[: -len(".json")])
        return sorted(found)

    # -- fsck --------------------------------------------------------------

    def verify(self, repair: bool = False) -> VerifyReport:
        """fsck the whole tree; with ``repair`` restore consistency.

        Checks every shard entry's wrapper + checksum, flags misplaced
        and foreign files, over-age orphan temp files (younger than
        ``tmp_grace_s`` are presumed in-flight), stale locks (live
        writers' locks are honored), and legacy flat entries in the
        root.  Repair quarantines the corrupt, removes the debris,
        breaks the stale, and re-shards the legacy.
        """
        report = VerifyReport(repaired=repair)
        now = self.clock()

        def note(kind: str, path: Path, action: str) -> None:
            report.issues.append(
                VerifyIssue(kind, str(path), action if repair else "")
            )

        for shard_dir in self._shard_dirs():
            shard = shard_dir.name
            for name in self.fs.listdir(shard_dir):
                path = shard_dir / name
                if name.endswith(".tmp"):
                    try:
                        age = now - self.fs.stat(path).st_mtime
                    except OSError:
                        continue  # already gone (concurrent commit finished)
                    if age >= self.tmp_grace_s:
                        if repair:
                            self.fs.unlink(path)
                        note("orphan-temp", path, "removed")
                    continue
                if name.endswith(".lock"):
                    lock = FileLock(
                        self.fs, path, stale_s=self.stale_lock_s, clock=self.clock
                    )
                    if lock.is_stale():
                        if repair:
                            self.fs.unlink(path)
                        note("stale-lock", path, "unlocked")
                    continue
                if not name.endswith(".json"):
                    note("foreign-file", path, "")
                    continue
                report.entries += 1
                key = name[: -len(".json")]
                if not key.startswith(shard) or not set(key) <= _HEX:
                    if repair:
                        self.quarantine(path, "misplaced")
                    note("misplaced", path, "quarantined")
                    continue
                try:
                    data = self.fs.read_bytes(path)
                except OSError:
                    note("unreadable", path, "")
                    continue
                _, reason = self._validate(data, key)
                if reason is not None:
                    if repair:
                        self.quarantine(path, reason)
                    note(reason, path, "quarantined")
                    continue
                report.ok += 1

        for name in self.fs.listdir(self.root):
            path = self.root / name
            if not name.endswith(".json"):
                continue
            action = self._reshard_legacy(path) if repair else "resharded"
            note("legacy-flat", path, action)
        return report

    def _reshard_legacy(self, path: Path) -> str:
        """Move a pre-sharding flat entry into its shard (wrapped and
        checksummed under its own embedded key), or quarantine it when
        it is not a sound legacy entry."""
        try:
            doc = json.loads(self.fs.read_bytes(path).decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            self.quarantine(path, "unparseable")
            return "quarantined"
        key = doc.get("key") if isinstance(doc, dict) else None
        if (
            not isinstance(key, str)
            or len(key) < SHARD_CHARS + 2
            or not set(key) <= _HEX
        ):
            self.quarantine(path, "key-mismatch")
            return "quarantined"
        try:
            self.put(key, doc)
            self.fs.unlink(path)
        except OSError:
            return ""
        return "resharded"

    # -- retention ---------------------------------------------------------

    def gc(self, max_bytes: int) -> GCReport:
        """Evict oldest-modified entries until the store fits in
        ``max_bytes`` (quarantine, locks, and temps are not counted and
        not touched)."""
        entries = []
        for shard_dir in self._shard_dirs():
            for name in self.fs.listdir(shard_dir):
                if not name.endswith(".json"):
                    continue
                path = shard_dir / name
                try:
                    st = self.fs.stat(path)
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
        entries.sort(key=lambda item: (item[0], str(item[2])))
        total = sum(size for _, size, _ in entries)
        removed = bytes_removed = 0
        for mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                self.fs.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            bytes_removed += size
        return GCReport(
            kept=len(entries) - removed,
            removed=removed,
            bytes_kept=total,
            bytes_removed=bytes_removed,
        )

    # -- accounting --------------------------------------------------------

    def stats(self) -> StoreStats:
        entries = total_bytes = temps = locks = 0
        shards = 0
        for shard_dir in self._shard_dirs():
            names = self.fs.listdir(shard_dir)
            if names:
                shards += 1
            for name in names:
                path = shard_dir / name
                if name.endswith(".json"):
                    entries += 1
                    try:
                        total_bytes += self.fs.stat(path).st_size
                    except OSError:
                        pass
                elif name.endswith(".tmp"):
                    temps += 1
                elif name.endswith(".lock"):
                    locks += 1
        legacy = sum(
            1 for name in self.fs.listdir(self.root) if name.endswith(".json")
        )
        quarantined = len(
            self.fs.listdir(self.root / self.QUARANTINE_DIR)
        )
        return StoreStats(
            entries=entries,
            total_bytes=total_bytes,
            shards=shards,
            legacy=legacy,
            quarantined=quarantined,
            temps=temps,
            locks=locks,
        )
