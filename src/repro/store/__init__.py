"""repro.store — the sharded, content-addressed, crash-safe result
store and its chaos-testing harness.

:class:`ResultStore` is the durable layer (see
:mod:`repro.store.core`); :class:`ChaosFS` and
:class:`SimulatedCrash` (:mod:`repro.store.chaos`) inject crashes and
errno faults at every commit point to prove its guarantees; the
``python -m repro store`` CLI (:mod:`repro.store.cli`) is the
operator-facing fsck/retention surface.
"""

from repro.store.chaos import FAULT_POINTS, ChaosFS, SimulatedCrash
from repro.store.core import (
    STORE_VERSION,
    FileLock,
    GCReport,
    ResultStore,
    StoreStats,
    VerifyIssue,
    VerifyReport,
    payload_checksum,
    shard_of,
)
from repro.store.fs import RealFS

__all__ = [
    "STORE_VERSION",
    "FAULT_POINTS",
    "ChaosFS",
    "FileLock",
    "GCReport",
    "RealFS",
    "ResultStore",
    "SimulatedCrash",
    "StoreStats",
    "VerifyIssue",
    "VerifyReport",
    "payload_checksum",
    "shard_of",
]
