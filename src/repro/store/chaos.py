"""ChaosFS: seeded fault injection over the store's filesystem seam.

The store's crash-safety claims are only worth what can be tested, so
this module makes every commit point breakable on purpose.  ChaosFS
wraps any :class:`~repro.store.fs.RealFS`-shaped object and injects
faults at the nine operations the store commits through:

* **torn** — write only a prefix of the bytes, skip the fsync, then
  die (``SimulatedCrash``): the power-loss-mid-write scenario.
* **silent_torn** — write a prefix and *return success*: the
  lost-fsync scenario where the kernel acked bytes that never reached
  the platter.  Only payload checksums can catch this one.
* **crash** — die immediately *before* the operation.
* **crash_after** — perform the operation, then die: e.g. rename
  published but the directory entry never synced, or a lock file
  created by a writer that is now gone (the stale-lock scenario).
* **enospc** / **eacces** — the operation fails with the errno
  instead of crashing; the caller must clean up and carry on.

``SimulatedCrash`` subclasses ``BaseException`` deliberately: the
store's cleanup handlers catch ``Exception``, so a simulated crash
skips them exactly the way ``kill -9`` skips a real process's —
leaving temp files, lock files, and half-commits on disk for
``verify --repair`` to face.

Two driving modes, both deterministic:

* **scripted** — ``ChaosFS(fs, script=[("rename", 0, "crash")])``
  fails the Nth occurrence of an operation with a chosen fault; the
  chaos suite enumerates every (commit point × fault kind) pair this
  way.
* **seeded random** — ``ChaosFS(fs, seed=7, rate=0.2)`` draws faults
  from a private ``random.Random(seed)``, the same discipline
  ``repro.faults`` uses for the simulated machine: a given seed always
  injects the same faults at the same points.

With neither script nor rate the wrapper is inert and just records the
operation log (``.log``) — how the suite discovers the commit points
to attack.
"""

from __future__ import annotations

import errno
import random
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.store.fs import RealFS


class SimulatedCrash(BaseException):
    """An injected process death.  BaseException so ``except
    Exception`` cleanup paths do not run — a crashed process cleans
    nothing up."""


def _die(message: str) -> "SimulatedCrash":
    """Build the crash *and* model its side effect: a dead process
    takes its in-memory lock table with it, so any lock file it held
    becomes exactly as orphaned as a real ``kill -9`` would leave it."""
    from repro.store.core import _HELD_LOCKS

    _HELD_LOCKS.clear()
    return SimulatedCrash(message)


#: fault kinds meaningful at each operation; the chaos suite iterates
#: this table to attack every commit point every way it can fail.
FAULT_POINTS: Dict[str, Tuple[str, ...]] = {
    "write_bytes": ("torn", "silent_torn", "crash", "enospc", "eacces"),
    "rename": ("crash", "crash_after"),
    "fsync_dir": ("crash",),
    "create_excl": ("crash_after", "eacces"),
    "unlink": ("crash",),
    "read_bytes": ("eacces",),
}


class ChaosFS:
    """A fault-injecting wrapper over the store's filesystem seam.

    Parameters
    ----------
    inner:
        The filesystem to wrap (default: a fresh :class:`RealFS`).
    script:
        Iterable of ``(op, nth, kind)`` triples: inject ``kind`` on the
        ``nth`` (0-based) occurrence of ``op``.  Exhausted entries are
        recorded in ``injected``.
    seed, rate:
        Random mode: at every fault-capable operation draw from a
        private ``random.Random(seed)`` and with probability ``rate``
        inject a uniformly chosen applicable kind.
    """

    def __init__(
        self,
        inner=None,
        script: Optional[Iterable[Tuple[str, int, str]]] = None,
        seed: Optional[int] = None,
        rate: float = 0.0,
    ) -> None:
        self.inner = inner if inner is not None else RealFS()
        self._script: Dict[Tuple[str, int], str] = {}
        for op, nth, kind in script or ():
            if op not in FAULT_POINTS:
                raise ValueError(f"unknown chaos operation {op!r}")
            if kind not in FAULT_POINTS[op]:
                raise ValueError(f"fault {kind!r} not applicable to {op!r}")
            self._script[(op, nth)] = kind
        self._rng = random.Random(seed) if seed is not None else None
        self._rate = rate
        #: per-op occurrence counters.
        self.counts: Dict[str, int] = {}
        #: every operation seen: (op, path) in order.
        self.log: List[Tuple[str, str]] = []
        #: every fault injected: (op, nth, kind, path).
        self.injected: List[Tuple[str, int, str, str]] = []

    # -- fault decision ----------------------------------------------------

    def _fault(self, op: str, path: Path) -> Optional[str]:
        nth = self.counts.get(op, 0)
        self.counts[op] = nth + 1
        self.log.append((op, str(path)))
        kind = self._script.pop((op, nth), None)
        if kind is None and self._rng is not None and self._rate > 0.0:
            if self._rng.random() < self._rate:
                kind = self._rng.choice(FAULT_POINTS[op])
        if kind is not None:
            self.injected.append((op, nth, kind, str(path)))
        return kind

    @staticmethod
    def _errno(kind: str, path: Path) -> OSError:
        if kind == "enospc":
            return OSError(
                errno.ENOSPC, "No space left on device (injected)", str(path)
            )
        return PermissionError(
            errno.EACCES, "Permission denied (injected)", str(path)
        )

    # -- the wrapped surface -----------------------------------------------

    def read_bytes(self, path: Path) -> bytes:
        kind = self._fault("read_bytes", path)
        if kind == "eacces":
            raise self._errno(kind, path)
        return self.inner.read_bytes(path)

    def write_bytes(self, path: Path, data: bytes, fsync: bool = True) -> None:
        kind = self._fault("write_bytes", path)
        if kind == "crash":
            raise _die(f"crash before write of {path}")
        if kind in ("enospc", "eacces"):
            raise self._errno(kind, path)
        if kind in ("torn", "silent_torn"):
            # a prefix reaches disk, the fsync never happens
            torn = data[: max(1, len(data) // 2)]
            self.inner.write_bytes(path, torn, fsync=False)
            if kind == "torn":
                raise _die(f"crash mid-write of {path}")
            return  # silent_torn: the caller believes the write landed
        self.inner.write_bytes(path, data, fsync=fsync)

    def rename(self, src: Path, dst: Path) -> None:
        kind = self._fault("rename", src)
        if kind == "crash":
            raise _die(f"crash before rename of {src}")
        self.inner.rename(src, dst)
        if kind == "crash_after":
            raise _die(f"crash after rename to {dst}")

    def fsync_dir(self, path: Path) -> None:
        kind = self._fault("fsync_dir", path)
        if kind == "crash":
            raise _die(f"crash before dir fsync of {path}")
        self.inner.fsync_dir(path)

    def create_excl(self, path: Path, data: bytes) -> None:
        kind = self._fault("create_excl", path)
        if kind == "eacces":
            raise self._errno(kind, path)
        self.inner.create_excl(path, data)
        if kind == "crash_after":
            raise _die(f"crash holding lock {path}")

    def unlink(self, path: Path) -> None:
        kind = self._fault("unlink", path)
        if kind == "crash":
            raise _die(f"crash before unlink of {path}")
        self.inner.unlink(path)

    # -- pass-throughs (no interesting failure modes) ----------------------

    def mkdir(self, path: Path) -> None:
        self.inner.mkdir(path)

    def listdir(self, path: Path) -> List[str]:
        return self.inner.listdir(path)

    def exists(self, path: Path) -> bool:
        return self.inner.exists(path)

    def stat(self, path: Path):
        return self.inner.stat(path)
