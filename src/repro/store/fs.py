"""The narrow filesystem surface the result store commits through.

Every byte the store moves goes through one of these nine operations,
so a single seam covers all of its I/O: :class:`RealFS` is the durable
production implementation (fsync discipline included), and
:class:`~repro.store.chaos.ChaosFS` wraps any implementation to inject
crashes and errno faults at exactly these points.

The operations are deliberately *commit-protocol shaped* rather than
POSIX-shaped — ``write_bytes`` is open+write+flush+fsync as one unit,
``create_excl`` is the O_CREAT|O_EXCL lock-file primitive — because
the interesting fault points are between protocol steps, not between
syscalls.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List


class RealFS:
    """Production filesystem: every operation is as durable as the
    platform allows.

    ``write_bytes`` fsyncs the file before returning (so a rename that
    follows publishes *synced* bytes, never page-cache-only bytes that
    a power loss could tear), and ``fsync_dir`` makes a completed
    rename itself durable by syncing the containing directory entry.
    """

    def read_bytes(self, path: Path) -> bytes:
        with open(path, "rb") as fh:
            return fh.read()

    def write_bytes(self, path: Path, data: bytes, fsync: bool = True) -> None:
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())

    def rename(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        # directory fsync is best-effort where the platform lacks it
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def create_excl(self, path: Path, data: bytes) -> None:
        """Atomically create ``path`` with ``data``; raises
        ``FileExistsError`` when it already exists (the lock-file
        primitive)."""
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def unlink(self, path: Path) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    def mkdir(self, path: Path) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)

    def listdir(self, path: Path) -> List[str]:
        try:
            return sorted(os.listdir(path))
        except FileNotFoundError:
            return []

    def exists(self, path: Path) -> bool:
        return os.path.lexists(path)

    def stat(self, path: Path) -> os.stat_result:
        return os.stat(path)
