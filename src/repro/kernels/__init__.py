"""Computational kernels from Section 4.1.

Each kernel exists in two coupled forms:

* a *reference* numpy implementation (``repro.kernels.reference``) —
  the actual mathematics, used by the examples and validated in tests;
* a *trace* form (``repro.kernels.programs``) — the CE generator
  program describing the kernel's memory-access and compute structure
  (strip-mined vector loops, prefetch streams, chained operations),
  which drives the cycle-level simulator for Tables 1 and 2.

The two forms are parameterized consistently: the trace moves exactly
the words per strip that the numpy code touches.
"""

from repro.kernels.reference import (
    cg_solve,
    pentadiag_matvec,
    rank_k_update,
    tridiag_matvec,
    vector_fetch,
)
from repro.kernels.programs import (
    KERNELS,
    KernelShape,
    kernel_program,
)

__all__ = [
    "cg_solve",
    "pentadiag_matvec",
    "rank_k_update",
    "tridiag_matvec",
    "vector_fetch",
    "KERNELS",
    "KernelShape",
    "kernel_program",
]
