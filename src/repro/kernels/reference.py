"""Reference numpy implementations of the paper's kernels.

These are the real computations: the rank-64 update, the tridiagonal
matrix-vector product (TM), the vector fetch (VF/VL), and the
5-diagonal conjugate-gradient solver used for the PPT4 scalability
study ("This computation involves 5-diagonal matrix-vector products as
well as vector and reduction operations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def vector_fetch(source: np.ndarray) -> np.ndarray:
    """VF/VL: fetch a vector from (global) memory — a bandwidth probe.

    Returns a private copy, as the Cedar kernel moves the data into the
    processor side of the machine.
    """
    return np.array(source, copy=True)


def rank_k_update(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """RK: rank-k update ``A += B @ C`` with B (n x k) and C (k x n).

    The paper's matrix primitive "computes a rank-64 update to an
    n x n matrix"; k = 64 there.
    """
    n, k = b.shape
    if c.shape != (k, a.shape[1]):
        raise ValueError(f"shape mismatch: B {b.shape} vs C {c.shape}")
    if a.shape[0] != n:
        raise ValueError(f"shape mismatch: A {a.shape} vs B {b.shape}")
    result = a if out is None else out
    if out is not None:
        np.copyto(out, a)
    result += b @ c
    return result


def rank_k_flops(n: int, k: int = 64) -> int:
    """Floating-point operations in a rank-k update of an n x n matrix."""
    return 2 * k * n * n


def tridiag_matvec(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """TM: y = A x for tridiagonal A given by its three diagonals.

    ``lower`` has n-1 entries (subdiagonal), ``diag`` n, ``upper`` n-1.
    """
    n = diag.shape[0]
    if x.shape[0] != n:
        raise ValueError("x length must match diagonal")
    y = diag * x
    y[1:] += lower * x[:-1]
    y[:-1] += upper * x[1:]
    return y


def tridiag_flops(n: int) -> int:
    """5 flops per interior point (3 multiplies + 2 adds)."""
    return 5 * n - 4


def pentadiag_matvec(diagonals: Tuple[np.ndarray, ...], x: np.ndarray) -> np.ndarray:
    """y = A x for a 5-diagonal matrix, offsets (-2, -1, 0, 1, 2).

    This is the matrix shape of the PPT4 conjugate-gradient study (a
    2-D 5-point stencil yields exactly these diagonals).
    """
    if len(diagonals) != 5:
        raise ValueError("expected 5 diagonals")
    dm2, dm1, d0, dp1, dp2 = diagonals
    n = x.shape[0]
    if d0.shape[0] != n:
        raise ValueError("main diagonal length must match x")
    y = d0 * x
    y[1:] += dm1 * x[:-1]
    y[:-1] += dp1 * x[1:]
    y[2:] += dm2 * x[:-2]
    y[:-2] += dp2 * x[2:]
    return y


def make_spd_pentadiag(n: int, seed: int = 0) -> Tuple[np.ndarray, ...]:
    """A diagonally dominant (hence SPD) 5-diagonal test matrix."""
    rng = np.random.default_rng(seed)
    dm1 = -rng.uniform(0.1, 1.0, n - 1)
    dp1 = dm1.copy()
    dm2 = -rng.uniform(0.1, 1.0, n - 2)
    dp2 = dm2.copy()
    d0 = np.full(n, 0.0)
    d0[: n - 1] += -dp1
    d0[1:] += -dm1
    d0[: n - 2] += -dp2
    d0[2:] += -dm2
    d0 += rng.uniform(1.0, 2.0, n)  # strict dominance
    return dm2, dm1, d0, dp1, dp2


@dataclass(frozen=True)
class CGResult:
    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


def cg_solve(
    diagonals: Tuple[np.ndarray, ...],
    b: np.ndarray,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
) -> CGResult:
    """Conjugate gradients on a 5-diagonal SPD system.

    "a simple conjugate gradient algorithm (CG)" — the Section 4
    kernel; also the PPT4 scalability workload.
    """
    n = b.shape[0]
    if max_iter is None:
        max_iter = 10 * n
    x = np.zeros(n)
    r = b - pentadiag_matvec(diagonals, x)
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    iterations = 0
    while iterations < max_iter:
        if np.sqrt(rs) / b_norm <= tol:
            break
        ap = pentadiag_matvec(diagonals, p)
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs) * p
        rs = rs_new
        iterations += 1
    residual = float(np.linalg.norm(b - pentadiag_matvec(diagonals, x))) / b_norm
    return CGResult(x=x, iterations=iterations, residual=residual, converged=residual <= tol * 10)


def cg_flops_per_iteration(n: int) -> int:
    """Flops per CG iteration on a 5-diagonal system.

    matvec ~9n (5 mults + 4 adds), two dots 4n, three axpys 6n => ~19n.
    """
    return 19 * n
