"""CE trace programs for the Section 4.1 kernels.

Each kernel's inner loop is described by a :class:`KernelShape`: the
prefetch streams a strip consumes, the chained compute per word, the
register-register vector work (which "reduce[s] the demand on the
memory system"), global stores, and scalar loop overhead.  The shapes
below mirror the paper's descriptions:

* **VL/VF** — a vector fetch: pure global loads plus the store of the
  fetched vector; no arithmetic.  Dominated by memory accesses "but
  degrades less quickly due to the smaller prefetch block".
* **TM** — tridiagonal matrix-vector multiply: three diagonal streams,
  one register-register combine, one result store.
* **CG** — a conjugate-gradient step slice: five diagonal streams
  (5-point operator), register-register vector/reduction work, result
  store.
* **RK** — the rank-64 update: "prefetches blocks of 256 words and
  aggressively overlaps it with computation" (double-buffered in the
  512-word prefetch buffer), two chained flops per fetched word, plus
  the non-prefetched accumulator column traffic.

The compiler-generated kernels use 32-word prefetches ("the other codes
use compiler-generated 32-word prefetches").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Tuple

from repro.cluster.ce import (
    AwaitStream,
    Compute,
    ConsumeStream,
    GlobalLoad,
    GlobalStore,
    StartPrefetch,
)

#: vector strip length: one 32-word vector register.
STRIP = 32

#: scalar loop-control overhead per strip (address arithmetic, branch,
#: stripmine bookkeeping) in cycles.
SCALAR_OVERHEAD = 12.0

#: vector instruction startup (pipeline fill) in cycles.
VSTART = 12.0


@dataclass(frozen=True)
class KernelShape:
    """Structure of one strip of a kernel's inner loop."""

    name: str
    #: lengths of the prefetch streams consumed per strip.
    streams: Tuple[int, ...]
    #: chained compute cycles per fetched word.
    consume_cycles_per_word: float
    #: register-register vector cycles per strip (no memory demand).
    regreg_cycles: float
    #: words stored to global memory per strip.
    store_words: int
    #: floating-point operations per strip (for MFLOPS accounting).
    flops: float
    #: prefetch block size (32 compiler-generated, 256 for RK).
    prefetch_block: int = STRIP
    #: RK-style aggressive overlap (double-buffered autonomous prefetch).
    autonomous: bool = False
    #: words of non-prefetched global load per strip (RK's accumulator).
    plain_load_words: int = 0

    @property
    def loaded_words(self) -> int:
        return sum(self.streams) + self.plain_load_words


VF = KernelShape(
    name="VF",
    streams=(STRIP,),
    consume_cycles_per_word=1.0,
    regreg_cycles=0.0,
    store_words=STRIP,
    flops=0.0,
)

TM = KernelShape(
    name="TM",
    streams=(STRIP, STRIP, STRIP),
    consume_cycles_per_word=1.0,
    regreg_cycles=STRIP + VSTART,
    store_words=STRIP,
    flops=5.0 * STRIP,
)

CG = KernelShape(
    name="CG",
    streams=(STRIP,) * 5,
    consume_cycles_per_word=1.0,
    regreg_cycles=2 * (STRIP + VSTART),
    store_words=STRIP,
    flops=19.0 * STRIP,
)

RK = KernelShape(
    name="RK",
    streams=(256,),
    consume_cycles_per_word=1.0,
    regreg_cycles=0.0,
    store_words=4,  # A column write-back amortized over B blocks
    flops=2.0 * 256,
    prefetch_block=256,
    autonomous=True,
    plain_load_words=4,  # A column read amortized over B blocks
)

KERNELS = {shape.name: shape for shape in (VF, TM, CG, RK)}


def _strip_addresses(port: int, strip_index: int, shape: KernelShape) -> int:
    """Base word address for a strip.

    The paper's kernels run on arrays with power-of-two leading
    dimensions (n = 1K for RK; page-aligned vectors elsewhere), so in
    the real runs *every* CE's strips start at memory module 0 — each
    strip sweep chases the others through the modules in phase.  We
    keep that alignment (bases are multiples of the module count): the
    resulting transient hot-spotting is part of the contention the
    paper measures.
    """
    region = port * (1 << 16)
    # Arrays have power-of-two leading dimensions, so strips of one CE
    # stay module-aligned; across CEs the self-scheduled loops drift out
    # of phase, which we model as a coarse per-cluster module stagger.
    phase = (port // 8) * 8
    stride = (shape.loaded_words + 31) & ~31  # next multiple of 32
    return region + phase + strip_index * stride


def kernel_program(
    shape: KernelShape,
    port: int,
    strips: int,
    prefetch: bool = True,
) -> Generator:
    """Build the CE program for ``strips`` strips of kernel ``shape``.

    ``prefetch=False`` produces the GM/no-pref variant: the same strips
    through plain vector loads limited to two outstanding requests.
    """
    if shape.autonomous:
        return _autonomous_program(shape, port, strips, prefetch)
    return _compiler_program(shape, port, strips, prefetch)


def _compiler_program(
    shape: KernelShape, port: int, strips: int, prefetch: bool
) -> Generator:
    """Compiler-generated pattern: a prefetch "started immediately
    before the vector instruction ... only overlapped with the current
    vector instruction"."""
    for strip in range(strips):
        yield Compute(SCALAR_OVERHEAD)
        base = _strip_addresses(port, strip, shape)
        offset = 0
        for length in shape.streams:
            address = base + offset
            offset += length
            if prefetch:
                stream = yield StartPrefetch(length=length, stride=1, address=address)
                yield ConsumeStream(
                    stream,
                    cycles_per_word=shape.consume_cycles_per_word,
                    startup_cycles=VSTART,
                )
            else:
                yield GlobalLoad(
                    length=length,
                    stride=1,
                    address=address,
                    cycles_per_word=shape.consume_cycles_per_word,
                )
        if shape.plain_load_words:
            yield GlobalLoad(
                length=shape.plain_load_words, stride=1, address=base + offset
            )
        if shape.regreg_cycles:
            yield Compute(shape.regreg_cycles)
        if shape.store_words:
            yield GlobalStore(length=shape.store_words, stride=1, address=base)


def _autonomous_program(
    shape: KernelShape, port: int, strips: int, prefetch: bool
) -> Generator:
    """RK pattern: double-buffered autonomous prefetch — block ``k+1``
    is in flight while the CE computes on block ``k`` kept in the
    buffer."""
    block = shape.streams[0]

    def base(i: int) -> int:
        return _strip_addresses(port, i, shape)

    if not prefetch:
        for i in range(strips):
            yield Compute(SCALAR_OVERHEAD)
            yield GlobalLoad(
                length=block,
                stride=1,
                address=base(i),
                cycles_per_word=shape.consume_cycles_per_word,
            )
            if shape.plain_load_words:
                yield GlobalLoad(length=shape.plain_load_words, stride=1,
                                 address=base(i) + block)
            if shape.store_words:
                yield GlobalStore(length=shape.store_words, stride=1, address=base(i))
        return

    current = yield StartPrefetch(length=block, stride=1, address=base(0))
    yield AwaitStream(current)
    for i in range(strips):
        nxt = None
        if i + 1 < strips:
            nxt = yield StartPrefetch(
                length=block, stride=1, address=base(i + 1), keep_previous=True
            )
        yield Compute(SCALAR_OVERHEAD)
        yield ConsumeStream(
            current,
            cycles_per_word=shape.consume_cycles_per_word,
            startup_cycles=VSTART,
        )
        if shape.plain_load_words:
            yield GlobalLoad(length=shape.plain_load_words, stride=1,
                             address=base(i) + block)
        if shape.store_words:
            yield GlobalStore(length=shape.store_words, stride=1, address=base(i))
        if nxt is not None:
            yield AwaitStream(nxt)
            current = nxt
