"""Plain-text table rendering for benchmark harness output.

Every bench in ``benchmarks/`` regenerates one of the paper's tables or
figures; this module renders them in a uniform monospace format so that
the harness output can be compared side by side with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _render_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "NA"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table.

    >>> t = Table(title="demo", columns=["a", "b"])
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    precision: int = 1
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, row: Iterable[Cell]) -> None:
        row = list(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> List[Cell]:
        """Return the cells of the named column."""
        try:
            idx = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.precision)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 1,
) -> str:
    """Render ``rows`` under ``columns`` as an aligned monospace table."""
    rendered = [[_render_cell(c, precision) for c in row] for row in rows]
    headers = [str(c) for c in columns]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, sep, line(headers), sep]
    out.extend(line(row) for row in rendered)
    out.append(sep)
    return "\n".join(out)
