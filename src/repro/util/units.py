"""Unit conversions for the Cedar simulator.

The simulator's native time unit is the CE instruction cycle (170 ns on
Cedar, Section 2 of the paper).  All published overheads (90 us XDOALL
startup, 30 us iteration fetch, ...) are converted through these helpers
so a single clock parameter scales everything consistently.
"""

from __future__ import annotations

#: Cedar CE instruction cycle time in nanoseconds (paper, Section 2).
CYCLE_NS = 170.0

#: Bytes per 64-bit word (the network and vector unit operate on 64-bit data).
WORD_BYTES = 8

KB = 1024
MB = 1024 * 1024


def cycles_to_seconds(cycles: float, cycle_ns: float = CYCLE_NS) -> float:
    """Convert CE cycles to seconds."""
    return cycles * cycle_ns * 1e-9


def cycles_to_us(cycles: float, cycle_ns: float = CYCLE_NS) -> float:
    """Convert CE cycles to microseconds."""
    return cycles * cycle_ns * 1e-3


def seconds_to_cycles(seconds: float, cycle_ns: float = CYCLE_NS) -> float:
    """Convert seconds to CE cycles."""
    return seconds * 1e9 / cycle_ns


def us_to_cycles(us: float, cycle_ns: float = CYCLE_NS) -> float:
    """Convert microseconds to CE cycles."""
    return us * 1e3 / cycle_ns


def mflops(flops: float, seconds: float) -> float:
    """Delivered megaflops for ``flops`` floating-point operations in ``seconds``."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return flops / seconds / 1e6
