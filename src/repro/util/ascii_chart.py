"""Terminal line charts for the benchmark artifacts.

The paper's figures are plots; the harness renders its regenerated
series as ASCII so the artifacts in ``benchmarks/output`` are
self-contained text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


#: density ramp for single-row sparklines, lightest to darkest.
SPARK_SHADES = " .:-=+*#%@"


def sparkline(
    values: Sequence[float],
    width: Optional[int] = None,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One row of density shades for ``values`` — the timeline view
    that fits in a table cell.

    Scaling is min..max by default (or the explicit ``lo``/``hi``
    bounds); a flat series renders as all-lightest so "nothing
    happened" and "something happened uniformly" are distinguishable
    by the caller printing the range alongside.  With ``width`` set,
    longer series are folded by bucket-maximum — peaks survive
    downsampling, which is what hotspot scanning needs.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        folded = []
        for b in range(width):
            start = b * len(vals) // width
            end = max(start + 1, (b + 1) * len(vals) // width)
            folded.append(max(vals[start:end]))
        vals = folded
    floor = min(vals) if lo is None else lo
    ceil = max(vals) if hi is None else hi
    span = ceil - floor
    if span <= 0:
        return SPARK_SHADES[0] * len(vals)
    top = len(SPARK_SHADES) - 1
    return "".join(
        SPARK_SHADES[
            max(0, min(top, round((v - floor) / span * top)))
        ]
        for v in vals
    )


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Plot named (x, y) series on one ASCII grid.

    Each series is marked with its name's first character; collisions
    show the later series.  Axes are linear (optionally log-x), scaled
    to the data's bounding box.
    """
    import math

    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")

    def tx(x: float) -> float:
        if not log_x:
            return x
        if x <= 0:
            raise ValueError("log-x chart requires positive x values")
        return math.log10(x)

    points = [
        (tx(x), y) for pts in series.values() for x, y in pts
    ]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for name, pts in series.items():
        mark = name[0]
        for x, y in pts:
            col = round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.1f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{y_lo:10.1f} +" + "-" * width + "+")
    left = f"{(10 ** x_lo) if log_x else x_lo:.0f}"
    right = f"{(10 ** x_hi) if log_x else x_hi:.0f}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 12 + left + " " * pad + right)
    footer = "  ".join(
        part for part in (x_label and f"x: {x_label}", y_label and f"y: {y_label}")
        if part
    )
    if footer:
        lines.append(" " * 12 + footer)
    legend = ", ".join(f"{name[0]} = {name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
