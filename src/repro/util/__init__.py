"""Shared utilities: units, table rendering, deterministic RNG helpers."""

from repro.util.tables import Table, format_table
from repro.util.units import (
    CYCLE_NS,
    MB,
    KB,
    WORD_BYTES,
    cycles_to_seconds,
    cycles_to_us,
    mflops,
    seconds_to_cycles,
    us_to_cycles,
)

__all__ = [
    "Table",
    "format_table",
    "CYCLE_NS",
    "MB",
    "KB",
    "WORD_BYTES",
    "cycles_to_seconds",
    "cycles_to_us",
    "mflops",
    "seconds_to_cycles",
    "us_to_cycles",
]
