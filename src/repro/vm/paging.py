"""Paging, TLBs, and fault-cost accounting.

The TRFD study (Section 4.2) hinges on this machinery: "The improved
version was shown to have almost four times the number of page faults
relative to the one-cluster version ... The extra faults are TLB miss
faults as each additional cluster of a multicluster version first
accesses pages for which a valid PTE exists in global memory."
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.config import VMConfig


@dataclass(frozen=True)
class AccessOutcome:
    """Cost breakdown of one virtual-memory access."""

    cycles: float
    tlb_hit: bool
    tlb_miss_fault: bool
    page_fault: bool


class TLB:
    """A per-cluster translation lookaside buffer with LRU replacement."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._map: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> bool:
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, vpn: int, pfn: int) -> None:
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self._map[vpn] = pfn
            return
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[vpn] = pfn

    def flush(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return len(self._map)


class PageTable:
    """The Xylem process page table kept in global memory."""

    def __init__(self) -> None:
        self._valid: Dict[int, int] = {}
        self._next_frame = 0
        self.populations = 0

    def is_valid(self, vpn: int) -> bool:
        return vpn in self._valid

    def frame(self, vpn: int) -> int:
        return self._valid[vpn]

    def populate(self, vpn: int) -> int:
        """Xylem services a true page fault and installs a PTE."""
        if vpn in self._valid:
            return self._valid[vpn]
        frame = self._next_frame
        self._next_frame += 1
        self._valid[vpn] = frame
        self.populations += 1
        return frame

    def invalidate(self, vpn: int) -> None:
        self._valid.pop(vpn, None)

    @property
    def resident_pages(self) -> int:
        return len(self._valid)


@dataclass
class VMStats:
    accesses: int = 0
    tlb_hits: int = 0
    tlb_miss_faults: int = 0
    page_faults: int = 0
    fault_cycles: float = 0.0


class VirtualMemory:
    """Page table + per-cluster TLBs with the paper's fault taxonomy.

    * TLB hit — translation cached in the accessing cluster: cheap.
    * TLB-miss fault — PTE valid in global memory, but this cluster has
      not loaded it yet (the multicluster TRFD penalty): medium cost.
    * page fault — no valid PTE anywhere; Xylem allocates: expensive.
    """

    def __init__(self, config: VMConfig, clusters: int = 4) -> None:
        self.config = config
        self.page_table = PageTable()
        self.tlbs: List[TLB] = [TLB(config.tlb_entries) for _ in range(clusters)]
        self.stats = VMStats()
        self._touched_by: Dict[int, Set[int]] = {}

    def page_of(self, byte_address: int) -> int:
        return byte_address // self.config.page_bytes

    def access(self, byte_address: int, cluster: int) -> AccessOutcome:
        """Translate one access from ``cluster``; returns its cost."""
        if not 0 <= cluster < len(self.tlbs):
            raise ValueError(f"no cluster {cluster}")
        vpn = self.page_of(byte_address)
        tlb = self.tlbs[cluster]
        self.stats.accesses += 1
        if tlb.lookup(vpn):
            self.stats.tlb_hits += 1
            return AccessOutcome(0.0, tlb_hit=True, tlb_miss_fault=False, page_fault=False)
        self._touched_by.setdefault(vpn, set()).add(cluster)
        if self.page_table.is_valid(vpn):
            tlb.insert(vpn, self.page_table.frame(vpn))
            cycles = float(self.config.tlb_miss_cycles)
            self.stats.tlb_miss_faults += 1
            self.stats.fault_cycles += cycles
            return AccessOutcome(cycles, tlb_hit=False, tlb_miss_fault=True, page_fault=False)
        frame = self.page_table.populate(vpn)
        tlb.insert(vpn, frame)
        cycles = float(self.config.page_fault_cycles)
        self.stats.page_faults += 1
        self.stats.fault_cycles += cycles
        return AccessOutcome(cycles, tlb_hit=False, tlb_miss_fault=False, page_fault=True)

    def touch_range(self, start: int, length_bytes: int, cluster: int) -> float:
        """Access every page of ``[start, start+length)``; returns the
        total fault cycles — the bulk operation the TRFD analysis uses."""
        if length_bytes < 0:
            raise ValueError("negative range")
        total = 0.0
        first = self.page_of(start)
        last = self.page_of(start + max(0, length_bytes - 1))
        for vpn in range(first, last + 1):
            outcome = self.access(vpn * self.config.page_bytes, cluster)
            total += outcome.cycles
        return total

    @property
    def faults(self) -> int:
        """Total faults of both kinds (the unit [MaEG92] counts)."""
        return self.stats.tlb_miss_faults + self.stats.page_faults
