"""Xylem virtual memory (Section 2, "Memory Hierarchy").

4 KB pages over a physical address space whose lower half is cluster
memory and upper half is global memory.  Per-cluster TLBs cache PTEs;
a miss on a page with a valid PTE in global memory costs a TLB-miss
fault, a miss without one a full Xylem page fault — the distinction at
the heart of the paper's TRFD analysis [MaEG92].
"""

from repro.vm.address import AddressSpace, MemoryLevel, PhysicalAddress
from repro.vm.paging import AccessOutcome, PageTable, TLB, VirtualMemory

__all__ = [
    "AddressSpace",
    "MemoryLevel",
    "PhysicalAddress",
    "AccessOutcome",
    "PageTable",
    "TLB",
    "VirtualMemory",
]
