"""Cedar physical address-space layout.

"The physical address space is divided into two equal halves: cluster
memory is in the lower half and shared memory is in the upper half.
Global memory is directly addressable and shared by all CES.  Cluster
memory is only accessible to the CES within that cluster."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MemoryLevel(Enum):
    CLUSTER = "cluster"
    GLOBAL = "global"


@dataclass(frozen=True)
class PhysicalAddress:
    """A decoded physical address."""

    level: MemoryLevel
    offset: int  # byte offset within the level's half

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be non-negative")


class AddressSpace:
    """The two-halves physical address map.

    ``bits`` is the physical address width; the top bit selects the
    half.  Accessing cluster space of another cluster is an error the
    hardware cannot express — cluster memory is simply not addressable
    remotely, so :meth:`check_access` enforces it.
    """

    def __init__(self, bits: int = 32) -> None:
        if bits < 2:
            raise ValueError("address space too small")
        self.bits = bits
        self.half = 1 << (bits - 1)

    def decode(self, physical: int) -> PhysicalAddress:
        if not 0 <= physical < (1 << self.bits):
            raise ValueError(f"address {physical:#x} outside {self.bits}-bit space")
        if physical >= self.half:
            return PhysicalAddress(MemoryLevel.GLOBAL, physical - self.half)
        return PhysicalAddress(MemoryLevel.CLUSTER, physical)

    def encode(self, level: MemoryLevel, offset: int) -> int:
        if offset >= self.half:
            raise ValueError("offset exceeds half-space")
        if level is MemoryLevel.GLOBAL:
            return self.half + offset
        return offset

    def is_global(self, physical: int) -> bool:
        return self.decode(physical).level is MemoryLevel.GLOBAL

    def check_access(self, physical: int, cluster: int, owner_cluster: int) -> None:
        """Raise when a CE touches another cluster's local memory —
        "Cluster memory is only accessible to the CES within that
        cluster"."""
        decoded = self.decode(physical)
        if decoded.level is MemoryLevel.CLUSTER and cluster != owner_cluster:
            raise PermissionError(
                f"cluster {cluster} cannot address cluster {owner_cluster} memory"
            )
