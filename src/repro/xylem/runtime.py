"""The Cedar runtime library: parallel-loop scheduling and its costs.

Section 3.2: "XDOALL ... processors get started, terminated, and
scheduled through functions of the run-time library.  Since these
operations work through the global memory there is a typical loop
startup latency of 90 us and fetching the next iteration takes about
30 us. ... The CDOALL makes use of the concurrency control bus ... and
can typically start in a few microseconds."

"The Cedar synchronization instructions have been mainly used in the
implementation of the runtime library, where they have proven useful to
control loop self-scheduling" — without them, self-scheduling falls
back to lock-based software queues (the "W/o Cedar Synchronization"
column of Table 3).

The library is *functional*: self-scheduled loops really claim
iterations through a :class:`~repro.gmemory.sync.SyncProcessor`
fetch-and-add, and the produced :class:`LoopSchedule` lists exactly
which worker ran which iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Sequence

from repro.core.config import RuntimeConfig
from repro.gmemory.sync import SyncProcessor
from repro.util.units import us_to_cycles


class LoopKind(Enum):
    XDOALL = "xdoall"   # all CEs machine-wide, scheduled via global memory
    SDOALL = "sdoall"   # iterations spread over clusters
    CDOALL = "cdoall"   # iterations spread over one cluster's CEs via CCB


@dataclass(frozen=True)
class ScheduleCost:
    """Per-loop scheduling overheads, in microseconds."""

    startup_us: float
    fetch_us: float


@dataclass
class LoopSchedule:
    """The outcome of scheduling one parallel loop.

    ``assignment[w]`` lists the iterations worker ``w`` executed;
    ``finish_us(work)`` folds per-iteration work into a makespan.
    """

    kind: LoopKind
    workers: int
    assignment: List[List[int]]
    cost: ScheduleCost
    self_scheduled: bool

    def makespan_us(self, work_us: Sequence[float]) -> float:
        """Loop wall time: startup plus the busiest worker's iterations
        with a fetch overhead per claim."""
        per_worker = []
        for its in self.assignment:
            busy = sum(work_us[i] for i in its) + self.cost.fetch_us * len(its)
            per_worker.append(busy)
        longest = max(per_worker) if per_worker else 0.0
        return self.cost.startup_us + longest

    @property
    def iterations(self) -> int:
        return sum(len(its) for its in self.assignment)


class RuntimeLibrary:
    """Loop scheduling with Cedar-synchronization on or off."""

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        use_cedar_sync: bool = True,
        cycle_ns: float = 170.0,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.use_cedar_sync = use_cedar_sync
        self.cycle_ns = cycle_ns
        self.sync = SyncProcessor()
        self._next_counter = 0

    # -- costs -------------------------------------------------------------

    def loop_cost(self, kind: LoopKind) -> ScheduleCost:
        cfg = self.config
        if kind is LoopKind.XDOALL:
            startup, fetch = cfg.xdoall_startup_us, cfg.xdoall_fetch_us
        elif kind is LoopKind.SDOALL:
            startup, fetch = cfg.sdoall_startup_us, cfg.sdoall_fetch_us
        else:
            startup, fetch = cfg.cdoall_startup_us, cfg.cdoall_fetch_us
        if not self.use_cedar_sync and kind is not LoopKind.CDOALL:
            # lock-based software scheduling through plain memory ops
            fetch *= cfg.no_sync_fetch_factor
        return ScheduleCost(startup_us=startup, fetch_us=fetch)

    def startup_cycles(self, kind: LoopKind) -> float:
        return us_to_cycles(self.loop_cost(kind).startup_us, self.cycle_ns)

    def fetch_cycles(self, kind: LoopKind) -> float:
        return us_to_cycles(self.loop_cost(kind).fetch_us, self.cycle_ns)

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        kind: LoopKind,
        iterations: int,
        workers: int,
        self_scheduled: bool = True,
        work_us: Optional[Sequence[float]] = None,
    ) -> LoopSchedule:
        """Distribute ``iterations`` over ``workers``.

        Static scheduling deals iterations out in balanced blocks;
        self-scheduling replays the fetch-and-add protocol: whenever a
        worker goes idle it claims the counter's next value.  For
        self-scheduling with non-uniform ``work_us``, claims follow the
        simulated completion order, which is what makes it balance.
        """
        if iterations < 0:
            raise ValueError("negative iteration count")
        if workers < 1:
            raise ValueError("need at least one worker")
        if not self_scheduled:
            assignment: List[List[int]] = [[] for _ in range(workers)]
            block = (iterations + workers - 1) // workers if iterations else 0
            for w in range(workers):
                start = w * block
                stop = min(start + block, iterations)
                if start < stop:
                    assignment[w] = list(range(start, stop))
            return LoopSchedule(kind, workers, assignment, self.loop_cost(kind), False)

        counter_addr = self._fresh_counter()
        cost = self.loop_cost(kind)
        assignment = [[] for _ in range(workers)]
        clocks = [0.0] * workers
        while True:
            w = min(range(workers), key=lambda i: clocks[i])
            claimed = self.sync.fetch_and_add(counter_addr)
            if claimed >= iterations:
                break
            assignment[w].append(claimed)
            work = work_us[claimed] if work_us is not None else 1.0
            clocks[w] += cost.fetch_us + work
        return LoopSchedule(kind, workers, assignment, cost, True)

    def _fresh_counter(self) -> int:
        self._next_counter += 1
        return self._next_counter

    # -- helpers used by the application performance model ---------------------

    def loop_time_us(
        self,
        kind: LoopKind,
        iterations: int,
        workers: int,
        work_us_per_iteration: float,
        self_scheduled: bool = True,
    ) -> float:
        """Closed-form loop wall time for uniform iterations: startup +
        ceil(n/P) waves of (fetch + work)."""
        cost = self.loop_cost(kind)
        if iterations == 0:
            return cost.startup_us
        waves = -(-iterations // workers)  # ceil
        return cost.startup_us + waves * (cost.fetch_us + work_us_per_iteration)
