"""Xylem file-system services, served by the cluster IPs.

"Xylem exports virtual memory, scheduling, and file system services
for Cedar"; inside a cluster, "IPs perform input/output and various
other tasks" — CEs hand I/O requests to interactive processors.

The cost model distinguishes FORMATTED from UNFORMATTED Fortran I/O:
formatted records pay a per-datum ASCII conversion on the IP (the
whole of BDNA's Table 4 story: "The execution time for BDNA is reduced
to 70 secs. by simply replacing formatted with unformatted 1/0"), and
MG3D's measured version "includes the elimination of file 1/0"
entirely.

The file system is functional: files hold real bytes/values, and the
accounting returns the simulated I/O time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np


class IOMode(Enum):
    FORMATTED = "formatted"
    UNFORMATTED = "unformatted"


@dataclass(frozen=True)
class IOCosts:
    """Per-operation costs in microseconds (IP-side)."""

    #: raw transfer per 64-bit word (disk + buffer management).
    word_transfer_us: float = 1.0
    #: extra ASCII conversion per value for FORMATTED records — the
    #: ~20x penalty the BDNA optimization removes.
    format_conversion_us: float = 19.0
    #: per-record (I/O statement) overhead.
    record_overhead_us: float = 50.0
    #: open/close bookkeeping.
    open_close_us: float = 200.0


@dataclass
class XylemFile:
    name: str
    mode: IOMode
    records: List[np.ndarray] = field(default_factory=list)
    open: bool = True
    read_cursor: int = 0

    @property
    def words(self) -> int:
        return int(sum(r.size for r in self.records))


@dataclass
class FSStats:
    opens: int = 0
    reads: int = 0
    writes: int = 0
    words: int = 0
    io_us: float = 0.0


class XylemFileSystem:
    """The Cedar file-system service."""

    def __init__(self, costs: IOCosts = IOCosts()) -> None:
        self.costs = costs
        self._files: Dict[str, XylemFile] = {}
        self.stats = FSStats()

    # -- file lifecycle ------------------------------------------------------

    def open(self, name: str, mode: IOMode = IOMode.FORMATTED) -> XylemFile:
        """OPEN: create or reopen a unit.  Reopening rewinds."""
        existing = self._files.get(name)
        if existing is not None:
            if existing.mode is not mode:
                raise ValueError(
                    f"{name}: cannot reopen {existing.mode.value} file as {mode.value}"
                )
            existing.open = True
            existing.read_cursor = 0
            self._charge(self.costs.open_close_us)
            return existing
        f = XylemFile(name=name, mode=mode)
        self._files[name] = f
        self.stats.opens += 1
        self._charge(self.costs.open_close_us)
        return f

    def close(self, name: str) -> None:
        f = self._lookup(name)
        f.open = False
        self._charge(self.costs.open_close_us)

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    # -- records ---------------------------------------------------------------

    def write(self, name: str, values: Sequence[float]) -> float:
        """WRITE one record; returns the charged I/O time (us)."""
        f = self._require_open(name)
        record = np.asarray(values, dtype=float).reshape(-1)
        f.records.append(np.array(record, copy=True))
        us = self._record_cost(f.mode, record.size)
        self.stats.writes += 1
        self.stats.words += record.size
        self._charge(us)
        return us

    def read(self, name: str) -> np.ndarray:
        """READ the next record (sequential access, like Fortran units)."""
        f = self._require_open(name)
        if f.read_cursor >= len(f.records):
            raise EOFError(f"{name}: no more records")
        record = f.records[f.read_cursor]
        f.read_cursor += 1
        us = self._record_cost(f.mode, record.size)
        self.stats.reads += 1
        self.stats.words += record.size
        self._charge(us)
        return np.array(record, copy=True)

    def rewind(self, name: str) -> None:
        self._require_open(name).read_cursor = 0

    # -- cost model --------------------------------------------------------------

    def _record_cost(self, mode: IOMode, words: int) -> float:
        us = self.costs.record_overhead_us + words * self.costs.word_transfer_us
        if mode is IOMode.FORMATTED:
            us += words * self.costs.format_conversion_us
        return us

    def formatted_penalty(self) -> float:
        """Ratio of formatted to unformatted per-word cost for large
        records — the BDNA optimization factor (~20x)."""
        return (
            self.costs.word_transfer_us + self.costs.format_conversion_us
        ) / self.costs.word_transfer_us

    # -- internals ----------------------------------------------------------------

    def _lookup(self, name: str) -> XylemFile:
        f = self._files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        return f

    def _require_open(self, name: str) -> XylemFile:
        f = self._lookup(name)
        if not f.open:
            raise ValueError(f"{name} is not open")
        return f

    def _charge(self, us: float) -> None:
        self.stats.io_us += us
