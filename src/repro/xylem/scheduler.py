"""Cluster tasks and gang scheduling.

Xylem's unit of scheduling is the *cluster task*: an SDOALL iteration
(or the serial program) runs on one cluster, whose CEs are gang-
scheduled together by the concurrency bus.  Single-user mode (how all
the paper's measurements were taken) means tasks never time-share.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_task_ids = itertools.count()


@dataclass
class ClusterTask:
    """One gang-scheduled unit of work on a cluster."""

    process: "XylemProcess"
    duration: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    cluster: Optional[int] = None
    start_time: Optional[float] = None

    @property
    def end_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time + self.duration

    @property
    def scheduled(self) -> bool:
        return self.cluster is not None


@dataclass
class XylemProcess:
    """A Cedar program: its tasks and accumulated schedule."""

    name: str
    tasks: List[ClusterTask] = field(default_factory=list)

    def new_task(self, duration: float) -> ClusterTask:
        if duration < 0:
            raise ValueError("task duration must be non-negative")
        task = ClusterTask(process=self, duration=duration)
        self.tasks.append(task)
        return task

    @property
    def makespan(self) -> float:
        ends = [t.end_time for t in self.tasks if t.end_time is not None]
        return max(ends) if ends else 0.0


class GangScheduler:
    """Greedy earliest-available-cluster scheduler.

    Successive SDOALL loops schedule their iterations "on the same
    clusters" (Section 3.2, data localization) — sticky placement is
    therefore supported via ``affinity`` keys.
    """

    def __init__(self, clusters: int = 4) -> None:
        if clusters < 1:
            raise ValueError("need at least one cluster")
        self.clusters = clusters
        self._free_at = [0.0] * clusters
        self._affinity: Dict[object, int] = {}

    def schedule(self, task: ClusterTask, affinity: Optional[object] = None) -> ClusterTask:
        """Place ``task`` on a cluster; with ``affinity``, reuse the
        cluster that key ran on before (cluster-memory data reuse)."""
        if task.scheduled:
            raise ValueError(f"task {task.task_id} already scheduled")
        if affinity is not None and affinity in self._affinity:
            cluster = self._affinity[affinity]
        else:
            cluster = min(range(self.clusters), key=lambda c: self._free_at[c])
            if affinity is not None:
                self._affinity[affinity] = cluster
        task.cluster = cluster
        task.start_time = self._free_at[cluster]
        self._free_at[cluster] = task.end_time or 0.0
        return task

    def barrier(self) -> float:
        """All clusters synchronize: every cluster becomes free at the
        time the last one finishes; returns that time."""
        t = max(self._free_at)
        self._free_at = [t] * self.clusters
        return t

    @property
    def free_times(self) -> List[float]:
        return list(self._free_at)
