"""The Xylem operating system layer (Section 3, [EABM91]).

Xylem "links the four separate operating systems in Alliant clusters
into the Cedar OS" and "exports virtual memory, scheduling, and file
system services".  Here it provides cluster tasks and gang scheduling
plus the runtime library's loop-scheduling machinery and costs.
"""

from repro.xylem.scheduler import ClusterTask, GangScheduler, XylemProcess
from repro.xylem.runtime import (
    LoopKind,
    LoopSchedule,
    RuntimeLibrary,
    ScheduleCost,
)
from repro.xylem.filesystem import IOCosts, IOMode, XylemFile, XylemFileSystem

__all__ = [
    "ClusterTask",
    "GangScheduler",
    "XylemProcess",
    "LoopKind",
    "LoopSchedule",
    "RuntimeLibrary",
    "ScheduleCost",
    "IOCosts",
    "IOMode",
    "XylemFile",
    "XylemFileSystem",
]
