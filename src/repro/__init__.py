"""Reproduction of *The Cedar System and an Initial Performance Study*.

The package is layered:

* ``repro.core`` / ``repro.network`` / ``repro.gmemory`` /
  ``repro.prefetch`` / ``repro.cluster`` — a cycle-approximate
  discrete-event simulator of the Cedar hardware (Section 2 of the
  paper), used by the kernel memory-system studies (Tables 1 and 2).
* ``repro.vm`` / ``repro.xylem`` / ``repro.fortran`` /
  ``repro.restructurer`` — the software stack: Xylem OS services, the
  Cedar Fortran programming model, and the KAP-style restructurer
  (Section 3).
* ``repro.kernels`` / ``repro.perfect`` / ``repro.machines`` /
  ``repro.metrics`` / ``repro.perf`` — the evaluation: kernels, the
  Perfect Benchmarks models, comparison machines, and the
  judging-parallelism methodology (Section 4).

Quickstart::

    from repro import CedarMachine, CedarConfig
    machine = CedarMachine(CedarConfig())
    print(machine.describe_topology())
"""

from repro.core import CedarConfig, CedarMachine, DEFAULT_CONFIG, Engine

__version__ = "1.0.0"

__all__ = ["CedarConfig", "CedarMachine", "DEFAULT_CONFIG", "Engine", "__version__"]
