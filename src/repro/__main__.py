"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro topology                 # Figures 1-2
    python -m repro table 1|2|3|4|5|6        # the evaluation tables
    python -m repro fig3                     # the efficiency scatter
    python -m repro ppt4                     # the scalability study
    python -m repro overheads                # Section 3.2 costs
    python -m repro characterization         # Section 4.1 anchors
    python -m repro degradation              # robustness fault-rate sweep
    python -m repro soak [--requests N]      # open-loop streaming soak
    python -m repro all [--fast]             # the paper's artifacts
    python -m repro run-all [NAMES...] [--jobs N] [--cached] [--fast]
                            [--timeout S] [--retries N] [--stream]
                            [--telemetry] [--telemetry-dir D]
                            [--heartbeat S] [--no-progress]
                                             # every registered experiment
    python -m repro compare A B [--stream] [--threshold T] [--all]
                                             # cross-run differential report
    python -m repro store verify [--repair] | repair | gc --max-bytes N | stats
                                             # result-store fsck and retention
    python -m repro trace EXPERIMENT --out trace.json [--timeline [N]]
                                             # Chrome/Perfetto trace
    python -m repro analyze EXPERIMENT [--out spans.json] [--top N] [--stream]
                                             # request-latency analysis
    python -m repro timeline EXPERIMENT [--interval N] [--out t.json]
                                             # interval metric timelines
    python -m repro profile EXPERIMENT [--top N] [--out p.json]
                            [--compare-batched]  # host wall-clock hotspots
    python -m repro report [EXPERIMENT] [--stream] [--interval N]
                                             # structured run reports

``--fast`` shrinks the cycle-level simulations to smoke size.

Failures are contained: an unknown experiment name or a failed run
prints a one-line ``error:`` to stderr and exits nonzero (no
traceback; set ``REPRO_DEBUG=1`` to re-raise).  ``run-all`` keeps
going past individual failures — it prints the partial results, lists
each failed artifact, and exits 1.

``run-all`` drives the full experiment registry (the paper artifacts
plus the studies and ablations), fanning independent experiments
across ``--jobs`` worker processes and, with ``--cached``, memoizing
results on disk keyed by experiment arguments and the machine
configuration hash.  It also writes one RunReport JSON per artifact
into ``--report-dir`` (default ``.repro-reports``; disable with
``--no-reports``).

``trace`` re-runs one experiment with a :class:`ChromeTracer` attached
to every machine it builds and writes a trace-event JSON openable in
https://ui.perfetto.dev or ``chrome://tracing``.

``analyze`` re-runs one experiment with a :class:`SpanCollector`
attached, prints the request-latency decomposition (per-phase and
per-stage tables, percentiles, bottleneck attribution, slowest-request
waterfalls), and with ``--out`` writes the stitched spans as JSON.

``timeline`` re-runs one experiment with a
:class:`~repro.monitor.timeline.MetricTimeline` riding each machine's
engine pulse, prints per-series sparkline timelines (events, link
busy cycles, queue depths, memory occupancy, fault rates per
interval), and with ``--out`` writes the timeline document(s) as JSON.
``trace --timeline`` folds the same series into the Chrome trace as
Perfetto counter tracks.

``profile`` runs one experiment under cProfile and attributes host
wall-clock self-time to Cedar subsystems (engine / network / gmemory /
monitor / ...), naming the frames that hold the events/sec plateau.
``--compare-batched`` profiles the scalar and batched engine drains
back to back and prints the subsystem-share delta — the map of where
the remaining scalar time lives.

``report`` with an experiment name runs it instrumented and prints its
RunReport JSON; with no name it aggregates the report directory into a
summary table.  ``report EXPERIMENT --dir D`` instead *loads* the
collected report from ``D`` and errors (exit 1) when it was never
collected.

``run-all --telemetry`` records the fleet lifecycle (queued / started
/ heartbeat / retry / failed / completed events) as schema-versioned
JSONL under ``--telemetry-dir`` (default ``.repro-telemetry``), shows
live per-experiment progress (a repainting table on a TTY, plain
transition lines otherwise; ``--no-progress`` silences it), and turns
``--timeout`` into a *stall budget*: a worker is killed only after
that many seconds without heartbeat progress, so a slow-but-working
experiment survives while a hung one dies fast.

``compare`` diffs two runs' reports (files or report directories, or
``--stream`` merged spans documents) metric by metric, using the
paper's stability metric as the significance threshold, and exits
non-zero when the runs disagree — a ready-made CI perf gate.

``store`` maintains the sharded crash-safe result store behind
``run-all --cached``: ``verify`` fscks every entry (checksums, orphan
temps, stale locks, legacy flat files; exit 1 on inconsistency),
``repair`` (= ``verify --repair``) quarantines the corrupt and removes
the debris, ``gc --max-bytes N`` evicts oldest entries to a byte
budget, and ``stats`` summarizes the tree.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

#: the registry slice that ``all`` has always printed, in order.
PAPER_SECTIONS = (
    "topology",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig3",
    "ppt4",
    "overheads",
    "characterization",
)


def _run_one(name: str, fast: bool = False) -> str:
    from repro.experiments.runner import run_experiment

    return run_experiment(name, fast=fast).output


def _topology(args) -> str:
    return _run_one("topology")


def _table(args) -> str:
    number = args.number
    if number not in range(1, 7):
        raise SystemExit(f"no table {number}; the paper has tables 1-6")
    return _run_one(f"table{number}", fast=args.fast)


def _fig3(args) -> str:
    return _run_one("fig3")


def _ppt4(args) -> str:
    return _run_one("ppt4")


def _overheads(args) -> str:
    return _run_one("overheads")


def _characterization(args) -> str:
    return _run_one("characterization")


def _scaling(args) -> str:
    return _run_one("scaling")


def _permutations(args) -> str:
    return _run_one("permutations")


def _multiprogramming(args) -> str:
    return _run_one("multiprogramming")


def _degradation(args) -> str:
    return _run_one("degradation", fast=args.fast)


def _soak(args) -> str:
    from repro.experiments.soak import render_soak, run_soak

    return render_soak(
        run_soak(
            requests=args.requests,
            seed=args.seed,
            stream=not args.buffered,
        )
    )


def _all(args) -> str:
    from repro.experiments.runner import render_all, run_all

    return render_all(run_all(names=PAPER_SECTIONS, fast=args.fast))


def _run_all(args) -> str:
    import json
    import os

    from repro.experiments.runner import DEFAULT_CACHE_DIR, run_all
    from repro.monitor.report import DEFAULT_REPORT_DIR

    cache_dir = None
    if args.cached:
        cache_dir = Path(args.cache_dir or DEFAULT_CACHE_DIR)
    collect = not args.no_reports

    telemetry = progress = None
    if args.telemetry:
        from repro.monitor.progress import make_progress
        from repro.monitor.telemetry import (
            DEFAULT_HEARTBEAT_S,
            DEFAULT_TELEMETRY_DIR,
            FleetTelemetry,
            TelemetrySink,
        )

        telemetry_dir = Path(args.telemetry_dir or DEFAULT_TELEMETRY_DIR)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        sink = TelemetrySink(telemetry_dir / f"run-{stamp}-{os.getpid()}.jsonl")
        if not args.no_progress:
            progress = make_progress(out=sys.stderr)
        telemetry = FleetTelemetry(
            sink=sink,
            on_event=progress.handle if progress is not None else None,
            heartbeat_s=args.heartbeat or DEFAULT_HEARTBEAT_S,
        )

    start = time.perf_counter()
    try:
        results = run_all(
            names=args.names or None,
            jobs=args.jobs,
            fast=args.fast,
            cache_dir=cache_dir,
            collect_reports=collect,
            timeout_s=args.timeout,
            retries=args.retries,
            stream=args.stream,
            telemetry=telemetry,
        )
    finally:
        if progress is not None:
            progress.close()
        if telemetry is not None:
            telemetry.close()
            print(
                f"[run-all] {telemetry.events} telemetry events -> "
                f"{telemetry.sink.path}",
                file=sys.stderr,
            )
    elapsed = time.perf_counter() - start

    if collect:
        report_dir = Path(args.report_dir or DEFAULT_REPORT_DIR)
        report_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for result in results:
            if result.report is not None:
                (report_dir / f"{result.name}.json").write_text(
                    json.dumps(result.report, indent=1)
                )
                written += 1
        print(f"[run-all] {written} run reports -> {report_dir}/", file=sys.stderr)

    sections = []
    for result in results:
        rule = "=" * 66
        if result.ok:
            origin = "cached" if result.cached else f"{result.elapsed_s:.1f}s"
            body = result.output
        else:
            origin = f"FAILED after {result.attempts} attempt(s)"
            body = f"error: {result.error}"
        sections.append(
            f"{rule}\n{result.name} — {result.title}  [{origin}]\n{rule}\n{body}"
        )
    hits = sum(1 for r in results if r.cached)
    failed = [r for r in results if not r.ok]
    print(
        f"[run-all] {len(results)} experiments in {elapsed:.1f}s "
        f"({hits} cached, {len(failed)} failed, jobs={args.jobs})",
        file=sys.stderr,
    )
    for result in failed:
        print(
            f"[run-all] FAILED {result.name}: {result.error} "
            f"({result.attempts} attempt(s))",
            file=sys.stderr,
        )
    text = "\n\n".join(sections)
    return (text, 1) if failed else text


def _trace(args) -> str:
    from repro.core.context import add_context_observer, remove_context_observer
    from repro.experiments.runner import clear_memoized_runs, experiment
    from repro.monitor.tracer import ChromeTracer, validate_chrome_trace

    exp = experiment(args.experiment)
    tracer = ChromeTracer()
    machines = {"n": 0}

    def _observe(ctx) -> None:
        # one scope per machine so several coexist in the same trace
        scope = f"m{machines['n']}:" if machines["n"] else ""
        machines["n"] += 1
        tracer.attach(ctx.bus, scope=scope)

    recorder = None
    if getattr(args, "timeline", None) is not None:
        from repro.monitor.timeline import TimelineRecorder

        recorder = TimelineRecorder(interval_cycles=args.timeline).install()
    clear_memoized_runs()  # memoized runs would build no machines
    observer = add_context_observer(_observe)
    try:
        exp.runner(**exp.arguments(args.fast))
    finally:
        remove_context_observer(observer)
        tracer.detach()
        if recorder is not None:
            recorder.uninstall()
    counter_note = ""
    if recorder is not None:
        docs = recorder.documents()
        for i, doc in enumerate(docs):
            tracer.ingest_timeline(doc, scope=f"m{i}:" if i else "")
        n_series = sum(len(d.get("series", {})) for d in docs)
        counter_note = f", {n_series} timeline counter track(s)"
    n_events, n_tracks = validate_chrome_trace(tracer.trace())
    tracer.write(args.out)
    return (
        f"wrote {args.out}: {n_events} events on {n_tracks} tracks from "
        f"{machines['n']} machine(s), {tracer.dropped} dropped{counter_note}\n"
        f"open in https://ui.perfetto.dev or chrome://tracing"
    )


def _timeline(args) -> str:
    import json

    from repro.experiments.runner import clear_memoized_runs, experiment
    from repro.monitor.analysis import timeline_report
    from repro.monitor.timeline import TimelineRecorder, validate_timeline

    exp = experiment(args.experiment)
    clear_memoized_runs()  # memoized runs would build no machines
    with TimelineRecorder(interval_cycles=args.interval) as recorder:
        exp.runner(**exp.arguments(args.fast))
    docs = recorder.documents()
    if not docs:
        raise SystemExit(
            f"experiment {args.experiment!r} built no machines to sample"
        )
    sections = []
    for i, doc in enumerate(docs):
        body = timeline_report(doc)
        sections.append(f"[machine {i}]\n{body}" if len(docs) > 1 else body)
    if args.out:
        n_series = n_intervals = 0
        for doc in docs:
            ns, ni = validate_timeline(doc)
            n_series += ns
            n_intervals += ni
        bundle = docs[0] if len(docs) == 1 else {"machines": docs}
        with open(args.out, "w") as fh:
            json.dump(bundle, fh)
        sections.append(
            f"wrote {args.out}: {n_series} series over {n_intervals} "
            f"interval(s) from {len(docs)} machine(s)"
        )
    return "\n\n".join(sections)


def _profile(args) -> str:
    import json
    import os

    from repro.experiments.runner import clear_memoized_runs, experiment
    from repro.monitor.profiler import (
        profile_call,
        render_comparison,
        render_profile,
    )

    exp = experiment(args.experiment)
    kwargs = exp.arguments(args.fast)

    def _run(gate=None):
        previous = os.environ.get("CEDAR_BATCHED")
        if gate is not None:
            os.environ["CEDAR_BATCHED"] = gate
        try:
            clear_memoized_runs()  # profile the simulation, not a memo replay
            profile, _output = profile_call(
                lambda: exp.runner(**kwargs),
                experiment=args.experiment,
                top=args.top,
            )
            return profile
        finally:
            if gate is not None:
                if previous is None:
                    os.environ.pop("CEDAR_BATCHED", None)
                else:
                    os.environ["CEDAR_BATCHED"] = previous

    if args.compare_batched:
        scalar = _run("0")
        batched = _run("1")
        sections = [
            render_comparison(scalar, batched),
            render_profile(batched),
        ]
        document = {
            "scalar": scalar.to_dict(),
            "batched": batched.to_dict(),
        }
    else:
        profile = _run()
        sections = [render_profile(profile)]
        document = profile.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(document, fh, indent=1)
        sections.append(f"wrote {args.out}")
    return "\n\n".join(sections)


def _analyze(args) -> str:
    from repro.core.context import add_context_observer, remove_context_observer
    from repro.experiments.runner import clear_memoized_runs, experiment
    from repro.monitor.analysis import latency_report
    from repro.monitor.spans import LatencyAnalysis, SpanCollector, validate_spans

    exp = experiment(args.experiment)
    collectors = []

    if args.stream:
        from repro.monitor.streamstore import StreamingSpanStore

        def _observe(ctx) -> None:
            collectors.append(StreamingSpanStore().attach(ctx.bus))

    else:

        def _observe(ctx) -> None:
            collectors.append(SpanCollector().attach(ctx.bus))

    clear_memoized_runs()  # memoized runs would build no machines
    observer = add_context_observer(_observe)
    try:
        exp.runner(**exp.arguments(args.fast))
    finally:
        remove_context_observer(observer)
        for collector in collectors:
            collector.detach()
    if not collectors:
        raise SystemExit(
            f"experiment {args.experiment!r} built no machines to trace"
        )
    if args.stream:
        from repro.monitor.streamstore import (
            StreamingLatencyAnalysis,
            merge_streaming_docs,
        )

        analysis = StreamingLatencyAnalysis.from_stores(collectors)
        traced = analysis.requests
        docs = [c.spans() for c in collectors]
        incomplete = sum(d["incomplete"] for d in docs)
        dropped = analysis.dropped
        footprint = sum(c.tracing_footprint() for c in collectors)
        tail = (
            f"{traced} requests folded across {len(collectors)} machine(s)"
            f" ({incomplete} incomplete at sim end, {dropped} dropped, "
            f"{analysis.evicted} evicted; {footprint} resident traced items)"
        )
    else:
        spans = [s for c in collectors for s in c.complete_spans()]
        analysis = LatencyAnalysis(
            spans, dropped=sum(c.dropped for c in collectors)
        )
        incomplete = sum(len(c.incomplete_spans()) for c in collectors)
        tail = (
            f"{len(spans)} requests traced across {len(collectors)} machine(s)"
            f" ({incomplete} incomplete at sim end, {analysis.dropped} dropped)"
        )
    sections = [latency_report(analysis, top=args.top), tail]
    if args.out:
        import json

        if args.stream:
            doc = merge_streaming_docs(docs)
        elif len(collectors) == 1:
            doc = collectors[0].spans()
        else:
            docs = [c.spans() for c in collectors]
            doc = {
                "version": docs[0]["version"],
                "complete": sum(d["complete"] for d in docs),
                "incomplete": sum(d["incomplete"] for d in docs),
                "dropped": sum(d["dropped"] for d in docs),
                # request ids are process-wide unique, so machines merge
                "requests": [r for d in docs for r in d["requests"]],
            }
        n_requests, n_complete = validate_spans(doc)
        with open(args.out, "w") as fh:
            json.dump(doc, fh)
        sections.append(
            f"wrote {args.out}: {n_requests} spans ({n_complete} complete)"
        )
    return "\n\n".join(sections)


def _report(args) -> str:
    import json

    from repro.monitor.report import DEFAULT_REPORT_DIR, render_report_summary

    if args.experiment is None:
        report_dir = Path(args.dir or DEFAULT_REPORT_DIR)
        reports = []
        for path in sorted(report_dir.glob("*.json")):
            try:
                reports.append(json.loads(path.read_text()))
            except ValueError:
                print(f"[report] skipping unreadable {path}", file=sys.stderr)
        if not reports:
            raise RuntimeError(
                f"no reports under {report_dir}/; run `python -m repro run-all` first"
            )
        return render_report_summary(reports)

    if args.dir is not None:
        # explicit --dir: *load* the collected report, never re-run
        path = Path(args.dir) / f"{args.experiment}.json"
        if not path.is_file():
            raise RuntimeError(
                f"no collected report for {args.experiment!r} under "
                f"{args.dir}/; run `python -m repro run-all "
                f"{args.experiment}` first"
            )
        return json.dumps(json.loads(path.read_text()), indent=1)

    from repro.experiments.runner import run_experiment

    result = run_experiment(
        args.experiment, fast=args.fast, collect_report=True,
        stream=args.stream, timeline=args.interval,
    )
    return json.dumps(result.report, indent=1)


def _store_cmd(args):
    from repro.store.cli import handle_store

    return handle_store(args)


def _compare(args) -> str:
    import json

    from repro.monitor.compare import (
        compare_reports,
        compare_streaming_docs,
        load_reports,
        render_compare,
    )

    if args.stream:
        docs = []
        for side in (args.a, args.b):
            path = Path(side)
            if not path.is_file():
                raise RuntimeError(
                    f"no spans document at {side}; write one with "
                    f"`python -m repro analyze EXP --stream --out {side}`"
                )
            docs.append(json.loads(path.read_text()))
        result = compare_streaming_docs(
            docs[0], docs[1], threshold=args.threshold
        )
    else:
        result = compare_reports(
            load_reports(args.a),
            load_reports(args.b),
            threshold=args.threshold,
        )
    text = render_compare(
        result,
        a_label=Path(args.a).name or str(args.a),
        b_label=Path(args.b).name or str(args.b),
        show_all=args.all,
    )
    return text if result.ok else (text, 1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Cedar paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topology", help="Figures 1-2: machine organization")

    table = sub.add_parser("table", help="one of the paper's tables")
    table.add_argument("number", type=int, choices=range(1, 7))
    table.add_argument("--fast", action="store_true",
                       help="smoke-size cycle simulations")

    sub.add_parser("fig3", help="Figure 3: efficiency scatter")
    sub.add_parser("ppt4", help="Section 4.4 scalability study")
    sub.add_parser("overheads", help="Section 3.2 runtime costs")
    sub.add_parser("characterization", help="Section 4.1 memory anchors")
    sub.add_parser("scaling", help="Perfect-code scaling curves")
    sub.add_parser("permutations", help="omega-network permutation study")
    sub.add_parser("multiprogramming",
                   help="single-user-mode justification study")
    degradation = sub.add_parser(
        "degradation", help="robustness: performance vs injected fault rate"
    )
    degradation.add_argument("--fast", action="store_true",
                             help="smoke-size cycle simulations")
    soak = sub.add_parser(
        "soak", help="open-loop request flood under streaming observability"
    )
    soak.add_argument("--requests", type=int, default=1_000_000,
                      help="arrivals to inject (default 1000000)")
    soak.add_argument("--seed", type=int, default=7,
                      help="arrival-process seed (default 7)")
    soak.add_argument("--buffered", action="store_true",
                      help="use the buffered span collector instead of "
                           "the bounded-memory streaming store")

    everything = sub.add_parser("all", help="the paper's artifacts")
    everything.add_argument("--fast", action="store_true")

    run_all_cmd = sub.add_parser(
        "run-all", help="every registered experiment, parallel and cached"
    )
    run_all_cmd.add_argument("names", nargs="*", metavar="NAME",
                             help="experiments to run (default: all)")
    run_all_cmd.add_argument("--jobs", type=int, default=1,
                             help="worker processes (default 1)")
    run_all_cmd.add_argument("--timeout", type=float, default=None,
                             dest="timeout", metavar="S",
                             help="per-experiment budget in seconds: with "
                                  "--telemetry, a stall budget (killed only "
                                  "after S seconds without heartbeat "
                                  "progress); otherwise a flat wall-clock "
                                  "timeout")
    run_all_cmd.add_argument("--retries", type=int, default=0,
                             help="retries per failed experiment, with "
                                  "exponential backoff (default 0)")
    run_all_cmd.add_argument("--fast", action="store_true",
                             help="smoke-size cycle simulations")
    run_all_cmd.add_argument("--cached", action="store_true",
                             help="memoize results on disk")
    run_all_cmd.add_argument("--cache-dir", default=None,
                             help="cache directory (default .repro-cache)")
    run_all_cmd.add_argument("--report-dir", default=None,
                             help="run-report directory (default .repro-reports)")
    run_all_cmd.add_argument("--no-reports", action="store_true",
                             help="skip run-report collection")
    run_all_cmd.add_argument("--stream", action="store_true",
                             help="collect run reports through the "
                                  "bounded-memory streaming span store")
    run_all_cmd.add_argument("--telemetry", action="store_true",
                             help="record fleet lifecycle events as JSONL "
                                  "and stream worker heartbeats (turns "
                                  "--timeout into a stall budget)")
    run_all_cmd.add_argument("--telemetry-dir", default=None, metavar="DIR",
                             help="lifecycle-event sink directory "
                                  "(default .repro-telemetry)")
    run_all_cmd.add_argument("--heartbeat", type=float, default=None,
                             metavar="S",
                             help="worker heartbeat interval in seconds "
                                  "(default 0.25)")
    run_all_cmd.add_argument("--no-progress", action="store_true",
                             help="suppress the live progress renderer "
                                  "(telemetry JSONL is still written)")

    trace = sub.add_parser(
        "trace", help="run one experiment and write a Chrome/Perfetto trace"
    )
    trace.add_argument("experiment", help="registered experiment name")
    trace.add_argument("--out", default="trace.json",
                       help="output path (default trace.json)")
    trace.add_argument("--fast", action="store_true",
                       help="smoke-size cycle simulations")
    trace.add_argument("--timeline", type=float, nargs="?", const=64.0,
                       default=None, metavar="CYCLES",
                       help="also record interval metric timelines and "
                            "fold them in as Perfetto counter tracks "
                            "(sampling interval in simulated cycles, "
                            "default 64)")

    timeline_cmd = sub.add_parser(
        "timeline",
        help="run one experiment with interval metric sampling and "
             "print sparkline timelines",
    )
    timeline_cmd.add_argument("experiment", help="registered experiment name")
    timeline_cmd.add_argument("--interval", type=float, default=64.0,
                              metavar="CYCLES",
                              help="sampling interval in simulated cycles "
                                   "(default 64; intervals coalesce by "
                                   "powers of two on long runs)")
    timeline_cmd.add_argument("--out", default=None, metavar="TIMELINE_JSON",
                              help="also write the timeline document(s) "
                                   "as JSON")
    timeline_cmd.add_argument("--fast", action="store_true",
                              help="smoke-size cycle simulations")

    profile_cmd = sub.add_parser(
        "profile",
        help="run one experiment under cProfile and attribute host "
             "time to subsystems",
    )
    profile_cmd.add_argument("experiment", help="registered experiment name")
    profile_cmd.add_argument("--top", type=int, default=15,
                             help="hottest frames to show (default 15)")
    profile_cmd.add_argument("--out", default=None, metavar="PROFILE_JSON",
                             help="also write the profile document as JSON")
    profile_cmd.add_argument("--fast", action="store_true",
                             help="smoke-size cycle simulations")
    profile_cmd.add_argument("--compare-batched", action="store_true",
                             help="profile the scalar and batched engine "
                                  "drains back to back and print the "
                                  "subsystem-share delta")

    analyze = sub.add_parser(
        "analyze",
        help="run one experiment and print its request-latency decomposition",
    )
    analyze.add_argument("experiment", help="registered experiment name")
    analyze.add_argument("--out", default=None, metavar="SPANS_JSON",
                         help="also write the stitched spans as JSON")
    analyze.add_argument("--top", type=int, default=5,
                         help="slowest-request waterfalls to show (default 5)")
    analyze.add_argument("--fast", action="store_true",
                         help="smoke-size cycle simulations")
    analyze.add_argument("--stream", action="store_true",
                         help="bounded-memory streaming collection: fold "
                              "each request into quantile sketches on "
                              "completion instead of buffering every span")

    compare = sub.add_parser(
        "compare",
        help="differential report between two runs (exits 1 on regression)",
    )
    compare.add_argument("a", metavar="A",
                         help="baseline: report file/directory, or a "
                              "streaming spans JSON with --stream")
    compare.add_argument("b", metavar="B",
                         help="candidate: report file/directory, or a "
                              "streaming spans JSON with --stream")
    compare.add_argument("--stream", action="store_true",
                         help="compare merged streaming spans documents "
                              "(per-sketch, per-quantile deltas)")
    compare.add_argument("--threshold", type=float, default=0.98,
                         metavar="T",
                         help="stability (min/max) below which a delta is "
                              "significant (default 0.98, i.e. >2%% swing)")
    compare.add_argument("--all", action="store_true",
                         help="show every compared metric, not just the "
                              "significant ones")

    report = sub.add_parser(
        "report", help="structured run reports (one experiment or the fleet)"
    )
    report.add_argument("experiment", nargs="?", default=None,
                        help="experiment to run instrumented; omit to "
                             "aggregate the report directory")
    report.add_argument("--fast", action="store_true",
                        help="smoke-size cycle simulations")
    report.add_argument("--dir", default=None,
                        help="report directory to aggregate "
                             "(default .repro-reports)")
    report.add_argument("--stream", action="store_true",
                        help="collect through the bounded-memory "
                             "streaming span store")
    report.add_argument("--interval", type=float, default=None,
                        metavar="CYCLES",
                        help="also collect interval metric timelines at "
                             "this sampling width (adds a timeline "
                             "section per machine record)")

    from repro.store.cli import add_store_parser

    add_store_parser(sub)
    return parser


HANDLERS: Dict[str, Callable] = {
    "topology": _topology,
    "table": _table,
    "fig3": _fig3,
    "ppt4": _ppt4,
    "overheads": _overheads,
    "characterization": _characterization,
    "scaling": _scaling,
    "permutations": _permutations,
    "multiprogramming": _multiprogramming,
    "degradation": _degradation,
    "soak": _soak,
    "all": _all,
    "run-all": _run_all,
    "trace": _trace,
    "timeline": _timeline,
    "profile": _profile,
    "analyze": _analyze,
    "report": _report,
    "compare": _compare,
    "store": _store_cmd,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not hasattr(args, "fast"):
        args.fast = False
    try:
        outcome = HANDLERS[args.command](args)
    except SystemExit:
        raise
    except Exception as exc:  # noqa: BLE001 - one-line errors, no traceback
        import os

        if os.environ.get("REPRO_DEBUG"):
            raise
        # a KeyError's str() wraps the message in quotes; unwrap it
        reason = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {reason}", file=sys.stderr)
        return 1
    if isinstance(outcome, tuple):
        text, code = outcome
    else:
        text, code = outcome, 0
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
