"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro topology                 # Figures 1-2
    python -m repro table 1|2|3|4|5|6        # the evaluation tables
    python -m repro fig3                     # the efficiency scatter
    python -m repro ppt4                     # the scalability study
    python -m repro overheads                # Section 3.2 costs
    python -m repro characterization         # Section 4.1 anchors
    python -m repro all [--fast]             # everything

``--fast`` shrinks the cycle-level simulations (Tables 1-2) to smoke
size.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _topology(args) -> str:
    from repro.experiments.fig1 import render_fig1

    return render_fig1()


def _table(args) -> str:
    number = args.number
    fast = args.fast
    if number == 1:
        from repro.experiments.table1 import render_table1, run_table1

        return render_table1(run_table1(a_strips=1 if fast else 2))
    if number == 2:
        from repro.experiments.table2 import render_table2, run_table2

        return render_table2(run_table2(strips=6 if fast else 10))
    if number == 3:
        from repro.experiments.table3 import render_table3, run_table3

        return render_table3(run_table3())
    if number == 4:
        from repro.experiments.table4 import render_table4, run_table4

        return render_table4(run_table4())
    if number == 5:
        from repro.experiments.table5 import render_table5, run_table5

        return render_table5(run_table5())
    if number == 6:
        from repro.experiments.table6 import render_table6, run_table6

        return render_table6(run_table6())
    raise SystemExit(f"no table {number}; the paper has tables 1-6")


def _fig3(args) -> str:
    from repro.experiments.fig3 import render_fig3, run_fig3

    return render_fig3(run_fig3())


def _ppt4(args) -> str:
    from repro.experiments.ppt4 import render_ppt4, run_ppt4

    return render_ppt4(run_ppt4())


def _overheads(args) -> str:
    from repro.experiments.overheads import render_overheads, run_overheads

    return render_overheads(run_overheads())


def _characterization(args) -> str:
    from repro.experiments.characterization import (
        render_characterization,
        run_characterization,
    )

    return render_characterization(run_characterization())


def _scaling(args) -> str:
    from repro.experiments.scaling import render_scaling, run_scaling_study

    return render_scaling(run_scaling_study())


def _permutations(args) -> str:
    from repro.experiments.permutations import (
        render_permutations,
        run_permutation_study,
    )

    return render_permutations(run_permutation_study())


def _all(args) -> str:
    sections = [_topology(args)]
    for number in (1, 2, 3, 4, 5, 6):
        table_args = argparse.Namespace(number=number, fast=args.fast)
        sections.append(_table(table_args))
    sections.append(_fig3(args))
    sections.append(_ppt4(args))
    sections.append(_overheads(args))
    sections.append(_characterization(args))
    return "\n\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Cedar paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topology", help="Figures 1-2: machine organization")

    table = sub.add_parser("table", help="one of the paper's tables")
    table.add_argument("number", type=int, choices=range(1, 7))
    table.add_argument("--fast", action="store_true",
                       help="smoke-size cycle simulations")

    sub.add_parser("fig3", help="Figure 3: efficiency scatter")
    sub.add_parser("ppt4", help="Section 4.4 scalability study")
    sub.add_parser("overheads", help="Section 3.2 runtime costs")
    sub.add_parser("characterization", help="Section 4.1 memory anchors")
    sub.add_parser("scaling", help="Perfect-code scaling curves")
    sub.add_parser("permutations", help="omega-network permutation study")

    everything = sub.add_parser("all", help="every artifact")
    everything.add_argument("--fast", action="store_true")
    return parser


HANDLERS: Dict[str, Callable] = {
    "topology": _topology,
    "table": _table,
    "fig3": _fig3,
    "ppt4": _ppt4,
    "overheads": _overheads,
    "characterization": _characterization,
    "scaling": _scaling,
    "permutations": _permutations,
    "all": _all,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not hasattr(args, "fast"):
        args.fast = False
    print(HANDLERS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
