"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro topology                 # Figures 1-2
    python -m repro table 1|2|3|4|5|6        # the evaluation tables
    python -m repro fig3                     # the efficiency scatter
    python -m repro ppt4                     # the scalability study
    python -m repro overheads                # Section 3.2 costs
    python -m repro characterization         # Section 4.1 anchors
    python -m repro all [--fast]             # the paper's artifacts
    python -m repro run-all [--jobs N] [--cached] [--fast]
                                             # every registered experiment

``--fast`` shrinks the cycle-level simulations to smoke size.

``run-all`` drives the full experiment registry (the paper artifacts
plus the studies and ablations), fanning independent experiments
across ``--jobs`` worker processes and, with ``--cached``, memoizing
results on disk keyed by experiment arguments and the machine
configuration hash.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

#: the registry slice that ``all`` has always printed, in order.
PAPER_SECTIONS = (
    "topology",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig3",
    "ppt4",
    "overheads",
    "characterization",
)


def _run_one(name: str, fast: bool = False) -> str:
    from repro.experiments.runner import run_experiment

    return run_experiment(name, fast=fast).output


def _topology(args) -> str:
    return _run_one("topology")


def _table(args) -> str:
    number = args.number
    if number not in range(1, 7):
        raise SystemExit(f"no table {number}; the paper has tables 1-6")
    return _run_one(f"table{number}", fast=args.fast)


def _fig3(args) -> str:
    return _run_one("fig3")


def _ppt4(args) -> str:
    return _run_one("ppt4")


def _overheads(args) -> str:
    return _run_one("overheads")


def _characterization(args) -> str:
    return _run_one("characterization")


def _scaling(args) -> str:
    return _run_one("scaling")


def _permutations(args) -> str:
    return _run_one("permutations")


def _multiprogramming(args) -> str:
    return _run_one("multiprogramming")


def _all(args) -> str:
    from repro.experiments.runner import render_all, run_all

    return render_all(run_all(names=PAPER_SECTIONS, fast=args.fast))


def _run_all(args) -> str:
    from repro.experiments.runner import DEFAULT_CACHE_DIR, run_all

    cache_dir = None
    if args.cached:
        cache_dir = Path(args.cache_dir or DEFAULT_CACHE_DIR)
    start = time.perf_counter()
    results = run_all(jobs=args.jobs, fast=args.fast, cache_dir=cache_dir)
    elapsed = time.perf_counter() - start

    sections = []
    for result in results:
        origin = "cached" if result.cached else f"{result.elapsed_s:.1f}s"
        rule = "=" * 66
        sections.append(
            f"{rule}\n{result.name} — {result.title}  [{origin}]\n{rule}\n"
            f"{result.output}"
        )
    hits = sum(1 for r in results if r.cached)
    print(
        f"[run-all] {len(results)} experiments in {elapsed:.1f}s "
        f"({hits} cached, jobs={args.jobs})",
        file=sys.stderr,
    )
    return "\n\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Cedar paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topology", help="Figures 1-2: machine organization")

    table = sub.add_parser("table", help="one of the paper's tables")
    table.add_argument("number", type=int, choices=range(1, 7))
    table.add_argument("--fast", action="store_true",
                       help="smoke-size cycle simulations")

    sub.add_parser("fig3", help="Figure 3: efficiency scatter")
    sub.add_parser("ppt4", help="Section 4.4 scalability study")
    sub.add_parser("overheads", help="Section 3.2 runtime costs")
    sub.add_parser("characterization", help="Section 4.1 memory anchors")
    sub.add_parser("scaling", help="Perfect-code scaling curves")
    sub.add_parser("permutations", help="omega-network permutation study")
    sub.add_parser("multiprogramming",
                   help="single-user-mode justification study")

    everything = sub.add_parser("all", help="the paper's artifacts")
    everything.add_argument("--fast", action="store_true")

    run_all_cmd = sub.add_parser(
        "run-all", help="every registered experiment, parallel and cached"
    )
    run_all_cmd.add_argument("--jobs", type=int, default=1,
                             help="worker processes (default 1)")
    run_all_cmd.add_argument("--fast", action="store_true",
                             help="smoke-size cycle simulations")
    run_all_cmd.add_argument("--cached", action="store_true",
                             help="memoize results on disk")
    run_all_cmd.add_argument("--cache-dir", default=None,
                             help="cache directory (default .repro-cache)")
    return parser


HANDLERS: Dict[str, Callable] = {
    "topology": _topology,
    "table": _table,
    "fig3": _fig3,
    "ppt4": _ppt4,
    "overheads": _overheads,
    "characterization": _characterization,
    "scaling": _scaling,
    "permutations": _permutations,
    "multiprogramming": _multiprogramming,
    "all": _all,
    "run-all": _run_all,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not hasattr(args, "fast"):
        args.fast = False
    print(HANDLERS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
