"""Software-maintained coherence for cluster copies of global data.

"Data can be moved between cluster and global shared memory only via
explicit moves under software control.  It can be said that cluster
memories form a distributed memory system in addition to the global
shared memory.  Coherence between multiple copies of globally shared
data residing in cluster memory is maintained in software."

The :class:`CoherenceManager` is that software: it tracks which
clusters hold copies of each global array region, validates the
discipline (reads through stale copies and concurrent dirty copies are
programming errors the Cedar compiler/runtime had to prevent), and
accounts the explicit move traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.fortran.placement import CedarArray, Placement


class CopyState(Enum):
    CLEAN = "clean"      # matches global memory
    DIRTY = "dirty"      # locally modified, not yet written back
    STALE = "stale"      # global memory has moved on


class CoherenceError(RuntimeError):
    """A violation of the software coherence discipline."""


@dataclass
class ClusterCopy:
    cluster: int
    array: CedarArray
    state: CopyState = CopyState.CLEAN


@dataclass
class CoherenceStats:
    copies_in: int = 0
    writebacks: int = 0
    invalidations: int = 0
    words_moved: int = 0


class CoherenceManager:
    """Tracks copies of global arrays distributed into cluster memory."""

    def __init__(self, clusters: int = 4) -> None:
        if clusters < 1:
            raise ValueError("need at least one cluster")
        self.clusters = clusters
        self._copies: Dict[int, Dict[int, ClusterCopy]] = {}
        self.stats = CoherenceStats()

    # -- moves -------------------------------------------------------------

    def copy_to_cluster(self, source: CedarArray, cluster: int) -> CedarArray:
        """Explicit move: materialize a cluster copy of a global array."""
        self._check_global(source)
        self._check_cluster(cluster)
        if any(
            c.state is CopyState.DIRTY
            for c in self._copies.get(id(source), {}).values()
        ):
            raise CoherenceError(
                f"cannot copy {source.name or '<anon>'}: a dirty cluster copy exists"
            )
        local = CedarArray(
            np.array(source.data, copy=True),
            Placement.CLUSTER,
            home_cluster=cluster,
            name=f"{source.name}@cl{cluster}" if source.name else "",
        )
        entry = self._copies.setdefault(id(source), {})
        entry[cluster] = ClusterCopy(cluster=cluster, array=local)
        self.stats.copies_in += 1
        self.stats.words_moved += source.words
        return local

    def write_back(self, source: CedarArray, cluster: int) -> None:
        """Explicit move: a cluster's (dirty) copy updates global memory
        and every other copy becomes stale."""
        copies = self._copies.get(id(source), {})
        copy = copies.get(cluster)
        if copy is None:
            raise CoherenceError(f"cluster {cluster} holds no copy to write back")
        np.copyto(source.data, copy.array.data)
        copy.state = CopyState.CLEAN
        for other, c in copies.items():
            if other != cluster and c.state is not CopyState.STALE:
                c.state = CopyState.STALE
        self.stats.writebacks += 1
        self.stats.words_moved += source.words

    # -- the discipline -------------------------------------------------------

    def mark_written(self, source: CedarArray, cluster: int) -> None:
        """The cluster modified its copy (e.g. inside an SDOALL body)."""
        copies = self._copies.get(id(source), {})
        copy = copies.get(cluster)
        if copy is None:
            raise CoherenceError(f"cluster {cluster} holds no copy of the array")
        if copy.state is CopyState.STALE:
            raise CoherenceError("writing through a stale copy")
        dirty_elsewhere = [
            c.cluster
            for c in copies.values()
            if c.state is CopyState.DIRTY and c.cluster != cluster
        ]
        if dirty_elsewhere:
            raise CoherenceError(
                f"clusters {dirty_elsewhere} already hold dirty copies — "
                "software coherence requires disjoint writers"
            )
        copy.state = CopyState.DIRTY

    def check_read(self, source: CedarArray, cluster: int) -> CedarArray:
        """Validate a read through the cluster's copy and return it."""
        copy = self._copies.get(id(source), {}).get(cluster)
        if copy is None:
            raise CoherenceError(f"cluster {cluster} holds no copy of the array")
        if copy.state is CopyState.STALE:
            raise CoherenceError(
                "reading a stale copy: re-copy after the global write-back"
            )
        return copy.array

    def write_global(self, source: CedarArray) -> None:
        """A direct write to the global array invalidates all copies."""
        self._check_global(source)
        copies = self._copies.get(id(source), {})
        for copy in copies.values():
            if copy.state is CopyState.DIRTY:
                raise CoherenceError(
                    "global write while a dirty cluster copy exists"
                )
            copy.state = CopyState.STALE
            self.stats.invalidations += 1

    def invalidate_all(self, source: CedarArray) -> None:
        """Drop every cluster copy (e.g. at a phase boundary)."""
        dropped = self._copies.pop(id(source), {})
        self.stats.invalidations += len(dropped)

    # -- queries ------------------------------------------------------------------

    def state_of(self, source: CedarArray, cluster: int) -> Optional[CopyState]:
        copy = self._copies.get(id(source), {}).get(cluster)
        return copy.state if copy else None

    def holders(self, source: CedarArray) -> List[int]:
        return sorted(self._copies.get(id(source), {}))

    def distribute(
        self, source: CedarArray, pieces: int
    ) -> List[Tuple[int, CedarArray, slice]]:
        """Partition a global array across cluster memories (the data
        localization of Section 3.2: "data can be localized by
        partitioning and distributing them to the cluster memories").
        Returns (cluster, local array, global slice) triples."""
        self._check_global(source)
        if not 1 <= pieces <= self.clusters:
            raise ValueError(f"pieces must be in 1..{self.clusters}")
        flat = source.data.reshape(-1)
        bounds = np.linspace(0, flat.size, pieces + 1, dtype=int)
        out = []
        for cluster in range(pieces):
            sl = slice(int(bounds[cluster]), int(bounds[cluster + 1]))
            local = CedarArray(
                np.array(flat[sl], copy=True),
                Placement.CLUSTER,
                home_cluster=cluster,
            )
            out.append((cluster, local, sl))
            self.stats.words_moved += local.words
        return out

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check_global(array: CedarArray) -> None:
        if not array.is_global:
            raise ValueError("coherence tracks copies of GLOBAL arrays only")

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.clusters:
            raise ValueError(f"no cluster {cluster}")
