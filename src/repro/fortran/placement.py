"""Data placement: the GLOBAL attribute, cluster memory, loop-locals.

"Data can be placed in either cluster or shared global memory on Cedar.
A user can control this using a GLOBAL attribute.  Variable placement
is in cluster memory by default.  A variable can also be declared
inside a parallel loop.  The loop-local declaration of a variable makes
a private copy for each processor which is placed in cluster memory."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np


class Placement(Enum):
    GLOBAL = "global"
    CLUSTER = "cluster"
    LOOP_LOCAL = "loop_local"


@dataclass
class CedarArray:
    """A Fortran array with a Cedar placement.

    ``data`` is the live numpy storage (the DSL computes for real);
    ``home_cluster`` pins CLUSTER arrays to a cluster's memory.
    Global arrays are visible everywhere; cluster arrays only to their
    cluster — moving data between levels is an explicit, timed copy
    ("Data can be moved between cluster and global shared memory only
    via explicit moves under software control").
    """

    data: np.ndarray
    placement: Placement
    home_cluster: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.placement is Placement.CLUSTER and self.home_cluster is None:
            self.home_cluster = 0
        if self.placement is Placement.GLOBAL and self.home_cluster is not None:
            raise ValueError("global arrays have no home cluster")

    @property
    def words(self) -> int:
        """Size in 64-bit words (Fortran DOUBLE PRECISION elements)."""
        return int(self.data.size)

    @property
    def is_global(self) -> bool:
        return self.placement is Placement.GLOBAL

    def check_visible_from(self, cluster: int) -> None:
        """Cluster memory is only addressable within its cluster."""
        if self.placement is Placement.GLOBAL:
            return
        if self.home_cluster != cluster:
            raise PermissionError(
                f"array {self.name or '<anon>'} lives in cluster "
                f"{self.home_cluster} memory; cluster {cluster} cannot address it"
            )
