"""CEDAR FORTRAN as an executable Python DSL (Section 3).

"CEDAR FORTRAN offers an application programmer explicit access to all
the key features of the Cedar system: the memory hierarchy, the
prefetching capability from global memory, the global memory
synchronization hardware, and cluster features including concurrency
control."

The DSL really computes (bodies run numpy operations on array data) and
really accounts simulated time (vector operations are costed from the
machine model; parallel loops are costed through the runtime library's
published overheads and makespan composition).
"""

from repro.fortran.placement import CedarArray, Placement
from repro.fortran.system import CedarFortran, LoopContext
from repro.fortran.cost import VectorCostModel
from repro.fortran.coherence import CoherenceError, CoherenceManager, CopyState
from repro.fortran.library import (
    FortranCGResult,
    PentadiagOperator,
    cg_solve,
    pentadiag_matvec,
    vaxpy,
    vcopy,
    vdot,
    vnorm2,
    vscale,
)

__all__ = [
    "CedarArray",
    "Placement",
    "CedarFortran",
    "LoopContext",
    "VectorCostModel",
    "CoherenceError",
    "CoherenceManager",
    "CopyState",
    "FortranCGResult",
    "PentadiagOperator",
    "cg_solve",
    "pentadiag_matvec",
    "vaxpy",
    "vcopy",
    "vdot",
    "vnorm2",
    "vscale",
]
