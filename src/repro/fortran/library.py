"""Vector/matrix routines over Cedar Fortran arrays.

The BLAS-level building blocks the paper's kernels are coded from —
each executes on live numpy storage through
:meth:`~repro.fortran.system.CedarFortran.vector_op` so placement-aware
time accrues automatically.  ``pentadiag_matvec`` is the 5-diagonal
operator of the PPT4 CG study; ``cg_solve`` is that whole study's
algorithm expressed in the programming model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fortran.placement import CedarArray
from repro.fortran.system import CedarFortran


def vcopy(cf: CedarFortran, dst: CedarArray, src: CedarArray) -> CedarArray:
    """dst = src (one stream in, no arithmetic)."""
    return cf.vector_op(lambda a: a, dst, src, flops_per_element=0.0)


def vscale(cf: CedarFortran, dst: CedarArray, alpha: float, x: CedarArray) -> CedarArray:
    """dst = alpha * x."""
    return cf.vector_op(lambda a: alpha * a, dst, x, flops_per_element=1.0)


def vaxpy(
    cf: CedarFortran, dst: CedarArray, alpha: float, x: CedarArray, y: CedarArray
) -> CedarArray:
    """dst = alpha * x + y (the chained two-op form)."""
    return cf.vector_op(lambda a, b: alpha * a + b, dst, x, y, flops_per_element=2.0)


def vdot(cf: CedarFortran, x: CedarArray, y: CedarArray) -> float:
    """Reduction: x . y (charged as a chained multiply-add stream)."""
    return cf.dot(x, y)


def vnorm2(cf: CedarFortran, x: CedarArray) -> float:
    return float(np.sqrt(vdot(cf, x, x)))


def pentadiag_matvec(
    cf: CedarFortran,
    dst: CedarArray,
    diagonals: "PentadiagOperator",
    x: CedarArray,
) -> CedarArray:
    """dst = A x for the 5-diagonal operator (9 flops/point)."""

    def compute(dm2, dm1, d0, dp1, dp2, xv):
        n = len(xv)
        y = d0 * xv
        y[1:] += dm1[: n - 1] * xv[:-1]
        y[:-1] += dp1[: n - 1] * xv[1:]
        y[2:] += dm2[: n - 2] * xv[:-2]
        y[:-2] += dp2[: n - 2] * xv[2:]
        return y

    return cf.vector_op(
        compute,
        dst,
        diagonals.dm2p, diagonals.dm1p, diagonals.d0,
        diagonals.dp1p, diagonals.dp2p, x,
        flops_per_element=9.0,
    )


@dataclass
class PentadiagOperator:
    """A 5-diagonal matrix stored as padded GLOBAL diagonal arrays (all
    length n, zero-padded, so the vector ops stream uniformly)."""

    dm2p: CedarArray
    dm1p: CedarArray
    d0: CedarArray
    dp1p: CedarArray
    dp2p: CedarArray

    @classmethod
    def from_diagonals(cls, cf: CedarFortran, diagonals) -> "PentadiagOperator":
        dm2, dm1, d0, dp1, dp2 = diagonals
        n = d0.shape[0]

        def pad(v, where: str):
            out = np.zeros(n)
            if where == "head":
                out[: v.shape[0]] = v
            else:
                out[n - v.shape[0]:] = v
            return out

        return cls(
            dm2p=cf.global_array(pad(dm2, "head"), name="dm2"),
            dm1p=cf.global_array(pad(dm1, "head"), name="dm1"),
            d0=cf.global_array(d0, name="d0"),
            dp1p=cf.global_array(pad(dp1, "head"), name="dp1"),
            dp2p=cf.global_array(pad(dp2, "head"), name="dp2"),
        )


def rank_k_update(
    cf: CedarFortran, a: CedarArray, b: CedarArray, c: CedarArray
) -> CedarArray:
    """Rank-k update A += B C in the GM/pref coding style: one chained
    vector pass over A per rank, with B's column restreamed from global
    memory each time (how the strip-mined Fortran actually executes —
    the k-fold restreaming is what the blocked version eliminates)."""
    n, k = b.data.shape
    if c.data.shape[0] != k or a.data.shape != (n, c.data.shape[1]):
        raise ValueError("rank-k shape mismatch")
    for rank in range(k):
        b_col = cf.global_array(b.data[:, rank], name=f"B(:,{rank})")

        def compute(av, bv, rank=rank):
            return av + np.outer(bv, c.data[rank, :])

        cf.vector_op(compute, a, a, b_col, flops_per_element=2.0)
    return a


def blocked_rank_k_update(
    cf: CedarFortran,
    a: CedarArray,
    b: CedarArray,
    c: CedarArray,
    block: int = 64,
) -> CedarArray:
    """The GM/cache version of Table 1 at the programming-model level:
    "transfers a submatrix to a cached work array in each cluster and
    all vector accesses are made to the work array".  Panels of A (and
    B) move once through explicit copies; the k rank-1 passes then
    stream from the cache instead of restreaming global memory."""
    n, k = b.data.shape
    m = c.data.shape[1]
    if c.data.shape[0] != k or a.data.shape != (n, m):
        raise ValueError("rank-k shape mismatch")
    if block < 1:
        raise ValueError("block must be positive")
    b_work = cf.work_array(b.data, name="Bwork")
    cf.move(b, b_work)
    for col in range(0, m, block):
        width = min(block, m - col)
        a_panel = cf.work_array(np.zeros((n, width)), name="Awork")
        cf.move(cf.global_array(a.data[:, col:col + width]), a_panel)
        for rank in range(k):
            def compute(av, bv, rank=rank, col=col, width=width):
                return av + np.outer(bv[:, rank], c.data[rank, col:col + width])

            cf.vector_op(compute, a_panel, a_panel, b_work,
                         flops_per_element=2.0)
        out_view = cf.global_array(np.zeros((n, width)))
        cf.move(a_panel, out_view)
        a.data[:, col:col + width] = out_view.data
    return a


@dataclass(frozen=True)
class FortranCGResult:
    x: np.ndarray
    iterations: int
    residual: float
    simulated_us: float


def cg_solve(
    cf: CedarFortran,
    operator: PentadiagOperator,
    b: CedarArray,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
) -> FortranCGResult:
    """Conjugate gradients written against the Cedar Fortran API.

    Numerically identical to :func:`repro.kernels.reference.cg_solve`
    (tests assert it); every vector touch accrues placement-aware time
    on ``cf``'s clock.
    """
    n = b.data.shape[0]
    if max_iter is None:
        max_iter = 10 * n
    with cf.scope() as elapsed:
        x = cf.global_array(np.zeros(n), name="x")
        r = cf.global_array(np.zeros(n), name="r")
        p = cf.global_array(np.zeros(n), name="p")
        ap = cf.global_array(np.zeros(n), name="ap")

        pentadiag_matvec(cf, ap, operator, x)
        cf.vector_op(lambda bv, av: bv - av, r, b, ap, flops_per_element=1.0)
        vcopy(cf, p, r)
        rs = vdot(cf, r, r)
        b_norm = vnorm2(cf, b) or 1.0
        iterations = 0
        while iterations < max_iter and np.sqrt(rs) / b_norm > tol:
            pentadiag_matvec(cf, ap, operator, p)
            alpha = rs / vdot(cf, p, ap)
            cf.vector_op(lambda xv, pv: xv + alpha * pv, x, x, p,
                         flops_per_element=2.0)
            cf.vector_op(lambda rv, av: rv - alpha * av, r, r, ap,
                         flops_per_element=2.0)
            rs_new = vdot(cf, r, r)
            beta = rs_new / rs
            cf.vector_op(lambda rv, pv: rv + beta * pv, p, r, p,
                         flops_per_element=2.0)
            rs = rs_new
            iterations += 1
        residual = float(np.sqrt(rs)) / b_norm
    return FortranCGResult(
        x=np.array(x.data, copy=True),
        iterations=iterations,
        residual=residual,
        simulated_us=elapsed["us"],
    )
