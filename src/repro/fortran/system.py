"""The Cedar Fortran execution system: arrays, vector ops, DOALLs.

A :class:`CedarFortran` instance is a complete programming environment:

* arrays with GLOBAL / cluster / loop-local placement, backed by live
  numpy storage (programs really compute);
* strip-mined vector operations whose simulated cost comes from
  :class:`~repro.fortran.cost.VectorCostModel`;
* ``cdoall`` / ``sdoall`` / ``xdoall`` parallel loops costed through
  the runtime library (Section 3.2) and composing like the hardware:
  an SDOALL iteration owns a cluster, CDOALLs inside it gang the
  cluster's CEs via the concurrency bus.

Timing model: a stack of cost accumulators.  Vector ops add to the top
of the stack; a DOALL runs every iteration body (capturing each one's
cost), computes the loop's makespan from the runtime library's
schedule, and charges that makespan to the enclosing scope.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import CedarConfig, DEFAULT_CONFIG
from repro.fortran.cost import VectorCostModel
from repro.fortran.placement import CedarArray, Placement
from repro.xylem.runtime import LoopKind, RuntimeLibrary

ArrayLike = Union[np.ndarray, CedarArray]


@dataclass
class LoopContext:
    """Passed to SDOALL bodies: which cluster the iteration runs on."""

    cluster: int
    iteration: int


class CedarFortran:
    """One Cedar Fortran program execution environment."""

    def __init__(
        self,
        config: CedarConfig = DEFAULT_CONFIG,
        use_cedar_sync: bool = True,
        use_prefetch: bool = True,
    ) -> None:
        self.config = config
        self.runtime = RuntimeLibrary(
            config.runtime, use_cedar_sync=use_cedar_sync, cycle_ns=config.ce.cycle_ns
        )
        self.cost = VectorCostModel(config, use_prefetch=use_prefetch)
        self._cost_stack: List[float] = [0.0]
        self._loop_depth = 0
        self.moves = 0
        self.vector_ops = 0

    # -- clock --------------------------------------------------------------

    @property
    def clock_us(self) -> float:
        """Program time accumulated at the outermost scope."""
        return self._cost_stack[0]

    @property
    def clock_seconds(self) -> float:
        return self.clock_us * 1e-6

    def _charge(self, us: float) -> None:
        self._cost_stack[-1] += us

    def compute_us(self, us: float) -> None:
        """Charge explicit (scalar) compute time."""
        if us < 0:
            raise ValueError("negative compute time")
        self._charge(us)

    # -- arrays --------------------------------------------------------------

    def global_array(self, data: ArrayLike, name: str = "") -> CedarArray:
        """Declare an array with the GLOBAL attribute."""
        return CedarArray(np.asarray(data, dtype=float), Placement.GLOBAL, name=name)

    def cluster_array(
        self, data: ArrayLike, cluster: int = 0, name: str = ""
    ) -> CedarArray:
        """Declare a (default-placement) cluster-memory array."""
        return CedarArray(
            np.asarray(data, dtype=float), Placement.CLUSTER, home_cluster=cluster,
            name=name,
        )

    def loop_local(self, shape, name: str = "") -> CedarArray:
        """Declare a loop-local private array (cluster-cached).

        "In all Perfect programs we have found loop-local data placement
        to be an important factor in reducing data access latencies."
        """
        if self._loop_depth == 0:
            raise RuntimeError("loop-local declarations only make sense inside a DOALL")
        return CedarArray(np.zeros(shape), Placement.LOOP_LOCAL, name=name)

    def work_array(self, data: ArrayLike, name: str = "") -> CedarArray:
        """A cached work array: explicitly managed storage that stays
        resident in the cluster's shared cache (the GM/cache version's
        "cached work array in each cluster", Section 4.1).  The caller
        is responsible for sizing it within the 512 KB cache."""
        arr = np.asarray(data, dtype=float)
        if arr.nbytes > self.config.cache.size_bytes:
            raise ValueError(
                f"work array of {arr.nbytes} bytes exceeds the "
                f"{self.config.cache.size_bytes}-byte cluster cache"
            )
        return CedarArray(np.array(arr, copy=True), Placement.LOOP_LOCAL, name=name)

    def move(self, src: CedarArray, dst: CedarArray) -> None:
        """Explicit software-controlled move between memory levels."""
        if src.data.size != dst.data.size:
            raise ValueError("move requires equal sizes")
        np.copyto(dst.data.reshape(-1), src.data.reshape(-1))
        self.moves += 1
        self._charge(self.cost.move_us(src.words))

    # -- vector operations -----------------------------------------------------

    def vector_op(
        self,
        fn: Callable[..., np.ndarray],
        out: CedarArray,
        *operands: CedarArray,
        flops_per_element: float = 2.0,
    ) -> CedarArray:
        """Execute ``out[:] = fn(*operands)`` as a chained vector op.

        Cost covers streaming every operand at its placement's rate,
        the compute rate, per-strip startup/prefetch-arm, and the store
        of the result.
        """
        arrays = [op.data for op in operands]
        result = fn(*arrays)
        np.copyto(out.data, result)
        placements = [op.placement for op in operands]
        stores = 1 if out.is_global else 0
        self.vector_ops += 1
        self._charge(
            self.cost.vector_op_us(
                int(out.data.size), placements, flops_per_element, stores=stores
            )
        )
        return out

    def dot(self, x: CedarArray, y: CedarArray) -> float:
        """Chained multiply-add reduction of two vectors."""
        if x.data.size != y.data.size:
            raise ValueError("dot requires equal lengths")
        value = float(x.data.reshape(-1) @ y.data.reshape(-1))
        self.vector_ops += 1
        self._charge(
            self.cost.vector_op_us(
                int(x.data.size), [x.placement, y.placement], flops_per_element=2.0
            )
        )
        return value

    def reduction(
        self,
        fn: Callable[[np.ndarray], float],
        operand: CedarArray,
        flops_per_element: float = 1.0,
    ) -> float:
        """A vector reduction (dot products, norms, parallel sums)."""
        value = float(fn(operand.data))
        self.vector_ops += 1
        self._charge(
            self.cost.vector_op_us(
                int(operand.data.size), [operand.placement], flops_per_element
            )
        )
        return value

    # -- parallel loops -----------------------------------------------------------

    def cdoall(
        self,
        iterations: int,
        body: Callable[[int], None],
        cluster: int = 0,
        self_scheduled: bool = True,
    ) -> None:
        """Cluster DOALL: gang the cluster's CEs via the concurrency bus."""
        self._doall(LoopKind.CDOALL, iterations, body,
                    workers=self.config.ces_per_cluster,
                    self_scheduled=self_scheduled)

    def xdoall(
        self,
        iterations: int,
        body: Callable[[int], None],
        self_scheduled: bool = True,
    ) -> None:
        """Machine-wide DOALL: every CE, scheduled through global memory."""
        self._doall(LoopKind.XDOALL, iterations, body,
                    workers=self.config.total_ces,
                    self_scheduled=self_scheduled)

    def sdoall(
        self,
        iterations: int,
        body: Callable[[LoopContext], None],
        self_scheduled: bool = True,
    ) -> None:
        """Spread DOALL: each iteration runs on an entire cluster.

        "Each iteration starts executing on one processor of the
        cluster.  The other processors in the cluster remain idle until
        a CDOALL is executed within the body" — bodies receive a
        :class:`LoopContext` naming their cluster and typically run
        ``cdoall`` inside.  Iterations of successive SDOALLs with the
        same length land on the same clusters (data affinity).
        """

        def wrapped(i: int) -> None:
            body(LoopContext(cluster=i % self.config.clusters, iteration=i))

        self._doall(LoopKind.SDOALL, iterations, wrapped,
                    workers=self.config.clusters,
                    self_scheduled=self_scheduled)

    def _doall(
        self,
        kind: LoopKind,
        iterations: int,
        body: Callable[[int], None],
        workers: int,
        self_scheduled: bool,
    ) -> None:
        if iterations < 0:
            raise ValueError("negative iteration count")
        costs: List[float] = []
        self._loop_depth += 1
        try:
            for i in range(iterations):
                self._cost_stack.append(0.0)
                body(i)
                costs.append(self._cost_stack.pop())
        finally:
            self._loop_depth -= 1
        schedule = self.runtime.schedule(
            kind, iterations, workers, self_scheduled=self_scheduled, work_us=costs
        )
        self._charge(schedule.makespan_us(costs))

    # -- synchronization ---------------------------------------------------------

    def fetch_and_add(self, address: int, increment: int = 1) -> int:
        """Global-memory synchronization, exposed "to a Fortran
        programmer via run-time library routines"."""
        self._charge(self.cost.scalar_access_us(1, Placement.GLOBAL))
        return self.runtime.sync.fetch_and_add(address, increment)

    @contextmanager
    def scope(self):
        """Measure the time charged inside a with-block; yields a dict
        whose ``"us"`` entry holds the elapsed time on exit."""
        holder = {"us": 0.0}
        self._cost_stack.append(0.0)
        try:
            yield holder
        finally:
            elapsed = self._cost_stack.pop()
            holder["us"] = elapsed
            self._charge(elapsed)
