"""Vector-operation cost model for the Cedar Fortran DSL.

Per-word transfer costs are anchored to the cycle-level simulator's
calibration (see tests/test_calibration.py): an unloaded prefetched
global stream sustains ~1.1 cycles/word; a non-prefetched global vector
access is latency-bound at 13/2 cycles/word; cluster cache feeds one
word per cycle per CE; cluster memory half of that.  The compiler
inserts a 32-word prefetch before each vector operation with a global
operand (Section 3.2), costing the arm overhead per strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import CedarConfig
from repro.fortran.placement import CedarArray, Placement
from repro.util.units import cycles_to_us


@dataclass(frozen=True)
class VectorCostModel:
    """Cycles-per-word accounting for strip-mined vector operations."""

    config: CedarConfig
    use_prefetch: bool = True
    #: sustained per-word cycles of a prefetched global stream (unloaded).
    prefetched_word_cycles: float = 1.15
    #: per-word cycles of cluster-cache resident data.
    cache_word_cycles: float = 1.0
    #: per-word cycles of cluster-memory data (half cache bandwidth).
    cluster_word_cycles: float = 2.0
    #: scalar (non-vectorized) access to global memory: full round trip.
    scalar_global_cycles: float = 13.0

    @property
    def strip(self) -> int:
        return self.config.ce.vector_register_words

    @property
    def nopref_word_cycles(self) -> float:
        """Two outstanding requests per 13-cycle round trip."""
        return 13.0 / self.config.ce.max_outstanding_misses

    def transfer_cycles_per_word(self, placement: Placement) -> float:
        if placement is Placement.GLOBAL:
            if self.use_prefetch:
                return self.prefetched_word_cycles
            return self.nopref_word_cycles
        if placement is Placement.CLUSTER:
            return self.cluster_word_cycles
        return self.cache_word_cycles  # loop-locals live in the cache

    def vector_op_cycles(
        self,
        elements: int,
        operand_placements: Sequence[Placement],
        flops_per_element: float = 2.0,
        stores: int = 0,
    ) -> float:
        """Cost of one strip-mined vector operation over ``elements``.

        Each strip pays the vector startup (plus a prefetch arm for
        each global operand); per element, the cost is the larger of
        the compute rate and the summed operand transfer rates
        (chaining overlaps compute with the dominant transfer).
        """
        if elements <= 0:
            return 0.0
        strips = -(-elements // self.strip)
        per_strip = float(self.config.ce.vector_startup_cycles)
        if self.use_prefetch:
            n_global = sum(
                1 for p in operand_placements if p is Placement.GLOBAL
            )
            per_strip += n_global * self.config.prefetch.arm_cycles
        transfer = sum(self.transfer_cycles_per_word(p) for p in operand_placements)
        transfer += stores * 2.0  # store packets: two words through the port
        compute = flops_per_element / self.config.ce.flops_per_cycle
        per_element = max(transfer, compute)
        return strips * per_strip + elements * per_element

    def vector_op_us(
        self,
        elements: int,
        operand_placements: Sequence[Placement],
        flops_per_element: float = 2.0,
        stores: int = 0,
    ) -> float:
        cycles = self.vector_op_cycles(
            elements, operand_placements, flops_per_element, stores
        )
        return cycles_to_us(cycles, self.config.ce.cycle_ns)

    def move_us(self, words: int, to_cluster: bool = True) -> float:
        """Explicit block move between global and cluster memory: paced
        by the slower of the network port (1 word/cycle) and cluster
        memory (words_per_cycle shared per cluster, one CE moving)."""
        if words < 0:
            raise ValueError("negative move size")
        port_rate = 1.0
        cmem_rate = float(self.config.cluster_memory.words_per_cycle)
        rate = min(port_rate, cmem_rate)
        cycles = 8.0 + words / rate  # one round-trip fill + streaming
        return cycles_to_us(cycles, self.config.ce.cycle_ns)

    def scalar_access_us(self, count: int, placement: Placement) -> float:
        """Scalar (non-vector) accesses — TRACK-style codes are
        dominated by these and gain nothing from prefetch."""
        if placement is Placement.GLOBAL:
            cycles = count * self.scalar_global_cycles
        else:
            cycles = count * 3.0
        return cycles_to_us(cycles, self.config.ce.cycle_ns)
