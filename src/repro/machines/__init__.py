"""Comparison machine models (Section 4.3/4.4).

Analytic models of the machines the paper compares Cedar against:
the Cray YMP-8 (and Cray-1) for the Perfect-code methodology study,
the Thinking Machines CM-5 (without floating-point accelerators) for
the PPT4 scalability study, and the VAX-780/SPARC2/RS6000 workstation
series that anchors the stability discussion.
"""

from repro.machines.base import MachineExecution, MachineModel
from repro.machines.cray import CRAY_1, CRAY_YMP8, CrayModel
from repro.machines.cm5 import CM5Model
from repro.machines.workstation import WORKSTATIONS, WorkstationModel

__all__ = [
    "MachineExecution",
    "MachineModel",
    "CRAY_1",
    "CRAY_YMP8",
    "CrayModel",
    "CM5Model",
    "WORKSTATIONS",
    "WorkstationModel",
]
