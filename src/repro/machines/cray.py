"""Cray YMP-8 and Cray-1 models.

The YMP-8 runs the Perfect codes in two modes:

* ``compiled`` — cft77 autotasking, the paper's "Cray YMP/8 baseline
  compiler" results.  Parallel coverage is what an automatic
  (KAP-class) restructurer extracts, and microtasking fork/join plus
  memory-bank contention impose a serial overhead share.
* ``manual`` — hand-tuned macrotasking: the advanced (automatable)
  coverage with a smaller overhead share; used by the Figure 3 study
  of manually optimized codes.

Delivered MFLOPS in compiled mode are anchored to the paper's Table 3
ratio column ("MFLOPS (YMP-8/Cedar)"); speedups across the 8 CPUs
follow Amdahl's law over the restructured coverage:

    S(P) = 1 / ((1 - c) + c/P + o)

with ``o`` the mode's overhead share.  The Cray-1 is the one-processor
vector reference used in the stability table ("with modern compiler").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machines.base import MachineExecution, MachineModel
from repro.perfect.ir_builder import build_ir
from repro.perfect.profiles import PAPER_TABLE3, PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


@dataclass(frozen=True)
class CrayConfig:
    name: str
    processors: int
    clock_ns: float
    #: per-processor peak (64-bit) MFLOPS.
    peak_mflops: float
    #: parallel overhead share by mode.
    compiled_overhead: float = 0.18
    manual_overhead: float = 0.10


YMP8_CONFIG = CrayConfig(
    name="Cray YMP-8", processors=8, clock_ns=6.0, peak_mflops=333.0
)

CRAY1_CONFIG = CrayConfig(
    name="Cray-1", processors=1, clock_ns=12.5, peak_mflops=160.0
)


class CrayModel(MachineModel):
    """A Cray PVP machine running the Perfect suite."""

    def __init__(self, config: CrayConfig = YMP8_CONFIG, mode: str = "compiled") -> None:
        if mode not in ("compiled", "manual"):
            raise ValueError("mode must be 'compiled' or 'manual'")
        self.config = config
        self.mode = mode
        self.name = f"{config.name} ({mode})"
        self.processors = config.processors

    # -- coverage ------------------------------------------------------------

    def coverage(self, code_name: str) -> float:
        """Parallel(izable) coverage of the code in this mode."""
        program = build_ir(PERFECT_CODES[code_name])
        pipeline = KAP_PIPELINE if self.mode == "compiled" else AUTOMATABLE_PIPELINE
        return pipeline.restructure(program).parallel_coverage

    def overhead(self) -> float:
        if self.processors == 1:
            return 0.0
        if self.mode == "compiled":
            return self.config.compiled_overhead
        return self.config.manual_overhead

    def speedup(self, code_name: str) -> float:
        c = self.coverage(code_name)
        p = self.processors
        raw = 1.0 / ((1.0 - c) + c / p + self.overhead())
        # a code that parallelization would slow down runs single-CPU
        return max(1.0, raw)

    # -- rates ----------------------------------------------------------------

    def compiled_mflops(self, code_name: str) -> float:
        """Delivered rate anchored to the published YMP/Cedar ratio."""
        ref = PAPER_TABLE3[code_name]
        return ref.mflops * ref.ymp_ratio

    def execute_code(self, code_name: str) -> MachineExecution:
        code = PERFECT_CODES[code_name]
        rate = self.compiled_mflops(code_name)
        if self.mode == "manual":
            # hand tuning recovers parallel efficiency on top of the
            # compiled vector rate
            rate = rate * self.speedup(code_name) / max(
                1e-9, CrayModel(self.config, "compiled").speedup(code_name)
            )
        if self.config.processors == 1:
            # Cray-1: one CPU at the YMP's single-CPU vector rate (the
            # 8-CPU rate with its autotasking speedup divided out)
            # scaled by the clock ratio
            ymp = CrayModel(YMP8_CONFIG, "compiled")
            rate = rate / max(1.0, ymp.speedup(code_name))
            rate *= YMP8_CONFIG.clock_ns / self.config.clock_ns
        seconds = code.flops / (rate * 1e6)
        return MachineExecution(
            machine=self.name,
            code=code_name,
            seconds=seconds,
            mflops=rate,
            speedup=self.speedup(code_name),
            processors=self.processors,
        )

    def suite_mflops(self) -> Dict[str, float]:
        return {name: self.execute_code(name).mflops for name in PERFECT_CODES}


CRAY_YMP8 = CrayModel(YMP8_CONFIG, "compiled")
CRAY_1 = CrayModel(CRAY1_CONFIG, "compiled")
