"""Workstation reference models for the stability discussion.

"For the past 20 years, from the VAX 780 through various modern
workstations (Sun SPARC2, IBM RS6000), an instability of about 5 has
been common for the Perfect benchmarks" — a workstation's per-code rate
varies only with how well the code suits its scalar pipeline and
cache, not with parallelization, so the min/max rate ratio stays small.

Each workstation model assigns a per-code MFLOPS from its base scalar
rate modulated by the code's character (vectorizable codes have longer
basic blocks and better locality even on scalar machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machines.base import MachineExecution, MachineModel
from repro.perfect.profiles import PERFECT_CODES


@dataclass(frozen=True)
class WorkstationConfig:
    name: str
    #: typical delivered scalar MFLOPS on numeric code.
    base_mflops: float


class WorkstationModel(MachineModel):
    """One scalar workstation running the Perfect suite."""

    def __init__(self, config: WorkstationConfig) -> None:
        self.config = config
        self.name = config.name
        self.processors = 1

    def code_mflops(self, code_name: str) -> float:
        code = PERFECT_CODES[code_name]
        # character factor: vector-friendly inner loops pipeline well
        # even on scalar machines; pointer/scalar codes fall behind.
        v = max(lp.vector_speedup for lp in code.loops)
        character = 0.45 + 0.17 * v  # ranges ~0.6x .. ~1.4x
        return self.config.base_mflops * character

    def execute_code(self, code_name: str) -> MachineExecution:
        code = PERFECT_CODES[code_name]
        rate = self.code_mflops(code_name)
        return MachineExecution(
            machine=self.name,
            code=code_name,
            seconds=code.flops / (rate * 1e6),
            mflops=rate,
            speedup=1.0,
            processors=1,
        )


WORKSTATIONS: Dict[str, WorkstationModel] = {
    "VAX 780": WorkstationModel(WorkstationConfig("VAX 780", 0.16)),
    "SPARC2": WorkstationModel(WorkstationConfig("SPARC2", 2.2)),
    "RS6000": WorkstationModel(WorkstationConfig("RS6000", 8.5)),
}
