"""Thinking Machines CM-5 model (without floating-point accelerators).

Used by the PPT4 scalability comparison: banded (bandwidth 3 and 11)
sparse matrix-vector products on 32..512 processors, problem sizes
16K..256K ([FWPS92]).  "The CM-5 used does not have floating-point
accelerators", so nodes compute at SPARC scalar rates, and "the
communication structure of the CM-5 evidently causes these performance
difficulties".

The node model is per-point: a bandwidth-``b`` matvec performs
``2b - 1`` flops per point plus a constant number of non-flop
operations (loads, stores, index arithmetic, shift setup) — fitting
the paper's four quoted (bandwidth, N) MFLOPS endpoints gives a node
rate of ~3 MFLOPS and ~10 non-flop slots per point.  Each
data-parallel operation also pays a fixed fat-tree synchronization
overhead, which produces the small-N efficiency rolloff behind the
"scalable intermediate performance" verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.base import MachineExecution, MachineModel


@dataclass(frozen=True)
class CM5Config:
    #: scalar SPARC node rate, M operation-slots per second.
    node_mops: float = 3.05
    #: non-flop operation slots per matrix point (loads/stores/shifts).
    overhead_slots_per_point: float = 10.2
    #: fixed per-data-parallel-operation overhead, seconds.
    op_overhead_s: float = 40e-6
    #: data-parallel operations per banded matvec (one shift + one
    #: multiply-add chain per diagonal).
    ops_per_diagonal: float = 2.0
    #: nominal per-node peak (SPARC without FPA), MFLOPS — the
    #: single-processor reference the efficiency bands are judged
    #: against ([FWPS92] reports rates, not self-relative speedups).
    node_peak_mflops: float = 5.0


class CM5Model(MachineModel):
    """Banded matvec y = A x with ``bandwidth`` diagonals."""

    def __init__(self, processors: int = 32, config: CM5Config = CM5Config()) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        self.name = f"CM-5/{processors} (no FPA)"
        self.processors = processors
        self.config = config

    def matvec_flops(self, n: int, bandwidth: int) -> float:
        """One multiply per diagonal point plus the combining adds."""
        return (2.0 * bandwidth - 1.0) * n

    def matvec_seconds(self, n: int, bandwidth: int) -> float:
        cfg = self.config
        slots_per_point = (2.0 * bandwidth - 1.0) + cfg.overhead_slots_per_point
        compute = n * slots_per_point / (self.processors * cfg.node_mops * 1e6)
        overhead = bandwidth * cfg.ops_per_diagonal * cfg.op_overhead_s
        return compute + overhead

    def matvec_mflops(self, n: int, bandwidth: int) -> float:
        return self.matvec_flops(n, bandwidth) / self.matvec_seconds(n, bandwidth) / 1e6

    def speedup(self, n: int, bandwidth: int) -> float:
        """Equivalent speedup: delivered rate over the single-node
        reference rate (nominal node peak).  [FWPS92] reports absolute
        rates; the band classification judges them against what the
        processor count could nominally deliver."""
        return self.matvec_mflops(n, bandwidth) / self.config.node_peak_mflops

    def execute_code(self, code_name: str) -> MachineExecution:
        raise NotImplementedError(
            "the CM-5 model covers the PPT4 banded-matvec study, not the "
            "Perfect suite"
        )

    def matvec_execution(self, n: int, bandwidth: int) -> MachineExecution:
        return MachineExecution(
            machine=self.name,
            code=f"banded matvec BW={bandwidth}, N={n}",
            seconds=self.matvec_seconds(n, bandwidth),
            mflops=self.matvec_mflops(n, bandwidth),
            speedup=self.speedup(n, bandwidth),
            processors=self.processors,
        )
