"""Common machine-model interfaces."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MachineExecution:
    """One code's modelled run on a machine."""

    machine: str
    code: str
    seconds: float
    mflops: float
    #: speedup over the same (parallel) code on one processor.
    speedup: float
    processors: int

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors


class MachineModel(ABC):
    """A machine that can run the Perfect codes (by model)."""

    name: str
    processors: int

    @abstractmethod
    def execute_code(self, code_name: str) -> MachineExecution:
        """Run one Perfect code."""

    def execute_suite(self) -> Dict[str, MachineExecution]:
        from repro.perfect.profiles import PERFECT_CODES

        return {name: self.execute_code(name) for name in PERFECT_CODES}
