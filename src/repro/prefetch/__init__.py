"""Per-CE data prefetch units (Section 2, "Data Prefetch")."""

from repro.prefetch.pfu import PrefetchStream, PrefetchUnit

__all__ = ["PrefetchStream", "PrefetchUnit"]
