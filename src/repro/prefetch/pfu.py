"""The Cedar data prefetch unit (PFU).

Each CE owns a PFU "designed to mask the long global memory latency and
to overcome the limit of two outstanding requests per Alliant CE".  A
PFU is *armed* with (length, stride, mask) and *fired* with the physical
address of the first word.  It then issues up to 512 requests without
pausing — except at page boundaries, where it suspends until the CE
supplies the first address of the new page (the PFU only sees physical
addresses).  Data lands in a 512-word prefetch buffer with a full/empty
bit per word, so the CE can consume in request order while words return
out of order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import PrefetchConfig, VMConfig
from repro.core.engine import Engine
from repro.gmemory.module import GlobalMemory
from repro.monitor.signals import NULL_SIGNAL
from repro.network.omega import OmegaNetwork
from repro.network.packet import Packet, PacketKind

#: cycles for the CE to notice the page-boundary suspension and resupply
#: the first physical address of the next page.
PAGE_RESUPPLY_CYCLES = 16.0


class PrefetchStream:
    """One armed-and-fired prefetch: its requests and returned words."""

    def __init__(self, length: int, stride: int, start_address: int) -> None:
        if length < 1:
            raise ValueError("prefetch length must be at least 1")
        self.length = length
        self.stride = stride
        self.start_address = start_address
        #: arrival time per word index; None while the full/empty bit is empty.
        self.arrivals: List[Optional[float]] = [None] * length
        self.issued: List[Optional[float]] = [None] * length
        self.words_arrived = 0
        self.invalidated = False
        self._word_waiters: Dict[int, List[Callable[[float], None]]] = {}
        self._done_waiters: List[Callable[[], None]] = []

    @property
    def complete(self) -> bool:
        return self.words_arrived >= self.length

    def word_available(self, index: int) -> bool:
        """Full/empty bit for ``index``."""
        return self.arrivals[index] is not None

    def when_available(self, index: int, callback: Callable[[float], None]) -> None:
        """Invoke ``callback(arrival_time)`` as soon as the word is full."""
        at = self.arrivals[index]
        if at is not None:
            callback(at)
        else:
            self._word_waiters.setdefault(index, []).append(callback)

    def when_complete(self, callback: Callable[[], None]) -> None:
        if self.complete:
            callback()
        else:
            self._done_waiters.append(callback)

    def _deliver(self, index: int, time: float) -> None:
        if self.invalidated:
            return  # a later prefetch invalidated the buffer
        if self.arrivals[index] is not None:
            raise RuntimeError(f"word {index} delivered twice")
        self.arrivals[index] = time
        self.words_arrived += 1
        for callback in self._word_waiters.pop(index, []):
            callback(time)
        if self.complete:
            waiters, self._done_waiters = self._done_waiters, []
            for callback in waiters:
                callback()


class PrefetchUnit:
    """One CE's prefetch engine attached to the forward network port.

    Monitoring is decoupled through the signal bus: the PFU publishes
    ``pfu.arm`` / ``pfu.request`` / ``pfu.deliver`` on its per-port
    channels (wired in :meth:`attach`); probes subscribe.  With no
    subscribers each emission point is a single guarded branch — the
    paper's "monitor without perturbing" property.
    """

    def __init__(
        self,
        engine: Engine,
        port: int,
        forward_network: OmegaNetwork,
        global_memory: GlobalMemory,
        config: PrefetchConfig,
        vm_config: Optional[VMConfig] = None,
    ) -> None:
        self.engine = engine
        self.port = port
        self.forward_network = forward_network
        self.global_memory = global_memory
        self.config = config
        self.vm_config = vm_config
        self._active: Optional[PrefetchStream] = None
        self.streams_fired = 0
        self.words_requested = 0
        self.page_suspensions = 0
        self._sig_arm = NULL_SIGNAL
        self._sig_request = NULL_SIGNAL
        self._sig_deliver = NULL_SIGNAL
        self._sig_suspend = NULL_SIGNAL
        self._sig_birth = NULL_SIGNAL

    # -- component lifecycle ---------------------------------------------------

    def attach(self, ctx) -> None:
        self._sig_arm = ctx.bus.signal("pfu.arm", key=self.port)
        self._sig_request = ctx.bus.signal("pfu.request", key=self.port)
        self._sig_deliver = ctx.bus.signal("pfu.deliver", key=self.port)
        self._sig_suspend = ctx.bus.signal("pfu.suspend", key=self.port)
        self._sig_birth = ctx.bus.signal("req.birth", key=self.port)

    def reset(self) -> None:
        self._active = None
        self.streams_fired = 0
        self.words_requested = 0
        self.page_suspensions = 0

    def stats(self) -> dict:
        return {
            "streams_fired": self.streams_fired,
            "words_requested": self.words_requested,
            "page_suspensions": self.page_suspensions,
        }

    def describe(self) -> dict:
        return {
            "port": self.port,
            "buffer_words": self.config.buffer_words,
            "max_outstanding": self.config.max_outstanding,
            "arm_cycles": self.config.arm_cycles,
        }

    @property
    def page_words(self) -> int:
        page_bytes = self.vm_config.page_bytes if self.vm_config else 4096
        return page_bytes // 8

    def start(
        self,
        length: int,
        stride: int = 1,
        start_address: int = 0,
        keep_previous: bool = False,
    ) -> PrefetchStream:
        """Arm and fire a prefetch; returns the stream handle.

        Starting a prefetch invalidates the buffer contents of the
        previous one unless the caller asked to keep them (reuse mode).
        """
        if length > self.config.max_outstanding:
            raise ValueError(
                f"prefetch length {length} exceeds the {self.config.max_outstanding}"
                " requests the PFU can issue without pausing"
            )
        if length > self.config.buffer_words:
            raise ValueError("prefetch longer than the prefetch buffer")
        if self._active is not None and not self._active.complete:
            # hardware would overwrite in-flight state; treat as misuse
            raise RuntimeError("previous prefetch still in flight")
        if self._active is not None and not keep_previous:
            self._active.invalidated = True
        stream = PrefetchStream(length, stride, start_address)
        self._active = stream
        self.streams_fired += 1
        sig = self._sig_arm
        if sig.callbacks:
            sig.emit(self.port, self.engine.now)
        self.engine.schedule_after(self.config.arm_cycles, self._issue, stream, 0)
        return stream

    # -- request issue ---------------------------------------------------------

    def _issue(self, stream: PrefetchStream, index: int, resupplied: bool = False) -> None:
        if index >= stream.length:
            return
        if not self.forward_network.can_inject(self.port):
            # injection queue full: backpressure stalls the PFU; retry.
            self.engine.schedule_after(1.0, self._issue, stream, index, resupplied)
            return
        address = stream.start_address + index * stream.stride
        if index > 0 and not resupplied:
            prev = stream.start_address + (index - 1) * stream.stride
            if address // self.page_words != prev // self.page_words:
                self.page_suspensions += 1
                sig = self._sig_suspend
                if sig.callbacks:
                    sig.emit(self.port, self.engine.now)
                self.engine.schedule_after(
                    PAGE_RESUPPLY_CYCLES, self._issue, stream, index, True
                )
                return
        self._issue_word(stream, index, address)

    def _issue_word(self, stream: PrefetchStream, index: int, address: int) -> None:
        now = self.engine.now
        stream.issued[index] = now
        self.words_requested += 1
        sig = self._sig_request
        if sig.callbacks:
            sig.emit(self.port, index, now)
        packet = Packet.acquire(
            PacketKind.READ_REQ,
            self.port,
            address % self.global_memory.config.modules,
            address,
        )
        meta = packet.meta
        meta["pfu_stream"] = stream
        meta["word_index"] = index
        sig = self._sig_birth
        if sig.callbacks:
            sig.emit(packet, "prefetch", now)
        self.forward_network.inject(packet, tail=self.global_memory.route_tail(address))
        delay = 1.0 / self.config.issue_per_cycle
        self.engine.schedule_after(delay, self._issue, stream, index + 1)

    # -- reply delivery ----------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Reverse-network sink: a word returned to the prefetch buffer."""
        stream = packet.meta.get("pfu_stream")
        index = packet.meta.get("word_index")
        if stream is None or index is None:
            raise RuntimeError("reply packet lacks prefetch metadata")
        now = self.engine.now
        if stream is self._active:
            sig = self._sig_deliver
            if sig.callbacks:
                sig.emit(self.port, index, now)
        stream._deliver(index, now)
