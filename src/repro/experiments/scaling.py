"""Application scaling curves (PPT4 at the full-application level).

PPT4 requires that "the computer system effectively runs each
code/data size on a range of processor counts".  The Section 4.4 study
answers it for the CG kernel; this harness produces the same curves
for the Perfect applications through the performance model: speedup of
each automatable code at 1..32 CEs, with its efficiency band at every
width.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.metrics.bands import Band, band_for_speedup
from repro.perf.model import CedarApplicationModel
from repro.perfect.profiles import PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE
from repro.util.tables import Table

PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ScalingCurve:
    code: str
    #: seconds at each processor count.
    seconds: Tuple[float, ...]

    @property
    def speedups(self) -> Tuple[float, ...]:
        base = self.seconds[0]
        return tuple(base / t for t in self.seconds)

    def band_at(self, processors: int) -> Band:
        idx = PROCESSOR_COUNTS.index(processors)
        return band_for_speedup(self.speedups[idx], processors)

    @property
    def knee(self) -> int:
        """Largest P that still gains at least 30% over P/2 — where
        adding the next doubling stops paying."""
        best = PROCESSOR_COUNTS[0]
        speedups = self.speedups
        for i in range(1, len(PROCESSOR_COUNTS)):
            if speedups[i] >= 1.3 * speedups[i - 1]:
                best = PROCESSOR_COUNTS[i]
        return best


@lru_cache(maxsize=1)
def run_scaling_study() -> Dict[str, ScalingCurve]:
    out = {}
    for name in sorted(PERFECT_CODES):
        code = PERFECT_CODES[name]
        seconds = tuple(
            CedarApplicationModel(processors=p)
            .execute(code, AUTOMATABLE_PIPELINE)
            .seconds
            for p in PROCESSOR_COUNTS
        )
        out[name] = ScalingCurve(code=name, seconds=seconds)
    return out


def render_scaling(curves: Dict[str, ScalingCurve]) -> str:
    table = Table(
        title="Perfect-code scaling on Cedar (speedup over 1 CE running "
        "the same restructured code; band at 32 CEs)",
        columns=["code"] + [f"P={p}" for p in PROCESSOR_COUNTS] + ["band@32", "knee"],
        precision=1,
    )
    for name, curve in curves.items():
        table.add_row(
            [name, *curve.speedups, curve.band_at(32).value[:4], curve.knee]
        )
    from repro.util.ascii_chart import line_chart

    picks = ("TRFD", "MDG", "ARC2D", "QCD")
    series = {
        name: list(zip(PROCESSOR_COUNTS, curves[name].speedups))
        for name in picks
        if name in curves
    }
    chart = line_chart(
        series,
        title="speedup vs processors (selected codes)",
        x_label="CEs",
        y_label="speedup",
    )
    return table.render() + "\n\n" + chart
