"""Table 5: Instability for the Perfect codes.

In(13, 0), In(13, 2), In(13, 6) for Cedar and the Cray YMP-8 (plus the
Cray-1 reference row), over delivered-MFLOPS ensembles.  The paper's
verdict: "two exceptions are sufficient on the Cray 1 and Cedar,
whereas the YMP needs six"; our ensembles put Cedar at 2-3 exceptions
and the YMP at ~6 (EXPERIMENTS.md discusses the delta).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.experiments.table3 import run_table3
from repro.machines.cray import CRAY_1, CRAY_YMP8
from repro.metrics.stability import exclusions_for_stability, instability
from repro.perfect.profiles import PERFECT_CODES
from repro.util.tables import Table

EXCLUSION_LEVELS = (0, 2, 6)


@dataclass(frozen=True)
class Table5Row:
    machine: str
    instabilities: Tuple[float, ...]  # at EXCLUSION_LEVELS
    exceptions_for_workstation_stability: int


def _cedar_mflops() -> List[float]:
    return [row.mflops for row in run_table3() if row.mflops is not None]


def _machine_mflops(machine) -> List[float]:
    return [machine.execute_code(name).mflops for name in PERFECT_CODES]


@lru_cache(maxsize=1)
def run_table5() -> Tuple[Table5Row, ...]:
    ensembles: Dict[str, List[float]] = {
        "Cedar": _cedar_mflops(),
        "Cray YMP-8": _machine_mflops(CRAY_YMP8),
        "Cray-1": _machine_mflops(CRAY_1),
    }
    rows = []
    for machine, values in ensembles.items():
        rows.append(
            Table5Row(
                machine=machine,
                instabilities=tuple(
                    instability(values, e) for e in EXCLUSION_LEVELS
                ),
                exceptions_for_workstation_stability=exclusions_for_stability(
                    values, threshold=0.2
                ),
            )
        )
    return tuple(rows)


def render_table5(rows: Tuple[Table5Row, ...]) -> str:
    table = Table(
        title="Table 5: Instability for Perfect codes (delivered MFLOPS; "
        "last column: exceptions needed for workstation-level In <= 5)",
        columns=["machine", "In(13,0)", "In(13,2)", "In(13,6)", "e for In<=5"],
        precision=1,
    )
    for row in rows:
        table.add_row(
            [row.machine, *row.instabilities, row.exceptions_for_workstation_stability]
        )
    return table.render()
