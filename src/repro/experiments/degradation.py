"""Degradation study: kernel performance under injected faults.

The robustness analogue of the paper's Figure 3 contention study: where
Figure 3 varies *load* and watches efficiency fall, this experiment
varies the machine's *fault rate* (one-knob
:meth:`~repro.faults.plan.FaultPlan.uniform` plans over a shared seed)
and watches delivered bandwidth fall and latency rise as switch ports
drop transfers, memory modules take ECC retries, and sync processors
time out.

Each rate point runs two phases on fresh machines:

* a **kernel phase** — the usual prefetch kernel measurement
  (MFLOPS, first-word latency, interarrival), and
* a **sync phase** — every CE hammers Test-And-Operate instructions
  across the modules, timing completion, so sync-processor timeouts
  show up somewhere they dominate.

Both phases run under an engine :class:`~repro.core.engine.Watchdog`;
a point whose machine livelocks or blows its event budget is reported
as ``[ABORTED]`` with zero MFLOPS rather than hanging the sweep (the
same convention as the ablation studies' ``[DEADLOCK]`` rows).

Determinism: every number here is a pure function of (rates, seed,
kernel, n_ces, strips, rounds) — the injector derives all randomness
from the plan seed, so re-running the sweep reproduces it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config import CedarConfig
from repro.core.engine import SimulationError, Watchdog
from repro.core.machine import CedarMachine
from repro.cluster.ce import SyncInstruction
from repro.faults.plan import FaultPlan
from repro.kernels.programs import KERNELS, kernel_program
from repro.util.tables import Table

#: event budget per phase: a healthy point needs well under a tenth of
#: this; a livelocked one aborts here instead of spinning forever.
PHASE_EVENT_BUDGET = 20_000_000


@dataclass(frozen=True)
class DegradationPoint:
    """One fault-rate setting of the sweep."""

    rate: float
    mflops: float
    latency: Optional[float]
    interarrival: Optional[float]
    sync_cycles: float
    transients: int
    port_downs: int
    ecc_retries: int
    sync_timeouts: int
    rerouted: int
    aborted: bool


def _plan(rate: float, seed: int) -> FaultPlan:
    return FaultPlan.uniform(rate, seed=seed) if rate > 0.0 else FaultPlan(seed=seed)


def _watchdog() -> Watchdog:
    return Watchdog(max_events=PHASE_EVENT_BUDGET)


def _fault_counts(machine: CedarMachine) -> Tuple[int, int, int, int, int]:
    injector = machine.faults
    if injector is None:
        return 0, 0, 0, 0, 0
    return (
        injector.transients,
        injector.port_downs,
        injector.ecc_retries,
        injector.sync_timeouts,
        injector.rerouted,
    )


def _sync_program(port: int, rounds: int, modules: int):
    """``rounds`` Test-And-Operate round trips, striding the modules so
    every sync processor sees traffic."""
    for i in range(rounds):
        yield SyncInstruction(address=port + i * (modules + 1))


def run_degradation(
    rates: Sequence[float] = (0.0, 0.005, 0.02, 0.05),
    seed: int = 2024,
    kernel: str = "CG",
    n_ces: int = 8,
    strips: int = 6,
    rounds: int = 24,
) -> Tuple[DegradationPoint, ...]:
    """Sweep ``rates`` and measure kernel + sync performance per point."""
    shape = KERNELS[kernel]
    points = []
    for rate in rates:
        config = CedarConfig(faults=_plan(rate, seed))

        # kernel phase
        machine = CedarMachine(config, monitor_port=0)
        programs = {
            port: kernel_program(shape, port, strips, prefetch=True)
            for port in range(n_ces)
        }
        aborted = False
        rate_mflops = 0.0
        latency = interarrival = None
        try:
            cycles = machine.run_programs(programs, watchdog=_watchdog())
            seconds = cycles * config.ce.cycle_ns * 1e-9
            rate_mflops = shape.flops * strips * n_ces / seconds / 1e6
            summary = machine.probe.summary()
            if summary.blocks:
                latency = summary.first_word_latency
                interarrival = summary.interarrival
        except SimulationError:
            aborted = True
        kernel_faults = _fault_counts(machine)

        # sync phase
        sync_cycles = 0.0
        sync_machine = CedarMachine(config)
        modules = config.global_memory.modules
        sync_programs = {
            port: _sync_program(port, rounds, modules) for port in range(n_ces)
        }
        try:
            sync_cycles = sync_machine.run_programs(
                sync_programs, watchdog=_watchdog()
            )
        except SimulationError:
            aborted = True
        sync_faults = _fault_counts(sync_machine)

        totals = tuple(a + b for a, b in zip(kernel_faults, sync_faults))
        points.append(
            DegradationPoint(
                rate=rate,
                mflops=0.0 if aborted else rate_mflops,
                latency=latency,
                interarrival=interarrival,
                sync_cycles=sync_cycles,
                transients=totals[0],
                port_downs=totals[1],
                ecc_retries=totals[2],
                sync_timeouts=totals[3],
                rerouted=totals[4],
                aborted=aborted,
            )
        )
    return tuple(points)


def render_degradation(points: Sequence[DegradationPoint]) -> str:
    table = Table(
        title="Degradation: kernel bandwidth/latency vs fault rate",
        columns=[
            "fault rate",
            "MFLOPS",
            "latency (cyc)",
            "interarrival (cyc)",
            "sync run (cyc)",
            "transients",
            "ecc",
            "sync t/o",
            "rerouted",
            "status",
        ],
        precision=2,
    )
    for p in points:
        table.add_row(
            [
                f"{p.rate:g}",
                p.mflops,
                p.latency,
                p.interarrival,
                p.sync_cycles,
                p.transients,
                p.ecc_retries,
                p.sync_timeouts,
                p.rerouted,
                "[ABORTED]" if p.aborted else "ok",
            ]
        )
    lines = [table.render()]
    lines.append(
        "Faults are drawn deterministically from the plan seed: the same "
        "sweep reproduces these rows exactly."
    )
    return "\n".join(lines)
