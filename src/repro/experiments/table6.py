"""Table 6: Restructuring Efficiency.

Band census of restructured-code efficiencies: Cedar running the
automatable versions vs the Cray YMP-8 running its automatically
compiled versions.  Paper counts: Cedar 1 high / 9 intermediate / 3
unacceptable; YMP 0 / 6 / 7.

Efficiency is Ep = speedup / P where speedup compares against the same
(restructured, vectorized) code on ONE processor — the definition that
reproduces the paper's counts (speedup over *scalar serial* would give
Cedar five "high" codes, contradicting Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.machines.cray import CRAY_YMP8
from repro.metrics.ppt import PPT3Result, ppt3_restructuring_bands
from repro.perf.model import CedarApplicationModel
from repro.perfect.profiles import PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE
from repro.util.tables import Table

PAPER_TABLE6 = {"Cedar": (1, 9, 3), "Cray YMP": (0, 6, 7)}


@lru_cache(maxsize=None)
def cedar_restructured_efficiency(code_name: str) -> float:
    """Ep for the automatable version on 32 CEs vs the same code on 1 CE."""
    code = PERFECT_CODES[code_name]
    one = CedarApplicationModel(processors=1).execute(code, AUTOMATABLE_PIPELINE)
    full = CedarApplicationModel(processors=32).execute(code, AUTOMATABLE_PIPELINE)
    return (one.seconds / full.seconds) / 32.0


def ymp_restructured_efficiency(code_name: str) -> float:
    return CRAY_YMP8.speedup(code_name) / 8.0


@dataclass(frozen=True)
class Table6Result:
    cedar: PPT3Result
    ymp: PPT3Result


@lru_cache(maxsize=1)
def run_table6() -> Table6Result:
    cedar_eff: Dict[str, float] = {
        name: cedar_restructured_efficiency(name) for name in PERFECT_CODES
    }
    ymp_eff: Dict[str, float] = {
        name: ymp_restructured_efficiency(name) for name in PERFECT_CODES
    }
    return Table6Result(
        cedar=ppt3_restructuring_bands("Cedar", cedar_eff, processors=32),
        ymp=ppt3_restructuring_bands("Cray YMP", ymp_eff, processors=8),
    )


def render_table6(result: Table6Result) -> str:
    table = Table(
        title="Table 6: Restructuring Efficiency (code counts; [paper])",
        columns=["level", "Cedar", "[Cedar]", "Cray YMP", "[YMP]"],
        precision=0,
    )
    c, y = result.cedar.counts, result.ymp.counts
    pc, py = PAPER_TABLE6["Cedar"], PAPER_TABLE6["Cray YMP"]
    table.add_row(["High (Ep > .5)", c[0], pc[0], y[0], py[0]])
    table.add_row(["Intermediate (Ep > 1/2logP)", c[1], pc[1], y[1], py[1]])
    table.add_row(["Unacceptable", c[2], pc[2], y[2], py[2]])
    body = table.render()
    detail = [
        "",
        f"Cedar high: {', '.join(result.cedar.high) or '-'}",
        f"Cedar unacceptable: {', '.join(result.cedar.unacceptable) or '-'}",
        f"YMP high: {', '.join(result.ymp.high) or '-'}",
        f"YMP unacceptable: {', '.join(result.ymp.unacceptable) or '-'}",
    ]
    return body + "\n".join(detail)
