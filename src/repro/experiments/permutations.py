"""Permutation traffic through the omega network.

An omega network is blocking: it routes some permutations without
conflict (e.g. the identity and uniform shifts) but serializes others
(bit-reversal-like patterns collide at internal stages).  Lawrie's
paper — the routing scheme Cedar uses — is precisely about which
alignments of data across memory modules keep vector accesses
conflict-free.  This study measures the simulator's throughput for
representative permutations, quantifying how much the two-stage
network's internal conflicts cost relative to an ideal pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.core.engine import Engine, make_engine
from repro.network.omega import OmegaNetwork
from repro.network.packet import Packet, PacketKind
from repro.network.routing import delta_path
from repro.util.tables import Table

N_PORTS = 32


def identity(src: int) -> int:
    return src


def shift_by_one(src: int) -> int:
    return (src + 1) % N_PORTS


def bit_reversal(src: int) -> int:
    return int(format(src, "05b")[::-1], 2)


def transpose_halves(src: int) -> int:
    # swap the two mixed-radix digits (8x4 network): a matrix-transpose
    # style pattern
    hi, lo = divmod(src, 4)
    return (lo * 8 + hi) % N_PORTS


def all_to_one(src: int) -> int:
    return 0


PERMUTATIONS: Dict[str, Callable[[int], int]] = {
    "identity": identity,
    "shift+1": shift_by_one,
    "bit reversal": bit_reversal,
    "transpose": transpose_halves,
    "all-to-one": all_to_one,
}


@dataclass(frozen=True)
class PermutationResult:
    name: str
    #: cycles until the last of ``rounds`` waves is delivered.
    cycles: float
    #: words delivered per cycle in steady state.
    throughput: float
    #: stage-conflict count predicted statically from the paths.
    static_conflicts: int


def static_conflicts(mapping: Callable[[int], int]) -> int:
    """Pairs of sources whose paths share a stage-output port."""
    paths = [delta_path(s, mapping(s), [8, 4]) for s in range(N_PORTS)]
    conflicts = 0
    for stage in range(2):
        seen: Dict[int, int] = {}
        for path in paths:
            seen[path[stage]] = seen.get(path[stage], 0) + 1
        conflicts += sum(c - 1 for c in seen.values() if c > 1)
    return conflicts


def run_permutation(
    mapping: Callable[[int], int], name: str, rounds: int = 16
) -> PermutationResult:
    """Send ``rounds`` single-word packets from every source along the
    permutation, paced by injection-port availability."""
    engine = make_engine()
    net = OmegaNetwork(engine, "perm", N_PORTS)
    delivered = {"words": 0}
    for port in range(N_PORTS):
        net.register_sink(port, lambda p: delivered.__setitem__(
            "words", delivered["words"] + 1))

    def inject(src: int, remaining: int) -> None:
        if remaining == 0:
            return
        if not net.can_inject(src):
            engine.schedule_after(1.0, lambda: inject(src, remaining))
            return
        net.inject(
            Packet(kind=PacketKind.READ_REQ, src=src, dst=mapping(src),
                   address=mapping(src))
        )
        engine.schedule_after(1.0, lambda: inject(src, remaining - 1))

    for src in range(N_PORTS):
        inject(src, rounds)
    cycles = engine.run()
    total = N_PORTS * rounds
    assert delivered["words"] == total
    return PermutationResult(
        name=name,
        cycles=cycles,
        throughput=total / cycles,
        static_conflicts=static_conflicts(mapping),
    )


@lru_cache(maxsize=1)
def run_permutation_study(rounds: int = 16) -> Tuple[PermutationResult, ...]:
    return tuple(
        run_permutation(fn, name, rounds) for name, fn in PERMUTATIONS.items()
    )


def render_permutations(results: Tuple[PermutationResult, ...]) -> str:
    table = Table(
        title="Omega-network permutation study (32 ports, 8x4 stages)",
        columns=["pattern", "cycles", "words/cycle", "static conflicts"],
        precision=2,
    )
    for r in results:
        table.add_row([r.name, r.cycles, r.throughput, r.static_conflicts])
    return table.render()
