"""Table 3: Cedar execution time, MFLOPS, and speed improvement for
the Perfect Benchmarks.

Columns: "Compiled by Kap/Cedar" (time, improvement), "Auto.
transforms" (time, improvement), "W/o Cedar Synchronization" (time, %
slowdown), "W/o prefetch" (time, % slowdown), MFLOPS, and the
YMP-8/Cedar MFLOPS ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.machines.cray import CRAY_YMP8
from repro.perf.model import CedarApplicationModel
from repro.perfect.profiles import PAPER_TABLE3, PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE
from repro.util.tables import Table

CODE_ORDER = tuple(sorted(PERFECT_CODES))


@dataclass(frozen=True)
class Table3Row:
    code: str
    kap_time: float
    kap_improvement: float
    auto_time: Optional[float]
    auto_improvement: Optional[float]
    no_sync_time: Optional[float]
    no_sync_slowdown: Optional[float]
    no_prefetch_time: Optional[float]
    no_prefetch_slowdown: Optional[float]
    mflops: Optional[float]
    ymp_ratio: float


@lru_cache(maxsize=1)
def run_table3() -> Tuple[Table3Row, ...]:
    """Regenerate Table 3 through the application model."""
    model = CedarApplicationModel()
    rows: List[Table3Row] = []
    for name in CODE_ORDER:
        code = PERFECT_CODES[name]
        kap = model.execute(code, KAP_PIPELINE)
        auto = model.execute(code, AUTOMATABLE_PIPELINE)
        no_sync = model.execute(code, AUTOMATABLE_PIPELINE, use_cedar_sync=False)
        no_pref = model.execute(
            code, AUTOMATABLE_PIPELINE, use_cedar_sync=False, use_prefetch=False
        )
        has_auto = PAPER_TABLE3[name].auto_time is not None
        ymp_rate = CRAY_YMP8.compiled_mflops(name)
        cedar_rate = auto.mflops if has_auto else kap.mflops
        rows.append(
            Table3Row(
                code=name,
                kap_time=kap.seconds,
                kap_improvement=kap.improvement,
                auto_time=auto.seconds if has_auto else None,
                auto_improvement=auto.improvement if has_auto else None,
                no_sync_time=no_sync.seconds if has_auto else None,
                no_sync_slowdown=(no_sync.seconds / auto.seconds - 1.0)
                if has_auto
                else None,
                no_prefetch_time=no_pref.seconds if has_auto else None,
                no_prefetch_slowdown=(no_pref.seconds / no_sync.seconds - 1.0)
                if has_auto
                else None,
                mflops=cedar_rate,
                ymp_ratio=ymp_rate / cedar_rate,
            )
        )
    return tuple(rows)


def render_table3(rows: Tuple[Table3Row, ...]) -> str:
    table = Table(
        title="Table 3: Cedar time, MFLOPS, speed improvement for the "
        "Perfect Benchmarks (measured vs [paper])",
        columns=[
            "code", "kap", "(imp)", "auto", "(imp)",
            "w/o sync", "(%)", "w/o pref", "(%)", "MFLOPS", "YMP ratio",
        ],
        precision=1,
    )
    for row in rows:
        ref = PAPER_TABLE3[row.code]
        pct = lambda x: None if x is None else round(100 * x)
        table.add_row(
            [
                row.code, row.kap_time, row.kap_improvement,
                row.auto_time, row.auto_improvement,
                row.no_sync_time, pct(row.no_sync_slowdown),
                row.no_prefetch_time, pct(row.no_prefetch_slowdown),
                row.mflops, row.ymp_ratio,
            ]
        )
        table.add_row(
            [
                f"[{row.code}]", ref.kap_time, ref.kap_improvement,
                ref.auto_time, ref.auto_improvement,
                None if ref.auto_time is None else ref.auto_time * (1 + ref.no_sync_slowdown),
                pct(ref.no_sync_slowdown),
                None
                if ref.auto_time is None
                else ref.auto_time * (1 + ref.no_sync_slowdown) * (1 + ref.no_prefetch_slowdown),
                pct(ref.no_prefetch_slowdown),
                ref.mflops, ref.ymp_ratio,
            ]
        )
    return table.render()
