"""Figure 3: Cray YMP/8 vs Cedar efficiency scatter plot.

"Figure 3 shows a scatter plot of Cray YMP/8 vs Cedar efficiencies for
the manually optimized Perfect codes.  The 8-processor YMP has about
half high and half intermediate levels of performance, while the
32-processor Cedar has about one-quarter high and three-quarters
intermediate.  Note that the YMP has one unacceptable performance,
while Cedar has none."

Codes with hand-optimization models use them; the rest use their
automatable versions (the best available "manual" level).  The bench
renders the scatter as ASCII with the U/I/H band boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.machines.cray import CrayModel, YMP8_CONFIG
from repro.metrics.bands import Band, band_for_efficiency
from repro.perf.model import CedarApplicationModel
from repro.perfect.handopt import HANDOPT_MODELS
from repro.perfect.profiles import PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE


@dataclass(frozen=True)
class ScatterPoint:
    code: str
    cedar_efficiency: float
    ymp_efficiency: float

    @property
    def cedar_band(self) -> Band:
        return band_for_efficiency(self.cedar_efficiency, 32)

    @property
    def ymp_band(self) -> Band:
        return band_for_efficiency(self.ymp_efficiency, 8)


def _cedar_manual_efficiency(code_name: str) -> float:
    """Speedup of the best (manual where available) version on 32 CEs
    over the same code on one CE, as an efficiency."""
    code = PERFECT_CODES[code_name]
    one = CedarApplicationModel(processors=1).execute(
        code, AUTOMATABLE_PIPELINE, use_cedar_sync=False
    )
    if code_name in HANDOPT_MODELS:
        manual_seconds = HANDOPT_MODELS[code_name].apply().seconds
    else:
        manual_seconds = CedarApplicationModel(processors=32).execute(
            code, AUTOMATABLE_PIPELINE, use_cedar_sync=False
        ).seconds
    efficiency = (one.seconds / manual_seconds) / 32.0
    return min(1.0, efficiency)


@lru_cache(maxsize=1)
def run_fig3() -> Tuple[ScatterPoint, ...]:
    ymp_manual = CrayModel(YMP8_CONFIG, "manual")
    points = []
    for name in sorted(PERFECT_CODES):
        points.append(
            ScatterPoint(
                code=name,
                cedar_efficiency=_cedar_manual_efficiency(name),
                ymp_efficiency=min(1.0, ymp_manual.speedup(name) / 8.0),
            )
        )
    return tuple(points)


def band_census(points: Tuple[ScatterPoint, ...]) -> Dict[str, Dict[Band, int]]:
    census: Dict[str, Dict[Band, int]] = {
        "Cedar": {b: 0 for b in Band},
        "YMP": {b: 0 for b in Band},
    }
    for p in points:
        census["Cedar"][p.cedar_band] += 1
        census["YMP"][p.ymp_band] += 1
    return census


def render_fig3(points: Tuple[ScatterPoint, ...], width: int = 51, height: int = 21) -> str:
    """ASCII rendering of the scatter (x: Cedar eff, y: YMP eff)."""
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for p in points:
        x = min(width - 1, int(p.cedar_efficiency * (width - 1)))
        y = min(height - 1, int(p.ymp_efficiency * (height - 1)))
        row = height - 1 - y
        mark = p.code[0]
        grid[row][x] = mark
    lines = ["Figure 3: Cray YMP/8 vs Cedar efficiency (manual codes)"]
    lines.append("y: YMP efficiency 0..1, x: Cedar efficiency 0..1")
    for r, row in enumerate(grid):
        y_val = (height - 1 - r) / (height - 1)
        marker = f"{y_val:4.1f}|"
        lines.append(marker + "".join(row))
    lines.append("     " + "-" * width)
    census = band_census(points)
    for machine, counts in census.items():
        lines.append(
            f"{machine}: high={counts[Band.HIGH]} "
            f"intermediate={counts[Band.INTERMEDIATE]} "
            f"unacceptable={counts[Band.UNACCEPTABLE]}"
        )
    lines.append("[paper] YMP: ~half high, ~half intermediate, one unacceptable")
    lines.append("[paper] Cedar: ~quarter high, ~three-quarters intermediate, none unacceptable")
    return "\n".join(lines)
