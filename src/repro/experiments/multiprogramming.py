"""Why the paper measured in single-user mode.

"All the results presented in this section were collected in
single-user mode to avoid the non-determinism of multiprogramming."
This study quantifies that: the same SDOALL workload is gang-scheduled
alone and then with a competing process, and the slowdown plus
run-to-run spread (as competitor phases shift) is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.xylem.scheduler import GangScheduler, XylemProcess


@dataclass(frozen=True)
class MultiprogrammingResult:
    single_user_makespan: float
    shared_makespans: Tuple[float, ...]

    @property
    def mean_slowdown(self) -> float:
        mean = sum(self.shared_makespans) / len(self.shared_makespans)
        return mean / self.single_user_makespan

    @property
    def spread(self) -> float:
        """max/min across competitor phasings — the non-determinism."""
        return max(self.shared_makespans) / min(self.shared_makespans)


def _run_workload(
    scheduler: GangScheduler, tasks: List[float], name: str
) -> XylemProcess:
    process = XylemProcess(name)
    for i, duration in enumerate(tasks):
        scheduler.schedule(process.new_task(duration), affinity=(name, i % 4))
    return process


@lru_cache(maxsize=1)
def run_multiprogramming_study(clusters: int = 4) -> MultiprogrammingResult:
    # the measured job: 16 SDOALL cluster-tasks of 10ms
    job = [10.0] * 16

    solo_sched = GangScheduler(clusters)
    solo = _run_workload(solo_sched, job, "job")
    single = solo.makespan

    shared_makespans = []
    for phase in range(4):
        sched = GangScheduler(clusters)
        # a competitor with irregular task sizes, phase-shifted
        competitor_tasks = [(3.0 + ((i + phase) % 5) * 4.0) for i in range(12)]
        _run_workload(sched, competitor_tasks[:phase + 2], "other")
        process = _run_workload(sched, job, "job")
        _run_workload(sched, competitor_tasks[phase + 2:], "other")
        shared_makespans.append(process.makespan)
    return MultiprogrammingResult(
        single_user_makespan=single,
        shared_makespans=tuple(shared_makespans),
    )


def render_multiprogramming(result: MultiprogrammingResult) -> str:
    """Text artifact for the single-user-mode justification study."""
    lines = [
        "Multiprogramming study: why the paper measured single-user",
        "----------------------------------------------------------",
        f"single-user makespan      : {result.single_user_makespan:.1f} ms",
    ]
    for i, makespan in enumerate(result.shared_makespans):
        lines.append(f"shared, competitor phase {i}: {makespan:.1f} ms")
    lines.append(f"mean slowdown             : {result.mean_slowdown:.2f}x")
    lines.append(
        f"run-to-run spread         : {result.spread:.2f}x (max/min across phasings)"
    )
    lines.append(
        '=> "collected in single-user mode to avoid the non-determinism'
        ' of multiprogramming"'
    )
    return "\n".join(lines)
