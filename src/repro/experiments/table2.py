"""Table 2: Global memory performance.

"Prefetch Speedup", first-word "Latency (cycles)" and "Interarrival
(cycles)" for TM, CG, VF and RK on 8, 16 and 32 processors, all data
global, prefetching on.  The paper's reference values are embedded for
side-by-side reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.kernels_sim import (
    DEFAULT_STRIPS,
    prefetch_speedup,
    run_kernel_measurement,
)
from repro.util.tables import Table

CE_COUNTS = (8, 16, 32)
KERNEL_ORDER = ("TM", "CG", "VF", "RK")

#: paper values: kernel -> (speedups, latencies, interarrivals) at 8/16/32.
PAPER_TABLE2: Dict[str, Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]] = {
    "TM": ((2.1, 2.0, 1.5), (9.4, 10.2, 14.2), (1.1, 1.2, 2.1)),
    "CG": ((2.4, 2.2, 1.5), (9.4, 10.3, 15.1), (1.1, 1.2, 2.1)),
    "VF": ((1.8, 1.7, 1.5), (9.6, 11.0, 16.7), (1.2, 1.4, 2.2)),
    "RK": ((3.4, 2.9, 1.8), (12.9, 15.3, 18.3), (1.2, 1.8, 3.2)),
}


@dataclass(frozen=True)
class Table2Row:
    kernel: str
    speedups: Tuple[float, ...]
    latencies: Tuple[float, ...]
    interarrivals: Tuple[float, ...]


def run_table2(strips: int = DEFAULT_STRIPS) -> List[Table2Row]:
    """Regenerate Table 2 on the simulated machine."""
    rows = []
    for kernel in KERNEL_ORDER:
        speedups = tuple(
            prefetch_speedup(kernel, n, strips=strips) for n in CE_COUNTS
        )
        measured = [
            run_kernel_measurement(kernel, n, prefetch=True, strips=strips)
            for n in CE_COUNTS
        ]
        rows.append(
            Table2Row(
                kernel=kernel,
                speedups=speedups,
                latencies=tuple(m.latency for m in measured),
                interarrivals=tuple(m.interarrival for m in measured),
            )
        )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    table = Table(
        title="Table 2: Global memory performance (measured vs [paper])",
        columns=[
            "kernel",
            "spd@8", "spd@16", "spd@32",
            "lat@8", "lat@16", "lat@32",
            "int@8", "int@16", "int@32",
        ],
        precision=1,
    )
    for row in rows:
        table.add_row(
            [row.kernel, *row.speedups, *row.latencies, *row.interarrivals]
        )
        paper = PAPER_TABLE2[row.kernel]
        table.add_row([f"[{row.kernel}]", *paper[0], *paper[1], *paper[2]])
    return table.render()
