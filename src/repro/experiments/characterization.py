"""Memory-system characterization microbenchmarks ([GJTV91]-style).

Pins the calibration facts Section 4.1 quotes:

* minimal first-word latency 8 cycles, minimal interarrival 1 cycle;
* the 13-cycle CE-observed global latency;
* GM/no-pref throughput of two outstanding requests per round trip;
* the 74%-of-effective-peak ceiling of the cache version at 32 CEs;
* the sustained global bandwidth "consistent with the observed maximum
  bandwidth of memory system characterization benchmarks".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cluster.ce import AwaitStream, GlobalLoad, StartPrefetch
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.util.tables import Table
from repro.util.units import WORD_BYTES


@dataclass(frozen=True)
class Characterization:
    unloaded_latency_cycles: float
    unloaded_interarrival_cycles: float
    ce_observed_latency_cycles: float
    nopref_cycles_per_word: float
    sustained_bandwidth_mb_s: float
    peak_bandwidth_mb_s: float


def _stream_program(length: int, address: int = 0):
    def prog():
        stream = yield StartPrefetch(length=length, stride=1, address=address)
        yield AwaitStream(stream)

    return prog()


@lru_cache(maxsize=1)
def run_characterization() -> Characterization:
    config = CedarConfig()

    # unloaded single-CE stream
    machine = CedarMachine(config, monitor_port=0)
    machine.run_programs({0: _stream_program(64)})
    summary = machine.probe.summary()

    # CE-observed latency: arm + path + buffer-to-CE
    ce_observed = (
        summary.first_word_latency + config.prefetch.buffer_to_ce_cycles
    )

    # GM/no-pref word cost: a plain strided vector load, two
    # outstanding element requests
    def load_prog():
        yield GlobalLoad(length=128, stride=1, address=0)

    loader = CedarMachine(config)
    nopref_cycles_per_word = loader.run_programs({0: load_prog()}) / 128

    # sustained bandwidth: all 32 CEs streaming flat out
    full = CedarMachine(config)
    programs = {
        port: _stream_program(256, address=port * (1 << 16))
        for port in range(config.total_ces)
    }
    cycles = full.run_programs(programs)
    words_moved = 256 * config.total_ces
    bytes_per_second = (
        words_moved * WORD_BYTES / (cycles * config.ce.cycle_ns * 1e-9)
    )
    peak = (
        config.global_memory.modules
        / config.global_memory.access_cycles
        * WORD_BYTES
        / (config.ce.cycle_ns * 1e-9)
    )
    return Characterization(
        unloaded_latency_cycles=summary.first_word_latency,
        unloaded_interarrival_cycles=summary.interarrival,
        ce_observed_latency_cycles=ce_observed,
        nopref_cycles_per_word=nopref_cycles_per_word,
        sustained_bandwidth_mb_s=bytes_per_second / 1e6,
        peak_bandwidth_mb_s=peak / 1e6,
    )


def render_characterization(c: Characterization) -> str:
    table = Table(
        title="Memory-system characterization (paper values in brackets)",
        columns=["metric", "measured", "[paper]"],
        precision=1,
    )
    table.add_row(["min first-word latency (cycles)", c.unloaded_latency_cycles, 8.0])
    table.add_row(["min interarrival (cycles)", c.unloaded_interarrival_cycles, 1.0])
    table.add_row(["CE-observed latency (cycles)", c.ce_observed_latency_cycles, 13.0])
    table.add_row(["GM/no-pref cycles/word", c.nopref_cycles_per_word, 6.5])
    table.add_row(["nominal peak GM bandwidth (MB/s)", c.peak_bandwidth_mb_s, 768.0])
    table.add_row(["sustained GM bandwidth (MB/s)", c.sustained_bandwidth_mb_s, None])
    return table.render()
