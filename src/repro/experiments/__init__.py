"""Experiment harnesses regenerating every table and figure.

Each module reproduces one artifact of the paper's evaluation; the
``benchmarks/`` pytest-benchmark targets are thin wrappers over these
functions, so the same code also powers EXPERIMENTS.md generation and
the examples.

Results of the expensive cycle-level simulations are memoized
process-wide (keyed by their full parameterization), so tests and
benches sharing a configuration do not re-simulate.
"""

from repro.experiments.kernels_sim import KernelMeasurement, run_kernel_measurement
from repro.experiments.table1 import Table1Row, render_table1, run_table1
from repro.experiments.table2 import Table2Row, render_table2, run_table2
from repro.experiments.table3 import Table3Row, render_table3, run_table3
from repro.experiments.table4 import Table4Row, render_table4, run_table4
from repro.experiments.table5 import Table5Row, render_table5, run_table5
from repro.experiments.table6 import Table6Result, render_table6, run_table6
from repro.experiments.fig1 import render_fig1, topology_summary
from repro.experiments.fig3 import ScatterPoint, band_census, render_fig3, run_fig3
from repro.experiments.ppt4 import (
    CedarCGModel,
    PPT4Study,
    cedar_high_performance_crossover,
    render_ppt4,
    run_ppt4,
)
from repro.experiments.overheads import (
    nest_comparison_us,
    render_overheads,
    run_overheads,
)
from repro.experiments.characterization import (
    Characterization,
    render_characterization,
    run_characterization,
)
from repro.experiments.permutations import (
    PermutationResult,
    render_permutations,
    run_permutation_study,
)
from repro.experiments.multiprogramming import (
    MultiprogrammingResult,
    run_multiprogramming_study,
)
from repro.experiments.scaling import ScalingCurve, render_scaling, run_scaling_study
from repro.experiments.soak import SoakResult, render_soak, run_soak

__all__ = [
    "KernelMeasurement",
    "run_kernel_measurement",
    "Table1Row",
    "render_table1",
    "run_table1",
    "Table2Row",
    "render_table2",
    "run_table2",
    "Table3Row",
    "render_table3",
    "run_table3",
    "Table4Row",
    "render_table4",
    "run_table4",
    "Table5Row",
    "render_table5",
    "run_table5",
    "Table6Result",
    "render_table6",
    "run_table6",
    "render_fig1",
    "topology_summary",
    "ScatterPoint",
    "band_census",
    "render_fig3",
    "run_fig3",
    "CedarCGModel",
    "PPT4Study",
    "cedar_high_performance_crossover",
    "render_ppt4",
    "run_ppt4",
    "nest_comparison_us",
    "render_overheads",
    "run_overheads",
    "Characterization",
    "render_characterization",
    "run_characterization",
    "PermutationResult",
    "render_permutations",
    "run_permutation_study",
    "MultiprogrammingResult",
    "run_multiprogramming_study",
    "ScalingCurve",
    "render_scaling",
    "run_scaling_study",
    "SoakResult",
    "render_soak",
    "run_soak",
]
