"""Cycle-level kernel measurements on the simulated machine.

The paper measures steady-state rates of long-running kernels; we
simulate a representative number of strips per CE and report rates from
the simulated slice (the kernels are perfectly periodic, so steady-state
rate extrapolates to any problem size).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.kernels.programs import KERNELS, kernel_program
from repro.util.units import cycles_to_seconds, mflops

#: default strips per CE: enough periods to wash out warm-up transients.
DEFAULT_STRIPS = 24


@dataclass(frozen=True)
class KernelMeasurement:
    """One kernel run: timing, Table 2 probe metrics, and rates."""

    kernel: str
    n_ces: int
    prefetch: bool
    strips: int
    cycles: float
    seconds: float
    mflops: float
    #: first-word latency in cycles (None for no-prefetch runs).
    latency: Optional[float]
    #: interarrival time in cycles (None for no-prefetch runs).
    interarrival: Optional[float]

    @property
    def cycles_per_word(self) -> float:
        shape = KERNELS[self.kernel]
        return self.cycles / (shape.loaded_words * self.strips)


@lru_cache(maxsize=None)
def _run_cached(
    kernel: str, n_ces: int, prefetch: bool, strips: int, cycle_ns: float
) -> KernelMeasurement:
    config = CedarConfig()
    if cycle_ns != config.ce.cycle_ns:
        from dataclasses import replace

        config = replace(config, ce=replace(config.ce, cycle_ns=cycle_ns))
    return _run(config, kernel, n_ces, prefetch, strips)


def _run(
    config: CedarConfig, kernel: str, n_ces: int, prefetch: bool, strips: int
) -> KernelMeasurement:
    shape = KERNELS[kernel]
    machine = CedarMachine(config, monitor_port=0)
    if n_ces > config.total_ces:
        raise ValueError(f"machine has only {config.total_ces} CEs")
    programs = {
        port: kernel_program(shape, port, strips, prefetch=prefetch)
        for port in range(n_ces)
    }
    cycles = machine.run_programs(programs)
    seconds = cycles_to_seconds(cycles, config.ce.cycle_ns)
    total_flops = shape.flops * strips * n_ces
    rate = mflops(total_flops, seconds) if total_flops else 0.0
    latency = interarrival = None
    if prefetch and machine.probe is not None:
        summary = machine.probe.summary()
        if summary.blocks:  # an empty summary has no meaningful timings
            latency = summary.first_word_latency
            interarrival = summary.interarrival
    return KernelMeasurement(
        kernel=kernel,
        n_ces=n_ces,
        prefetch=prefetch,
        strips=strips,
        cycles=cycles,
        seconds=seconds,
        mflops=rate,
        latency=latency,
        interarrival=interarrival,
    )


def run_kernel_measurement(
    kernel: str,
    n_ces: int,
    prefetch: bool = True,
    strips: int = DEFAULT_STRIPS,
    config: Optional[CedarConfig] = None,
) -> KernelMeasurement:
    """Run ``kernel`` on ``n_ces`` CEs (cluster-major) and measure it.

    With the default configuration results are memoized process-wide.
    """
    if kernel not in KERNELS:
        raise KeyError(f"unknown kernel {kernel!r}; have {sorted(KERNELS)}")
    if config is None:
        return _run_cached(kernel, n_ces, prefetch, strips, CedarConfig().ce.cycle_ns)
    return _run(config, kernel, n_ces, prefetch, strips)


def prefetch_speedup(kernel: str, n_ces: int, strips: int = DEFAULT_STRIPS) -> float:
    """Table 2's "Prefetch Speedup": no-prefetch time over prefetch time
    for the same work."""
    with_pf = run_kernel_measurement(kernel, n_ces, prefetch=True, strips=strips)
    without = run_kernel_measurement(kernel, n_ces, prefetch=False, strips=strips)
    return without.cycles / with_pf.cycles
