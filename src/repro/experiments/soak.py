"""Soak study: streaming observability under an open-loop request flood.

The buffered span collector keeps every stitched request until read
time, so the tracing footprint of a run grows linearly with the number
of traced requests — a week-long soak either hits the request cap
(silent truncation, see ``LatencyAnalysis.dropped``) or runs the host
out of memory.  This experiment is the workload that motivates the
streaming path: an **open-loop arrival generator** drives the machine
directly with a seeded Poisson-ish request process (arrivals do not
wait for completions, so queueing pressure is honest), every request is
traced, and with ``stream=True`` the per-request state is folded into
:class:`~repro.monitor.streamstore.StreamingSpanStore` sketches the
moment each request completes.

At the default one million requests the buffered collector would retain
one million spans; the streaming store's resident traced state stays at
a few thousand *items* (sketch buckets + exemplars + in-flight) —
``benchmarks/memory_gate.py`` asserts the peak is flat in request
count.  ``stream=False`` exists for small cross-checks (the agreement
harness compares sketch quantiles against buffered exact ones) and
keeps the cap-drop accounting visible at soak scale.

The generator injects at the same seam the CEs use —
``forward_network.inject`` after a ``can_inject`` check, ``req.birth``
emitted on the bus, replies handled by the reverse-network sink — so a
soak request crosses exactly the resources a demand load or store
crosses.  The whole run sits under an engine
:class:`~repro.core.engine.Watchdog` (event budget scaled to the
request count, progress keyed on issue/completion counters), so a
livelocked flood aborts with a diagnostic instead of hanging.

Determinism: arrivals, address choices, and the read/write mix are all
drawn from per-port ``random.Random`` children of ``seed``; the same
arguments reproduce the same table bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.config import CedarConfig
from repro.core.engine import SimulationError, Watchdog
from repro.core.machine import CedarMachine
from repro.network.packet import Packet, PacketKind
from repro.util.tables import Table

#: watchdog event budget per injected request (a healthy request costs
#: well under this many engine events end to end), plus a fixed floor so
#: tiny fast-mode runs are not budget-bound.
EVENTS_PER_REQUEST = 200
EVENT_BUDGET_FLOOR = 2_000_000

#: address footprint the generator strides over (module conflicts come
#: from the low bits; the exact span is immaterial).
ADDRESS_FOOTPRINT = 1 << 20


@dataclass(frozen=True)
class SoakResult:
    """The outcome of one soak flood."""

    mode: str  #: ``"streaming"`` or ``"buffered"``
    requests: int  #: arrivals injected
    completed: int  #: requests observed complete (reads + writes)
    traced: int  #: phased complete spans folded into the analysis
    incomplete: int  #: spans still open (or evicted) at sim end
    dropped: int  #: births dropped at the collector cap (buffered only)
    evicted: int  #: in-flight spans evicted at the cap (streaming only)
    deferred: int  #: injection retries while a port queue was full
    cycles: float  #: simulated cycles to drain the flood
    mean: Optional[float]
    p50: Optional[float]
    p90: Optional[float]
    p95: Optional[float]
    p99: Optional[float]
    max: Optional[float]
    footprint_items: Optional[int]  #: resident traced items (streaming)
    reconciliation_worst: float
    aborted: bool


def _watchdog(requests: int) -> Watchdog:
    budget = max(EVENT_BUDGET_FLOOR, requests * EVENTS_PER_REQUEST)
    return Watchdog(max_events=budget)


def run_soak(
    requests: int = 1_000_000,
    seed: int = 7,
    write_fraction: float = 0.25,
    mean_gap: float = 8.0,
    ports: Optional[int] = None,
    stream: bool = True,
    relative_error: float = 0.01,
    exemplars: int = 64,
) -> SoakResult:
    """Flood the machine with ``requests`` open-loop arrivals.

    ``mean_gap`` is the mean inter-arrival gap *per port* in cycles
    (exponential, seeded); ``write_fraction`` of arrivals are stores,
    the rest demand reads.  ``stream`` selects the bounded-memory
    streaming store; ``False`` attaches the buffered collector, whose
    cap-drop accounting then shows up in the result.
    """
    if requests < 1:
        raise ValueError("requests must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    config = CedarConfig()
    machine = CedarMachine(config)
    engine = machine.engine
    fwd = machine.forward_network
    gmem = machine.gmem
    modules = config.global_memory.modules
    n_ports = config.total_ces if ports is None else ports
    if not 1 <= n_ports <= config.total_ces:
        raise ValueError(f"ports must be within [1, {config.total_ces}]")

    if stream:
        from repro.monitor.streamstore import (
            StreamingLatencyAnalysis,
            StreamingSpanStore,
        )

        store = StreamingSpanStore(
            relative_error=relative_error, exemplars=exemplars, seed=seed
        ).attach(machine.bus)
    else:
        from repro.monitor.spans import LatencyAnalysis, SpanCollector

        store = SpanCollector().attach(machine.bus)

    state = {"issued": 0, "completed": 0, "deferred": 0}

    def _complete(packet: Packet) -> None:
        state["completed"] += 1

    def _port_driver(port: int, quota: int) -> None:
        rng = random.Random((seed << 20) ^ (port * 0x9E3779B1))
        birth = machine.bus.signal("req.birth", key=port)
        remaining = [quota]

        def _try_inject(packet: Packet, address: int) -> None:
            if not fwd.can_inject(port):
                state["deferred"] += 1
                engine.schedule_after(1.0, _try_inject, packet, address)
                return
            fwd.inject(packet, tail=gmem.route_tail(address))

        def _arrive() -> None:
            address = rng.randrange(ADDRESS_FOOTPRINT)
            if rng.random() < write_fraction:
                packet = Packet.acquire(
                    PacketKind.WRITE_REQ, port, address % modules, address,
                    words=2,
                )
                packet.meta["on_write_done"] = _complete
                origin = "store"
            else:
                packet = Packet.acquire(
                    PacketKind.READ_REQ, port, address % modules, address
                )
                packet.meta["handler"] = _complete
                origin = "demand"
            if birth.callbacks:
                birth.emit(packet, origin, engine.now)
            state["issued"] += 1
            _try_inject(packet, address)
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule_after(rng.expovariate(1.0 / mean_gap), _arrive)

        # stagger the first arrivals so ports do not fire in lockstep
        engine.schedule_after(rng.expovariate(1.0 / mean_gap), _arrive)

    share, excess = divmod(requests, n_ports)
    for port in range(n_ports):
        quota = share + (1 if port < excess else 0)
        if quota:
            _port_driver(port, quota)

    watchdog = _watchdog(requests)
    watchdog.progress = lambda: (
        state["issued"],
        state["completed"],
        fwd.total_words_delivered(),
    )
    engine.attach_watchdog(watchdog)
    aborted = False
    try:
        engine.run_until_idle()
    except SimulationError:
        aborted = True
    finally:
        engine.detach_watchdog()
    cycles = engine.now

    if stream:
        analysis = StreamingLatencyAnalysis.from_store(store)
        footprint: Optional[int] = store.tracing_footprint()
        doc_incomplete = (
            sum(1 for s in store._requests.values() if not s.complete)
            + store.evicted
        )
        evicted = store.evicted
    else:
        analysis = LatencyAnalysis.from_collector(store)
        footprint = None
        doc_incomplete = len(store.incomplete_spans())
        evicted = 0
    store.detach()

    row = analysis.end_to_end().get("all") if analysis.requests else None
    return SoakResult(
        mode="streaming" if stream else "buffered",
        requests=state["issued"],
        completed=state["completed"],
        traced=analysis.requests,
        incomplete=doc_incomplete,
        dropped=analysis.dropped,
        evicted=evicted,
        deferred=state["deferred"],
        cycles=cycles,
        mean=row["mean"] if row else None,
        p50=row["p50"] if row else None,
        p90=row["p90"] if row else None,
        p95=row["p95"] if row else None,
        p99=row["p99"] if row else None,
        max=row["max"] if row else None,
        footprint_items=footprint,
        reconciliation_worst=analysis.reconciliation_error(),
        aborted=aborted,
    )


def render_soak(result: SoakResult) -> str:
    table = Table(
        title=f"Soak: {result.requests} open-loop requests "
        f"({result.mode} observability)",
        columns=[
            "metric",
            "value",
        ],
        precision=2,
    )
    rows = [
        ("requests injected", result.requests),
        ("requests completed", result.completed),
        ("spans traced (phased)", result.traced),
        ("incomplete at sim end", result.incomplete),
        ("dropped at cap", result.dropped),
        ("evicted in-flight", result.evicted),
        ("injection retries", result.deferred),
        ("simulated cycles", result.cycles),
        ("latency mean (cyc)", result.mean),
        ("latency p50 (cyc)", result.p50),
        ("latency p90 (cyc)", result.p90),
        ("latency p95 (cyc)", result.p95),
        ("latency p99 (cyc)", result.p99),
        ("latency max (cyc)", result.max),
    ]
    if result.footprint_items is not None:
        rows.append(("resident traced items", result.footprint_items))
    rows.append(("status", "[ABORTED]" if result.aborted else "ok"))
    for metric, value in rows:
        table.add_row([metric, value])
    lines = [table.render()]
    if result.mode == "streaming":
        lines.append(
            "Traced state is folded into quantile sketches on completion: "
            "resident items stay flat no matter how many requests flow "
            f"(phase sums reconcile to within "
            f"{result.reconciliation_worst:.3g} cycles)."
        )
    else:
        lines.append(
            "Buffered collection retains every span; past the request cap "
            "the analysis describes a truncated population (see 'dropped')."
        )
    return "\n".join(lines)
