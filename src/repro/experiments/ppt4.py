"""PPT4 (Section 4.4): scalability of CG on Cedar vs banded matvec on
the CM-5.

Cedar side: "The performance of a conjugate gradient (CG) iterative
linear system solver was measured on Cedar while varying the number of
processors from 2 to 32.  This computation involves 5-diagonal
matrix-vector products as well as vector and reduction operations of
size N, 1K <= N <= 172K.  Cedar exhibits scalable high performance for
matrices larger than something between 10K and 16K ... scalable
intermediate performance for smaller matrices. ... The 32-processor
Cedar delivers between 34 and 48 MFLOPS as the CG problem size ranges
from 10K to 172K."

The Cedar CG model is throughput-based and anchored to the simulator
calibration: the kernel is global-memory bound at ~21.5 words moved
per matrix point per iteration against a sustained machine bandwidth
of min(0.53 x P, 10.7) words/cycle, plus six parallel-loop scheduling
overheads per iteration (matvec, two reductions, three AXPYs).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.machines.cm5 import CM5Model
from repro.metrics.bands import Band, band_for_speedup
from repro.metrics.ppt import PPT4Result, ppt4_scalability
from repro.util.tables import Table
from repro.util.units import CYCLE_NS

#: CG words moved per matrix point per iteration: 5-diagonal matvec
#: (5 loads + a 2-word store) + two dot products (1 load each) + three
#: AXPYs (2 loads + a 2-word store each).
CG_WORDS_PER_POINT = 21.5

#: flops per point per CG iteration (matvec 9, dots 4, axpys 6).
CG_FLOPS_PER_POINT = 19.0

#: per-CE sustained global stream rate, words/cycle (Table 1/2 calib).
PER_CE_WORDS_PER_CYCLE = 0.53

#: machine-wide sustained global bandwidth, words/cycle.
MACHINE_WORDS_PER_CYCLE = 10.7

#: parallel loops per CG iteration and their scheduling cost each (s).
CG_LOOPS_PER_ITERATION = 6
CG_LOOP_OVERHEAD_S = 120e-6

CEDAR_SIZES = (1024, 4096, 10_240, 16_384, 65_536, 176_128)
CEDAR_PROCS = (2, 4, 8, 16, 32)

CM5_SIZES = (16_384, 65_536, 262_144)
CM5_PROCS = (32, 256, 512)
CM5_BANDWIDTHS = (3, 11)


class CedarCGModel:
    """Throughput model of the Section 4.4 CG study."""

    def iteration_seconds(self, n: int, processors: int) -> float:
        if processors < 1:
            raise ValueError("need at least one processor")
        bandwidth = min(processors * PER_CE_WORDS_PER_CYCLE, MACHINE_WORDS_PER_CYCLE)
        transfer_cycles = n * CG_WORDS_PER_POINT / bandwidth
        seconds = transfer_cycles * CYCLE_NS * 1e-9
        if processors > 1:
            seconds += CG_LOOPS_PER_ITERATION * CG_LOOP_OVERHEAD_S
        return seconds

    def mflops(self, n: int, processors: int) -> float:
        return (
            n * CG_FLOPS_PER_POINT / self.iteration_seconds(n, processors) / 1e6
        )

    def speedup(self, n: int, processors: int) -> float:
        return self.iteration_seconds(n, 1) / self.iteration_seconds(n, processors)


@dataclass(frozen=True)
class PPT4Study:
    cedar: PPT4Result
    cedar_mflops_32: Dict[int, float]
    cm5: Dict[int, PPT4Result]  # by bandwidth
    cm5_mflops_32: Dict[Tuple[int, int], float]  # (bandwidth, n) -> rate


@lru_cache(maxsize=1)
def run_ppt4() -> PPT4Study:
    cg = CedarCGModel()
    speedups = {
        (p, n): cg.speedup(n, p) for p in CEDAR_PROCS for n in CEDAR_SIZES
    }
    rates = {(p, n): cg.mflops(n, p) for p in CEDAR_PROCS for n in CEDAR_SIZES}
    cedar = ppt4_scalability("Cedar CG", speedups, rates)

    cm5_results = {}
    cm5_rates = {}
    for bw in CM5_BANDWIDTHS:
        sp = {}
        mf = {}
        for p in CM5_PROCS:
            model = CM5Model(p)
            for n in CM5_SIZES:
                sp[(p, n)] = model.speedup(n, bw)
                mf[(p, n)] = model.matvec_mflops(n, bw)
                if p == 32:
                    cm5_rates[(bw, n)] = mf[(p, n)]
        cm5_results[bw] = ppt4_scalability(f"CM-5 banded matvec BW={bw}", sp, mf)

    return PPT4Study(
        cedar=cedar,
        cedar_mflops_32={n: cg.mflops(n, 32) for n in CEDAR_SIZES},
        cm5=cm5_results,
        cm5_mflops_32=cm5_rates,
    )


def render_ppt4(study: PPT4Study) -> str:
    lines: List[str] = []
    table = Table(
        title="PPT4: Cedar CG scalability (band per P x N point)",
        columns=["P \\ N"] + [str(n) for n in CEDAR_SIZES],
    )
    for p in CEDAR_PROCS:
        table.add_row(
            [p] + [study.cedar.grid[(p, n)].value[:4] for n in CEDAR_SIZES]
        )
    lines.append(table.render())

    rate_table = Table(
        title="Cedar CG MFLOPS at 32 CEs (paper: 34..48 over 10K..172K)",
        columns=["N"] + [str(n) for n in CEDAR_SIZES],
    )
    rate_table.add_row(
        ["MFLOPS"] + [round(study.cedar_mflops_32[n], 1) for n in CEDAR_SIZES]
    )
    lines.append(rate_table.render())

    for bw, result in study.cm5.items():
        t = Table(
            title=f"CM-5 banded matvec BW={bw} (band per P x N point)",
            columns=["P \\ N"] + [str(n) for n in CM5_SIZES],
        )
        for p in CM5_PROCS:
            t.add_row([p] + [result.grid[(p, n)].value[:4] for n in CM5_SIZES])
        lines.append(t.render())
    lines.append(
        "CM-5 MFLOPS at 32 procs: "
        + ", ".join(
            f"BW={bw} N={n}: {rate:.1f}"
            for (bw, n), rate in sorted(study.cm5_mflops_32.items())
        )
    )
    lines.append("[paper] BW=3: 28..32 MFLOPS, BW=11: 58..67 MFLOPS over 16K..256K")

    from repro.util.ascii_chart import line_chart

    cg = CedarCGModel()
    series = {
        "8 CEs": [(n, cg.mflops(n, 8)) for n in CEDAR_SIZES],
        "16 CEs": [(n, cg.mflops(n, 16)) for n in CEDAR_SIZES],
        "32 CEs": [(n, cg.mflops(n, 32)) for n in CEDAR_SIZES],
    }
    lines.append(
        line_chart(
            series,
            title="Cedar CG rate vs problem size",
            x_label="N (log scale)",
            y_label="MFLOPS",
            log_x=True,
        )
    )
    return "\n\n".join(lines)


def cedar_high_performance_crossover() -> int:
    """Smallest N (in the scan grid) where 32-CE CG reaches the high
    band — the paper locates it "between 10K and 16K"."""
    cg = CedarCGModel()
    for n in range(1024, 262_144, 512):
        if band_for_speedup(cg.speedup(n, 32), 32) is Band.HIGH:
            return n
    raise RuntimeError("no high-band crossover found")
