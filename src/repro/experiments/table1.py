"""Table 1: MFLOPS for the rank-64 update on Cedar.

Three versions of ``A += B @ C`` (n=1K, rank 64) with all matrices in
global memory, differing only in how data reaches the CEs:

* **GM/no-pref** — plain vector accesses to global memory, no
  prefetching: performance "determined by the 13 cycle latency of the
  global memory and the two outstanding requests allowed per CE";
* **GM/pref** — aggressive 256-word prefetch overlapped with
  computation;
* **GM/cache** — "transfers a submatrix to a cached work array in each
  cluster and all vector accesses are made to the work array".

All versions chain two operations per memory request.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Generator, List, Tuple

from repro.cluster.ce import (
    BlockTransfer,
    ClusterVectorOp,
    Compute,
    GlobalStore,
)
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.experiments.kernels_sim import run_kernel_measurement
from repro.kernels.programs import SCALAR_OVERHEAD, STRIP, VSTART
from repro.util.tables import Table
from repro.util.units import cycles_to_seconds, mflops

CLUSTER_COUNTS = (1, 2, 3, 4)

#: paper values: version -> MFLOPS on 1..4 clusters.
PAPER_TABLE1: Dict[str, Tuple[float, ...]] = {
    "GM/no-pref": (14.5, 29.0, 43.0, 55.0),
    "GM/pref": (50.0, 84.0, 96.0, 104.0),
    "GM/cache": (52.0, 104.0, 152.0, 208.0),
}

#: rank of the update; strips of the accumulator column are updated by
#: this many 32-word vector operations each.
RANK = 64

#: flops per accumulator strip: RANK chained multiply-adds on 32 words.
FLOPS_PER_A_STRIP = 2.0 * RANK * STRIP


@dataclass(frozen=True)
class Table1Row:
    version: str
    mflops: Tuple[float, ...]  # one entry per cluster count


def _cache_version_program(port: int, a_strips: int) -> Generator:
    """GM/cache: per accumulator strip, move the needed submatrix slice
    into the cluster work array (amortized: the B block is shared by
    the whole cluster), then run RANK cached vector multiply-adds, then
    push the result back to global memory."""
    for strip in range(a_strips):
        base = port * (1 << 16) + strip * 2048
        yield Compute(SCALAR_OVERHEAD)
        # amortized global->cluster traffic per strip: the A strip (32
        # words in) plus this strip's share of the shared B/C block.
        yield BlockTransfer(words=40, address=base)
        for _ in range(RANK):
            yield Compute(SCALAR_OVERHEAD)
            yield ClusterVectorOp(
                words=STRIP, cycles_per_word=1.0, startup_cycles=VSTART
            )
        yield GlobalStore(length=STRIP, stride=1, address=base)


@lru_cache(maxsize=None)
def _cache_version_mflops(clusters: int, a_strips: int) -> float:
    config = CedarConfig()
    machine = CedarMachine(config)
    n_ces = clusters * config.ces_per_cluster
    programs = {
        port: _cache_version_program(port, a_strips) for port in range(n_ces)
    }
    cycles = machine.run_programs(programs)
    seconds = cycles_to_seconds(cycles, config.ce.cycle_ns)
    return mflops(FLOPS_PER_A_STRIP * a_strips * n_ces, seconds)


def run_table1(a_strips: int = 3) -> List[Table1Row]:
    """Regenerate Table 1.  ``a_strips`` accumulator strips per CE are
    simulated (the kernel is periodic; rates are steady-state).

    The GM/no-pref and GM/pref versions reuse the RK kernel trace with
    ``a_strips * RANK/8`` 256-word blocks (one block covers 8 of the 64
    rank updates of a strip).
    """
    blocks = max(2, a_strips * RANK * STRIP // 256)
    rows = []
    for version in ("GM/no-pref", "GM/pref", "GM/cache"):
        rates = []
        for clusters in CLUSTER_COUNTS:
            n_ces = clusters * 8
            if version == "GM/cache":
                rates.append(_cache_version_mflops(clusters, a_strips))
            else:
                m = run_kernel_measurement(
                    "RK", n_ces, prefetch=(version == "GM/pref"), strips=blocks
                )
                rates.append(m.mflops)
        rows.append(Table1Row(version=version, mflops=tuple(rates)))
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    table = Table(
        title="Table 1: MFLOPS for rank-64 update on Cedar (measured vs [paper])",
        columns=["version", "1 cl.", "2 cl.", "3 cl.", "4 cl."],
        precision=1,
    )
    for row in rows:
        table.add_row([row.version, *row.mflops])
        table.add_row([f"[{row.version}]", *PAPER_TABLE1[row.version]])
    return table.render()
