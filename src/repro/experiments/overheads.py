"""Section 3.2 runtime-overhead microbenchmarks.

Reproduces the published scheduling costs — XDOALL "typical loop
startup latency of 90 us and fetching the next iteration takes about
30 us", CDOALL "can typically start in a few microseconds" — by timing
empty and tiny loops through the Cedar Fortran DSL, and measures the
SDOALL/CDOALL vs XDOALL tradeoff ("The XDOALL has more scheduling
flexibility but also higher overhead").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.fortran import CedarFortran
from repro.util.tables import Table


@dataclass(frozen=True)
class OverheadRow:
    construct: str
    startup_us: float
    per_iteration_us: float


def _loop_cost(run, iterations: int) -> float:
    cf = CedarFortran()
    with cf.scope() as t:
        run(cf, iterations)
    return t["us"]


@lru_cache(maxsize=1)
def run_overheads() -> Tuple[OverheadRow, ...]:
    def xdoall(cf, n):
        cf.xdoall(n, lambda i: None)

    def sdoall(cf, n):
        cf.sdoall(n, lambda ctx: None)

    def cdoall(cf, n):
        cf.cdoall(n, lambda i: None)

    rows = []
    for name, runner, workers in (
        ("XDOALL", xdoall, 32),
        ("SDOALL", sdoall, 4),
        ("CDOALL", cdoall, 8),
    ):
        startup = _loop_cost(runner, 0)
        # marginal per-iteration cost measured across one extra wave
        one_wave = _loop_cost(runner, workers)
        two_waves = _loop_cost(runner, 2 * workers)
        rows.append(
            OverheadRow(
                construct=name,
                startup_us=startup,
                per_iteration_us=two_waves - one_wave,
            )
        )
    return tuple(rows)


def render_overheads(rows: Tuple[OverheadRow, ...]) -> str:
    table = Table(
        title="Runtime library overheads (paper: XDOALL 90us startup / "
        "30us fetch; CDOALL starts in a few microseconds)",
        columns=["construct", "startup (us)", "per-iteration fetch (us)"],
        precision=1,
    )
    for row in rows:
        table.add_row([row.construct, row.startup_us, row.per_iteration_us])
    return table.render()


def nest_comparison_us(iterations: int, work_us: float) -> Tuple[float, float]:
    """(XDOALL time, SDOALL/CDOALL-nest time) for the same loop.

    "An SDOALL/CDOALL nest has a lower scheduling cost due to the use
    of the concurrency control bus" — the gap widens with the number of
    iteration waves, since the nest pays the cheap CDOALL fetch where
    the XDOALL pays a 30 us global-memory fetch."""
    x = CedarFortran()
    x.xdoall(iterations, lambda i: x.compute_us(work_us))

    s = CedarFortran()
    per_cluster = -(-iterations // 4)

    def cluster_body(ctx):
        s.cdoall(per_cluster, lambda i: s.compute_us(work_us))

    s.sdoall(4, cluster_body)
    return x.clock_us, s.clock_us
