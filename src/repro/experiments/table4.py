"""Table 4: Execution times for manually altered Perfect codes.

"Execution times (secs.) for manually altered Perfect Codes and
improvement over automatable w/ prefetch and w/o Cedar synchronization"
— ARC2D 68 (2.1), BDNA 70 (1.7), TRFD 7.5 (2.8), QCD 21 (11.4) — plus
the Section 4.2 narrative results (FL052 33s, DYFESM 31s, SPICE ~26s).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.perfect.handopt import HANDOPT_MODELS
from repro.util.tables import Table

TABLE4_CODES = ("ARC2D", "BDNA", "TRFD", "QCD")
NARRATIVE_CODES = ("FLO52", "DYFESM", "SPICE")


@dataclass(frozen=True)
class Table4Row:
    code: str
    seconds: float
    improvement: float
    paper_seconds: float
    paper_improvement: float  # 0 when the paper gives only a time
    description: str


@lru_cache(maxsize=1)
def run_table4() -> Tuple[Table4Row, ...]:
    rows = []
    for name in TABLE4_CODES + NARRATIVE_CODES:
        opt = HANDOPT_MODELS[name]
        result = opt.apply()
        rows.append(
            Table4Row(
                code=name,
                seconds=result.seconds,
                improvement=result.improvement,
                paper_seconds=opt.paper_time,
                paper_improvement=opt.paper_improvement or 0.0,
                description=opt.description,
            )
        )
    return tuple(rows)


def render_table4(rows: Tuple[Table4Row, ...]) -> str:
    table = Table(
        title="Table 4: manually altered Perfect codes (measured vs [paper];"
        " rows below the bar are Section 4.2 narrative results)",
        columns=["code", "time (s)", "improvement", "[time]", "[improvement]"],
        precision=1,
    )
    for row in rows:
        table.add_row(
            [
                row.code,
                row.seconds,
                row.improvement,
                row.paper_seconds,
                row.paper_improvement or None,
            ]
        )
    return table.render()
