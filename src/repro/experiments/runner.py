"""The experiment registry, result cache, and parallel driver.

Every artifact the reproduction can produce — the topology figures, the
six tables, the studies and ablations — is registered here as a named
:class:`Experiment`.  ``python -m repro run-all`` drives the registry:

* independent experiments fan out across worker processes
  (``--jobs N``);
* results are memoized on disk (``--cached``) keyed by a stable hash
  of (experiment name, arguments, machine configuration, cache
  version), so re-running with an unchanged configuration replays from
  the cache instead of re-simulating.

The cache key uses :meth:`~repro.core.config.CedarConfig.stable_hash`
— a cross-process content hash — **not** Python's salted ``hash()``,
so cache entries are valid across interpreter sessions.

Hardening
---------

``run_all`` is built for partial results: each experiment runs in its
own worker process (plain ``multiprocessing.Process``, not a shared
pool, so one worker's death cannot poison the others), an optional
per-experiment wall-clock ``timeout_s`` terminates runaways, failures
retry up to ``retries`` times with exponential backoff, and whatever
happens every selected experiment comes back as an
:class:`ExperimentResult` — failed ones carry ``error`` instead of
output.

Cache entries live in the sharded, crash-safe
:class:`~repro.store.ResultStore` (fsync-before-rename commits, unique
per-writer temp files, advisory per-entry locks), so any number of
``run-all --jobs N`` processes can share one cache directory.  Every
read re-verifies the entry's payload checksum; corrupt or truncated
entries are quarantined with a warning and recomputed, never served
and never a crash.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.config import CedarConfig, DEFAULT_CONFIG

#: bump when renderer output formats change, invalidating old entries.
#: v6: entries live in the sharded crash-safe result store
#: (:mod:`repro.store`); v5 flat entries are re-sharded on first touch.
CACHE_VERSION = 6

#: the last flat-layout cache version, still transparently readable.
LEGACY_CACHE_VERSION = 5

#: default on-disk cache location (repo-/cwd-relative).
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# experiment execution functions (module-level: picklable for worker
# processes; imports deferred so the registry itself imports instantly)


def _exp_topology() -> str:
    from repro.experiments.fig1 import render_fig1

    return render_fig1()


def _exp_table1(a_strips: int = 2) -> str:
    from repro.experiments.table1 import render_table1, run_table1

    return render_table1(run_table1(a_strips=a_strips))


def _exp_table2(strips: int = 10) -> str:
    from repro.experiments.table2 import render_table2, run_table2

    return render_table2(run_table2(strips=strips))


def _exp_table3() -> str:
    from repro.experiments.table3 import render_table3, run_table3

    return render_table3(run_table3())


def _exp_table4() -> str:
    from repro.experiments.table4 import render_table4, run_table4

    return render_table4(run_table4())


def _exp_table5() -> str:
    from repro.experiments.table5 import render_table5, run_table5

    return render_table5(run_table5())


def _exp_table6() -> str:
    from repro.experiments.table6 import render_table6, run_table6

    return render_table6(run_table6())


def _exp_fig3() -> str:
    from repro.experiments.fig3 import render_fig3, run_fig3

    return render_fig3(run_fig3())


def _exp_ppt4() -> str:
    from repro.experiments.ppt4 import render_ppt4, run_ppt4

    return render_ppt4(run_ppt4())


def _exp_overheads() -> str:
    from repro.experiments.overheads import render_overheads, run_overheads

    return render_overheads(run_overheads())


def _exp_characterization() -> str:
    from repro.experiments.characterization import (
        render_characterization,
        run_characterization,
    )

    return render_characterization(run_characterization())


def _exp_scaling() -> str:
    from repro.experiments.scaling import render_scaling, run_scaling_study

    return render_scaling(run_scaling_study())


def _exp_permutations(rounds: int = 16) -> str:
    from repro.experiments.permutations import (
        render_permutations,
        run_permutation_study,
    )

    return render_permutations(run_permutation_study(rounds=rounds))


def _exp_multiprogramming() -> str:
    from repro.experiments.multiprogramming import (
        render_multiprogramming,
        run_multiprogramming_study,
    )

    return render_multiprogramming(run_multiprogramming_study())


def _exp_ablation_network(n_ces: int = 32) -> str:
    from repro.experiments.ablations import ablate_shared_network, render_ablation

    return render_ablation(
        "Ablation: one shared network vs Cedar's two",
        ablate_shared_network(n_ces=n_ces),
    )


def _exp_ablation_memory(n_ces: int = 32) -> str:
    from repro.experiments.ablations import ablate_memory_recovery, render_ablation

    return render_ablation(
        "Ablation: memory-module recovery time",
        ablate_memory_recovery(n_ces=n_ces),
    )


def _exp_degradation(
    seed: int = 2024, strips: int = 6, rounds: int = 24
) -> str:
    from repro.experiments.degradation import render_degradation, run_degradation

    return render_degradation(
        run_degradation(seed=seed, strips=strips, rounds=rounds)
    )


def _exp_soak(
    requests: int = 1_000_000, seed: int = 7, stream: bool = True
) -> str:
    from repro.experiments.soak import render_soak, run_soak

    return render_soak(run_soak(requests=requests, seed=seed, stream=stream))


# ---------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class Experiment:
    """One registered artifact generator."""

    name: str
    title: str
    runner: Callable[..., str]
    kwargs: Dict[str, object] = field(default_factory=dict)
    #: overrides applied in ``--fast`` (smoke-size) mode.
    fast_kwargs: Optional[Dict[str, object]] = None

    def arguments(self, fast: bool = False) -> Dict[str, object]:
        if fast and self.fast_kwargs is not None:
            return {**self.kwargs, **self.fast_kwargs}
        return dict(self.kwargs)


REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.name in REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} already registered")
    REGISTRY[experiment.name] = experiment
    return experiment


def experiment(name: str) -> Experiment:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment {name!r}; have {', '.join(REGISTRY)}"
        ) from None


def experiment_names() -> List[str]:
    return list(REGISTRY)


register(Experiment("topology", "Figures 1-2: machine organization", _exp_topology))
register(
    Experiment(
        "table1",
        "Table 1: SAXPY memory hierarchy",
        _exp_table1,
        kwargs={"a_strips": 2},
        fast_kwargs={"a_strips": 1},
    )
)
register(
    Experiment(
        "table2",
        "Table 2: prefetch latency/interarrival",
        _exp_table2,
        kwargs={"strips": 10},
        fast_kwargs={"strips": 6},
    )
)
register(Experiment("table3", "Table 3: loop-scheduling costs", _exp_table3))
register(Experiment("table4", "Table 4: application optimizations", _exp_table4))
register(Experiment("table5", "Table 5: application performance", _exp_table5))
register(Experiment("table6", "Table 6: perfect-club summary", _exp_table6))
register(Experiment("fig3", "Figure 3: efficiency scatter", _exp_fig3))
register(Experiment("ppt4", "Section 4.4: scalability study", _exp_ppt4))
register(Experiment("overheads", "Section 3.2: runtime costs", _exp_overheads))
register(
    Experiment(
        "characterization", "Section 4.1: memory anchors", _exp_characterization
    )
)
register(Experiment("scaling", "Perfect-code scaling curves", _exp_scaling))
register(
    Experiment(
        "permutations",
        "Omega-network permutation study",
        _exp_permutations,
        kwargs={"rounds": 16},
        fast_kwargs={"rounds": 4},
    )
)
register(
    Experiment(
        "multiprogramming",
        "Single-user-mode justification",
        _exp_multiprogramming,
    )
)
register(
    Experiment(
        "ablation-network",
        "Ablation: shared vs dual networks",
        _exp_ablation_network,
        kwargs={"n_ces": 32},
        fast_kwargs={"n_ces": 8},
    )
)
register(
    Experiment(
        "ablation-memory",
        "Ablation: module recovery time",
        _exp_ablation_memory,
        kwargs={"n_ces": 32},
        fast_kwargs={"n_ces": 8},
    )
)
register(
    Experiment(
        "degradation",
        "Robustness: performance vs fault rate",
        _exp_degradation,
        kwargs={"seed": 2024, "strips": 6, "rounds": 24},
        fast_kwargs={"strips": 3, "rounds": 8},
    )
)
register(
    Experiment(
        "soak",
        "Soak: open-loop flood under streaming observability",
        _exp_soak,
        kwargs={"requests": 1_000_000, "seed": 7, "stream": True},
        fast_kwargs={"requests": 5_000},
    )
)


# ---------------------------------------------------------------------------
# cache


def cache_key(
    name: str,
    kwargs: Dict[str, object],
    config: CedarConfig = DEFAULT_CONFIG,
    stream: bool = False,
    timeline: Optional[float] = None,
    version: int = CACHE_VERSION,
) -> str:
    """Stable cache key: experiment identity + arguments + machine config.

    ``version`` defaults to the current :data:`CACHE_VERSION`; pass
    :data:`LEGACY_CACHE_VERSION` to address the entry a previous
    release would have written (how flat pre-v6 entries are found and
    re-sharded on first touch).
    """
    import hashlib

    material = {
        "version": version,
        "experiment": name,
        "kwargs": kwargs,
        "config": config.stable_hash(),
        # streaming report collection changes the stored report's
        # shape, so streamed and buffered entries must not collide
        "stream": stream,
    }
    # timeline collection adds per-machine sections to the stored
    # report; the key only materializes when sampling is on, so every
    # key written before timelines existed stays addressable bit for
    # bit (no cache-version bump, no stampede of recomputes).
    if timeline:
        material["timeline"] = timeline
    payload = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _store(cache_dir: Path):
    from repro.store.core import ResultStore

    return ResultStore(Path(cache_dir))


def _legacy_flat_path(cache_dir: Path, name: str, legacy_key: str) -> Path:
    """Where a pre-v6 flat-layout release filed this entry."""
    return Path(cache_dir) / f"{name}.{legacy_key[:16]}.json"


@dataclass(frozen=True)
class CacheHit:
    """A served cache entry plus where/how it was served — what the
    ``cache_hit`` telemetry event reports."""

    entry: Dict
    #: shard directory (key prefix) the entry was served from.
    shard: str
    #: the entry's payload checksum was present and matched on read.
    verified: bool
    #: the entry was a legacy flat file re-sharded on this touch.
    migrated: bool = False


def _entry_shape_ok(entry: Dict, key: str, where: object) -> bool:
    """The runner-level shape checks (the store already guarantees the
    bytes are whole; this guards against a sound document holding the
    wrong kind of value)."""
    if not isinstance(entry, dict):
        warnings.warn(f"corrupt cache entry {where}: not an object; recomputing")
        return False
    if entry.get("key") != key:
        return False  # stale entry for another config: ordinary miss
    output = entry.get("output")
    if output is not None and not isinstance(output, str):
        warnings.warn(f"corrupt cache entry {where}: bad output field; recomputing")
        return False
    report = entry.get("report")
    if report is not None and not isinstance(report, dict):
        warnings.warn(f"corrupt cache entry {where}: bad report field; recomputing")
        return False
    return True


def cache_lookup(
    cache_dir: Path,
    name: str,
    key: str,
    legacy_key: Optional[str] = None,
) -> Optional[CacheHit]:
    """Look ``key`` up in the sharded store; ``None`` on any miss.

    Corruption at any layer (torn bytes, checksum mismatch, wrong
    shape) is a warning and a miss — the store quarantines the bad
    entry and the caller recomputes; nothing here ever crashes a run.

    With ``legacy_key`` (the same lookup hashed at
    :data:`LEGACY_CACHE_VERSION`) a miss falls back to entries a
    flat-layout release wrote — either already re-sharded by ``store
    repair`` or still sitting flat in the cache root — and re-homes
    them under ``key`` on this first touch, preserving the cached
    output bit for bit.
    """
    store = _store(cache_dir)
    entry = store.get(key)
    if entry is not None:
        if _entry_shape_ok(entry, key, store.entry_path(key)):
            return CacheHit(entry, shard=key[:2], verified=True)
        return None
    if legacy_key is None:
        return None
    # repair may already have re-sharded the flat file under its v5 key
    entry = store.get(legacy_key)
    flat: Optional[Path] = None
    if entry is None:
        flat = _legacy_flat_path(cache_dir, name, legacy_key)
        try:
            entry = json.loads(flat.read_text())
        except (OSError, ValueError):
            return None
    if not _entry_shape_ok(entry, legacy_key, flat or store.entry_path(legacy_key)):
        return None
    entry = dict(entry)
    entry["key"] = key
    entry["cache_version"] = CACHE_VERSION
    try:
        store.put(key, entry)
        if flat is not None:
            flat.unlink()
    except OSError as exc:
        warnings.warn(f"legacy cache migration failed for {name}: {exc}")
    return CacheHit(entry, shard=key[:2], verified=True, migrated=True)


def cache_load_entry(
    cache_dir: Path,
    name: str,
    key: str,
    legacy_key: Optional[str] = None,
) -> Optional[Dict]:
    """The full cache entry (output plus any stored run report), served
    from the sharded store; see :func:`cache_lookup`."""
    hit = cache_lookup(cache_dir, name, key, legacy_key=legacy_key)
    return hit.entry if hit is not None else None


def cache_load(cache_dir: Path, name: str, key: str) -> Optional[str]:
    entry = cache_load_entry(cache_dir, name, key)
    if entry is None:
        return None
    return entry.get("output")


def cache_store(
    cache_dir: Path,
    name: str,
    key: str,
    output: str,
    elapsed: float,
    report: Optional[Dict] = None,
) -> None:
    """Durably commit one cache entry through the sharded store
    (unique per-writer temp file, fsync-before-rename, advisory entry
    lock, directory fsync — see :class:`repro.store.ResultStore`).

    A cache-write failure (disk full, permissions) is a warning, never
    a failed experiment: the result simply stays uncached.
    """
    entry = {
        "key": key,
        "experiment": name,
        "output": output,
        "elapsed_s": round(elapsed, 3),
        "cache_version": CACHE_VERSION,
    }
    if report is not None:
        entry["report"] = report
    try:
        _store(cache_dir).put(key, entry)
    except OSError as exc:
        warnings.warn(f"cache store failed for {name}: {exc}; result not cached")


# ---------------------------------------------------------------------------
# driver


@dataclass(frozen=True)
class ExperimentResult:
    name: str
    title: str
    output: str
    elapsed_s: float
    cached: bool
    #: RunReport dict when the run collected observability data.
    report: Optional[Dict] = None
    #: one-line failure description ("Type: message", "timeout after Ns",
    #: "worker crashed (exit N)"); None on success.
    error: Optional[str] = None
    #: how many attempts this result took (1 = first try).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def clear_memoized_runs() -> None:
    """Clear every in-process experiment memo — the kernel-simulation
    memo plus each experiment's own ``lru_cache`` — so the next run
    really builds machines.  Instrumentation (span collection, tracing,
    report collection) observes nothing on a memo replay; every caller
    that attaches observers must clear first.  All the caches are pure
    run memos, so clearing only costs recompute time.
    """
    import sys

    for name, module in list(sys.modules.items()):
        if not name.startswith("repro."):
            continue
        for attr in list(vars(module).values()):
            clear = getattr(attr, "cache_clear", None)
            if callable(clear) and getattr(attr, "__module__", None) == name:
                clear()


def _execute(name: str, kwargs: Dict[str, object]) -> str:
    """Worker entry point: run one experiment to its rendered text."""
    return REGISTRY[name].runner(**kwargs)


def _execute_with_report(
    name: str,
    kwargs: Dict[str, object],
    stream: bool = False,
    timeline: Optional[float] = None,
) -> tuple:
    """Worker entry point for instrumented runs.

    Returns ``(output, machine_dicts, elapsed_s)``.  Elapsed time is
    measured here, inside the worker, so a report never charges an
    experiment for time it spent queued behind other work.  Run
    memoization is cleared first so every machine the experiment needs
    is actually built (and therefore monitored) inside the collection
    window — a worker process may have warm memo entries from an
    earlier experiment.  ``stream`` selects bounded-memory streaming
    span collection (sketch-backed latency summaries) instead of the
    buffered collector; ``timeline`` (an interval in simulated cycles)
    adds interval-sampled metric timelines to each machine record.
    """
    from repro.monitor.report import ReportCollector

    clear_memoized_runs()
    start = time.perf_counter()
    with ReportCollector(stream=stream, timeline=timeline) as collector:
        output = REGISTRY[name].runner(**kwargs)
    return output, collector.machine_dicts(), time.perf_counter() - start


def _build_report(
    name: str,
    kwargs: Dict[str, object],
    elapsed: float,
    cached: bool,
    machines: List[Dict],
) -> Dict:
    from repro.monitor.report import RunReport

    return RunReport(
        experiment=name,
        title=REGISTRY[name].title,
        kwargs=dict(kwargs),
        elapsed_s=elapsed,
        cached=cached,
        machines=machines,
    ).to_dict()


def run_experiment(
    name: str,
    fast: bool = False,
    cache_dir: Optional[Path] = None,
    config: CedarConfig = DEFAULT_CONFIG,
    collect_report: bool = False,
    stream: bool = False,
    timeline: Optional[float] = None,
) -> ExperimentResult:
    """Run (or replay from cache) a single registered experiment.

    ``stream`` (with ``collect_report``) collects the per-machine
    latency summary through the bounded-memory streaming store;
    ``timeline`` (an interval in simulated cycles, with
    ``collect_report``) adds interval-sampled metric timelines to each
    machine record.  Both are part of the cache key, so instrumented
    and bare entries never collide.
    """
    exp = experiment(name)
    kwargs = exp.arguments(fast)
    key = cache_key(name, kwargs, config, stream=stream, timeline=timeline)
    if cache_dir is not None:
        entry = cache_load_entry(
            cache_dir,
            name,
            key,
            legacy_key=cache_key(
                name, kwargs, config, stream=stream, timeline=timeline,
                version=LEGACY_CACHE_VERSION,
            ),
        )
        if entry is not None and entry.get("output") is not None:
            report = entry.get("report") if collect_report else None
            if not collect_report or report is not None:
                return ExperimentResult(
                    name, exp.title, entry["output"], 0.0, cached=True, report=report
                )
            # cached output but no stored report: fall through and re-run
    start = time.perf_counter()
    if collect_report:
        output, machines, elapsed = _execute_with_report(
            name, kwargs, stream=stream, timeline=timeline
        )
        report = _build_report(name, kwargs, elapsed, False, machines)
    else:
        output = _execute(name, kwargs)
        elapsed = time.perf_counter() - start
        report = None
    if cache_dir is not None:
        cache_store(cache_dir, name, key, output, elapsed, report=report)
    return ExperimentResult(name, exp.title, output, elapsed, cached=False, report=report)


def _subprocess_main(
    conn,
    name: str,
    kwargs: Dict,
    collect_report: bool,
    stream: bool = False,
    heartbeat_s: Optional[float] = None,
) -> None:
    """Worker-process entry point: run one experiment, ship the outcome
    back over ``conn``.  Every failure becomes an ``("error", reason)``
    message; only a hard crash (segfault, kill) leaves the pipe silent,
    which the manager detects as worker death.

    With ``heartbeat_s`` set a :class:`HeartbeatEmitter` is installed
    first: every engine the experiment builds pulses cumulative
    self-metrics back as ``("hb", payload)`` messages, interleaved
    ahead of the final outcome, at most one per ``heartbeat_s`` wall
    seconds.  A hello beat goes out immediately so the parent can tell
    "worker alive, simulation not started" from a dead pipe."""
    emitter = None
    if heartbeat_s is not None:
        from repro.monitor.telemetry import HeartbeatEmitter

        emitter = HeartbeatEmitter(conn.send, min_interval_s=heartbeat_s)
        emitter.install()
        emitter.beat()
    try:
        if collect_report:
            payload = _execute_with_report(name, kwargs, stream=stream)
        else:
            payload = _execute(name, kwargs)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - isolate *any* worker failure
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        if emitter is not None:
            emitter.uninstall()
        conn.close()


def _mp_context():
    """Fork where available (cheap workers, warm imports); the platform
    default elsewhere — ``_subprocess_main`` and its arguments are
    picklable either way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class _Attempt:
    """One in-flight worker: process + pipe + deadline bookkeeping."""

    name: str
    attempt: int
    process: multiprocessing.Process
    conn: object
    kwargs: Dict
    started: float
    deadline: Optional[float]
    #: heartbeat bookkeeping (telemetry runs only): wall time of the
    #: last beat, wall time of the last beat that showed *progress*
    #: (more events processed than any earlier beat), beat count, and
    #: the last payload — what retry/stall messages report.
    last_beat: Optional[float] = None
    last_progress: Optional[float] = None
    beats: int = 0
    events_seen: int = -1
    progress: Optional[Dict] = None

    def progress_note(self) -> str:
        """Last-known progress, for stall and retry annotations."""
        if self.progress is None:
            return "no heartbeat received"
        return (
            f"last heartbeat: {self.progress.get('events_processed', 0)} "
            f"events, {self.progress.get('sim_cycles', 0.0):.0f} cycles, "
            f"{self.progress.get('events_per_sec', 0.0):g} ev/s"
        )


def _run_isolated(
    misses: List[str],
    jobs: int,
    fast: bool,
    cache_dir: Optional[Path],
    config: CedarConfig,
    collect_reports: bool,
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
    stream: bool = False,
    emit=None,
    heartbeat_s: Optional[float] = None,
) -> Dict[str, ExperimentResult]:
    """Run ``misses`` in per-experiment worker processes.

    Up to ``jobs`` workers run at once; each failure (exception,
    timeout, crash) is retried with exponential backoff until its
    attempts are exhausted, then recorded as a failed result.  One
    worker's fate never affects another's.

    ``emit`` (a ``FleetTelemetry``-style callback taking ``(type,
    name, attempt=..., **extra)``) receives every lifecycle
    transition.  With ``heartbeat_s`` set, workers beat engine
    self-metrics over their pipes and ``timeout_s`` changes meaning:
    instead of a flat wall-clock deadline it becomes a **stall
    budget** — a worker is killed only after ``timeout_s`` seconds
    without a heartbeat showing forward progress, so slow-but-alive
    workers run on while hung ones die fast.
    """
    ctx = _mp_context()
    results: Dict[str, ExperimentResult] = {}
    #: (name, attempt, not_before) — attempts awaiting a worker slot.
    pending: deque = deque((name, 1, 0.0) for name in misses)
    running: Dict[object, _Attempt] = {}

    def _spawn(name: str, attempt: int) -> None:
        kwargs = REGISTRY[name].arguments(fast)
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_subprocess_main,
            args=(send_conn, name, kwargs, collect_reports, stream, heartbeat_s),
        )
        process.start()
        send_conn.close()  # manager keeps only the read end
        now = time.perf_counter()
        running[recv_conn] = _Attempt(
            name=name,
            attempt=attempt,
            process=process,
            conn=recv_conn,
            kwargs=kwargs,
            started=now,
            deadline=(now + timeout_s) if timeout_s is not None else None,
        )
        if emit is not None:
            emit("worker_started", name, attempt=attempt, pid=process.pid)

    def _beat(attempt: _Attempt, payload: Dict) -> None:
        now = time.perf_counter()
        attempt.beats += 1
        attempt.last_beat = now
        events = payload.get("events_processed", 0)
        if events > attempt.events_seen:
            attempt.events_seen = events
            attempt.last_progress = now
        attempt.progress = payload
        if emit is not None:
            emit("heartbeat", attempt.name, attempt=attempt.attempt, **payload)

    def _settle(attempt: _Attempt, error: str) -> None:
        """Record a failed attempt: retry with backoff or final failure."""
        if attempt.attempt <= retries:
            delay = retry_backoff_s * (2 ** (attempt.attempt - 1))
            pending.append(
                (attempt.name, attempt.attempt + 1, time.perf_counter() + delay)
            )
            if emit is not None:
                emit(
                    "retry",
                    attempt.name,
                    attempt=attempt.attempt,
                    error=error,
                    next_attempt=attempt.attempt + 1,
                    backoff_s=delay,
                    last_known=attempt.progress_note(),
                )
            return
        results[attempt.name] = ExperimentResult(
            attempt.name,
            REGISTRY[attempt.name].title,
            "",
            time.perf_counter() - attempt.started,
            cached=False,
            error=error,
            attempts=attempt.attempt,
        )
        if emit is not None:
            emit(
                "failed",
                attempt.name,
                attempt=attempt.attempt,
                error=error,
            )

    def _succeed(attempt: _Attempt, payload) -> None:
        if collect_reports:
            output, machines, elapsed = payload
            report = _build_report(
                attempt.name, attempt.kwargs, elapsed, False, machines
            )
        else:
            output, report = payload, None
            elapsed = time.perf_counter() - attempt.started
        if cache_dir is not None:
            cache_store(
                cache_dir,
                attempt.name,
                cache_key(attempt.name, attempt.kwargs, config, stream=stream),
                output,
                elapsed,
                report=report,
            )
        results[attempt.name] = ExperimentResult(
            attempt.name,
            REGISTRY[attempt.name].title,
            output,
            elapsed,
            cached=False,
            report=report,
            attempts=attempt.attempt,
        )
        if emit is not None:
            emit(
                "completed",
                attempt.name,
                attempt=attempt.attempt,
                elapsed_s=round(elapsed, 3),
                cached=False,
            )

    def _reap(attempt: _Attempt, error: str) -> None:
        process = attempt.process
        if process.is_alive():
            process.terminate()
        process.join()
        attempt.conn.close()
        del running[attempt.conn]
        _settle(attempt, error)

    while pending or running:
        # fill free worker slots with attempts whose backoff has elapsed
        now = time.perf_counter()
        deferred = []
        while pending and len(running) < max(1, jobs):
            name, attempt_no, not_before = pending.popleft()
            if not_before > now:
                deferred.append((name, attempt_no, not_before))
                continue
            _spawn(name, attempt_no)
        pending.extend(deferred)

        if not running:
            # everything pending is backing off: sleep to the earliest
            wake = min(entry[2] for entry in pending)
            time.sleep(max(0.0, wake - time.perf_counter()))
            continue

        for conn in _conn_wait(list(running), timeout=0.05):
            attempt = running[conn]
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                # pipe closed with no message: the worker died hard
                attempt.process.join()
                code = attempt.process.exitcode
                conn.close()
                del running[conn]
                _settle(attempt, f"worker crashed (exit {code})")
                continue
            if status == "hb":
                # heartbeat: bookkeeping only, the worker stays running
                _beat(attempt, payload)
                continue
            attempt.process.join()
            conn.close()
            del running[conn]
            if status == "ok":
                _succeed(attempt, payload)
            else:
                _settle(attempt, payload)

        if timeout_s is not None:
            now = time.perf_counter()
            if heartbeat_s is not None:
                # stall budget: a worker dies only after timeout_s with
                # no heartbeat *progress* (silence, or beats whose event
                # count has frozen) — slow-but-beating workers live on.
                for attempt in [
                    a
                    for a in running.values()
                    if now - (a.last_progress or a.started) > timeout_s
                ]:
                    _reap(
                        attempt,
                        f"stalled: no heartbeat progress for {timeout_s:g}s "
                        f"({attempt.progress_note()})",
                    )
            else:
                # telemetry off: the original flat wall-clock deadline
                for attempt in [
                    a
                    for a in running.values()
                    if a.deadline is not None and now > a.deadline
                ]:
                    _reap(attempt, f"timeout after {timeout_s:g}s")

    return results


def _run_inline(
    misses: List[str],
    fast: bool,
    cache_dir: Optional[Path],
    config: CedarConfig,
    collect_reports: bool,
    retries: int,
    retry_backoff_s: float,
    stream: bool = False,
    emit=None,
) -> Dict[str, ExperimentResult]:
    """Single-process path (no timeout enforcement or heartbeats, but
    the same failure isolation, retry policy, and lifecycle telemetry
    as the worker path)."""
    results: Dict[str, ExperimentResult] = {}
    for name in misses:
        for attempt in range(1, retries + 2):
            start = time.perf_counter()
            if emit is not None:
                emit("worker_started", name, attempt=attempt, inline=True)
            try:
                result = run_experiment(
                    name,
                    fast,
                    cache_dir,
                    config,
                    collect_report=collect_reports,
                    stream=stream,
                )
                results[name] = ExperimentResult(
                    result.name,
                    result.title,
                    result.output,
                    result.elapsed_s,
                    result.cached,
                    report=result.report,
                    attempts=attempt,
                )
                if emit is not None:
                    emit(
                        "completed",
                        name,
                        attempt=attempt,
                        elapsed_s=round(result.elapsed_s, 3),
                        cached=result.cached,
                    )
                break
            except Exception as exc:  # noqa: BLE001 - isolate each artifact
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= retries:
                    delay = retry_backoff_s * (2 ** (attempt - 1))
                    if emit is not None:
                        emit(
                            "retry",
                            name,
                            attempt=attempt,
                            error=error,
                            next_attempt=attempt + 1,
                            backoff_s=delay,
                        )
                    time.sleep(delay)
                    continue
                results[name] = ExperimentResult(
                    name,
                    REGISTRY[name].title,
                    "",
                    time.perf_counter() - start,
                    cached=False,
                    error=error,
                    attempts=attempt,
                )
                if emit is not None:
                    emit("failed", name, attempt=attempt, error=error)
    return results


def run_all(
    names: Optional[Iterable[str]] = None,
    jobs: int = 1,
    fast: bool = False,
    cache_dir: Optional[Path] = None,
    config: CedarConfig = DEFAULT_CONFIG,
    collect_reports: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.25,
    stream: bool = False,
    telemetry=None,
) -> List[ExperimentResult]:
    """Run a set of experiments (default: every registered one).

    Cache hits are resolved in-process; the misses fan out across up to
    ``jobs`` worker processes (one process per experiment — a crash is
    contained to its artifact).  ``timeout_s`` bounds each experiment's
    wall clock (the worker is terminated past it; requires the worker
    path, so it forces process isolation even at ``jobs=1``), and each
    failure retries up to ``retries`` times with exponential backoff
    starting at ``retry_backoff_s``.

    ``telemetry`` (a :class:`~repro.monitor.telemetry.FleetTelemetry`)
    turns on fleet telemetry: every lifecycle transition is emitted as
    a schema-valid event (JSONL sink and/or in-process listener), and
    isolated workers heartbeat engine self-metrics over their pipes at
    ``telemetry.heartbeat_s``.  With heartbeats flowing, ``timeout_s``
    becomes a **no-heartbeat stall budget** — a worker making visible
    progress is never killed for being slow; a silent one dies after
    ``timeout_s`` seconds without progress.  With telemetry off the
    flat wall-clock timeout behaves exactly as before.

    Results come back in registry order regardless of completion order;
    failed experiments are *included*, with
    :attr:`ExperimentResult.error` set and empty output — callers get
    partial results, never an exception for one bad artifact.  With
    ``collect_reports`` every non-cached run is instrumented and its
    :class:`ExperimentResult` carries a RunReport dict (cache hits
    replay a stored report when the entry has one; entries without one
    are re-run).
    """
    selected = list(names) if names is not None else experiment_names()
    for name in selected:
        experiment(name)  # validate up front

    emit = telemetry.event if telemetry is not None else None
    heartbeat_s = telemetry.heartbeat_s if telemetry is not None else None

    results: Dict[str, ExperimentResult] = {}
    misses: List[str] = []
    for name in selected:
        exp = REGISTRY[name]
        kwargs = exp.arguments(fast)
        key = cache_key(name, kwargs, config, stream=stream)
        hit = (
            cache_lookup(
                cache_dir,
                name,
                key,
                legacy_key=cache_key(
                    name, kwargs, config, stream=stream,
                    version=LEGACY_CACHE_VERSION,
                ),
            )
            if cache_dir is not None
            else None
        )
        output = hit.entry.get("output") if hit is not None else None
        report = hit.entry.get("report") if hit is not None else None
        if output is not None and (not collect_reports or report is not None):
            results[name] = ExperimentResult(
                name,
                exp.title,
                output,
                0.0,
                cached=True,
                report=report if collect_reports else None,
            )
            if emit is not None:
                emit(
                    "cache_hit",
                    name,
                    key=key[:16],
                    shard=hit.shard,
                    verified=hit.verified,
                )
        else:
            misses.append(name)
            if emit is not None:
                emit("run_queued", name)

    if misses:
        if jobs > 1 or timeout_s is not None:
            results.update(
                _run_isolated(
                    misses,
                    jobs,
                    fast,
                    cache_dir,
                    config,
                    collect_reports,
                    timeout_s,
                    retries,
                    retry_backoff_s,
                    stream=stream,
                    emit=emit,
                    heartbeat_s=heartbeat_s,
                )
            )
        else:
            results.update(
                _run_inline(
                    misses,
                    fast,
                    cache_dir,
                    config,
                    collect_reports,
                    retries,
                    retry_backoff_s,
                    stream=stream,
                    emit=emit,
                )
            )

    return [results[name] for name in selected]


def render_all(results: List[ExperimentResult]) -> str:
    """Join experiment outputs the way ``python -m repro all`` always
    has; failed experiments contribute a one-line failure marker."""
    parts = []
    for result in results:
        if result.ok:
            parts.append(result.output)
        else:
            parts.append(f"[{result.name} FAILED: {result.error}]")
    return "\n\n".join(parts)
