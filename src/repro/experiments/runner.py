"""The experiment registry, result cache, and parallel driver.

Every artifact the reproduction can produce — the topology figures, the
six tables, the studies and ablations — is registered here as a named
:class:`Experiment`.  ``python -m repro run-all`` drives the registry:

* independent experiments fan out across worker processes
  (``--jobs N``);
* results are memoized on disk (``--cached``) keyed by a stable hash
  of (experiment name, arguments, machine configuration, cache
  version), so re-running with an unchanged configuration replays from
  the cache instead of re-simulating.

The cache key uses :meth:`~repro.core.config.CedarConfig.stable_hash`
— a cross-process content hash — **not** Python's salted ``hash()``,
so cache entries are valid across interpreter sessions.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.config import CedarConfig, DEFAULT_CONFIG

#: bump when renderer output formats change, invalidating old entries.
CACHE_VERSION = 2

#: default on-disk cache location (repo-/cwd-relative).
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# experiment execution functions (module-level: picklable for worker
# processes; imports deferred so the registry itself imports instantly)


def _exp_topology() -> str:
    from repro.experiments.fig1 import render_fig1

    return render_fig1()


def _exp_table1(a_strips: int = 2) -> str:
    from repro.experiments.table1 import render_table1, run_table1

    return render_table1(run_table1(a_strips=a_strips))


def _exp_table2(strips: int = 10) -> str:
    from repro.experiments.table2 import render_table2, run_table2

    return render_table2(run_table2(strips=strips))


def _exp_table3() -> str:
    from repro.experiments.table3 import render_table3, run_table3

    return render_table3(run_table3())


def _exp_table4() -> str:
    from repro.experiments.table4 import render_table4, run_table4

    return render_table4(run_table4())


def _exp_table5() -> str:
    from repro.experiments.table5 import render_table5, run_table5

    return render_table5(run_table5())


def _exp_table6() -> str:
    from repro.experiments.table6 import render_table6, run_table6

    return render_table6(run_table6())


def _exp_fig3() -> str:
    from repro.experiments.fig3 import render_fig3, run_fig3

    return render_fig3(run_fig3())


def _exp_ppt4() -> str:
    from repro.experiments.ppt4 import render_ppt4, run_ppt4

    return render_ppt4(run_ppt4())


def _exp_overheads() -> str:
    from repro.experiments.overheads import render_overheads, run_overheads

    return render_overheads(run_overheads())


def _exp_characterization() -> str:
    from repro.experiments.characterization import (
        render_characterization,
        run_characterization,
    )

    return render_characterization(run_characterization())


def _exp_scaling() -> str:
    from repro.experiments.scaling import render_scaling, run_scaling_study

    return render_scaling(run_scaling_study())


def _exp_permutations(rounds: int = 16) -> str:
    from repro.experiments.permutations import (
        render_permutations,
        run_permutation_study,
    )

    return render_permutations(run_permutation_study(rounds=rounds))


def _exp_multiprogramming() -> str:
    from repro.experiments.multiprogramming import (
        render_multiprogramming,
        run_multiprogramming_study,
    )

    return render_multiprogramming(run_multiprogramming_study())


def _exp_ablation_network(n_ces: int = 32) -> str:
    from repro.experiments.ablations import ablate_shared_network, render_ablation

    return render_ablation(
        "Ablation: one shared network vs Cedar's two",
        ablate_shared_network(n_ces=n_ces),
    )


def _exp_ablation_memory(n_ces: int = 32) -> str:
    from repro.experiments.ablations import ablate_memory_recovery, render_ablation

    return render_ablation(
        "Ablation: memory-module recovery time",
        ablate_memory_recovery(n_ces=n_ces),
    )


# ---------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class Experiment:
    """One registered artifact generator."""

    name: str
    title: str
    runner: Callable[..., str]
    kwargs: Dict[str, object] = field(default_factory=dict)
    #: overrides applied in ``--fast`` (smoke-size) mode.
    fast_kwargs: Optional[Dict[str, object]] = None

    def arguments(self, fast: bool = False) -> Dict[str, object]:
        if fast and self.fast_kwargs is not None:
            return {**self.kwargs, **self.fast_kwargs}
        return dict(self.kwargs)


REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.name in REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} already registered")
    REGISTRY[experiment.name] = experiment
    return experiment


def experiment(name: str) -> Experiment:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment {name!r}; have {', '.join(REGISTRY)}"
        ) from None


def experiment_names() -> List[str]:
    return list(REGISTRY)


register(Experiment("topology", "Figures 1-2: machine organization", _exp_topology))
register(
    Experiment(
        "table1",
        "Table 1: SAXPY memory hierarchy",
        _exp_table1,
        kwargs={"a_strips": 2},
        fast_kwargs={"a_strips": 1},
    )
)
register(
    Experiment(
        "table2",
        "Table 2: prefetch latency/interarrival",
        _exp_table2,
        kwargs={"strips": 10},
        fast_kwargs={"strips": 6},
    )
)
register(Experiment("table3", "Table 3: loop-scheduling costs", _exp_table3))
register(Experiment("table4", "Table 4: application optimizations", _exp_table4))
register(Experiment("table5", "Table 5: application performance", _exp_table5))
register(Experiment("table6", "Table 6: perfect-club summary", _exp_table6))
register(Experiment("fig3", "Figure 3: efficiency scatter", _exp_fig3))
register(Experiment("ppt4", "Section 4.4: scalability study", _exp_ppt4))
register(Experiment("overheads", "Section 3.2: runtime costs", _exp_overheads))
register(
    Experiment(
        "characterization", "Section 4.1: memory anchors", _exp_characterization
    )
)
register(Experiment("scaling", "Perfect-code scaling curves", _exp_scaling))
register(
    Experiment(
        "permutations",
        "Omega-network permutation study",
        _exp_permutations,
        kwargs={"rounds": 16},
        fast_kwargs={"rounds": 4},
    )
)
register(
    Experiment(
        "multiprogramming",
        "Single-user-mode justification",
        _exp_multiprogramming,
    )
)
register(
    Experiment(
        "ablation-network",
        "Ablation: shared vs dual networks",
        _exp_ablation_network,
        kwargs={"n_ces": 32},
        fast_kwargs={"n_ces": 8},
    )
)
register(
    Experiment(
        "ablation-memory",
        "Ablation: module recovery time",
        _exp_ablation_memory,
        kwargs={"n_ces": 32},
        fast_kwargs={"n_ces": 8},
    )
)


# ---------------------------------------------------------------------------
# cache


def cache_key(
    name: str, kwargs: Dict[str, object], config: CedarConfig = DEFAULT_CONFIG
) -> str:
    """Stable cache key: experiment identity + arguments + machine config."""
    import hashlib

    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "experiment": name,
            "kwargs": kwargs,
            "config": config.stable_hash(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_path(cache_dir: Path, name: str, key: str) -> Path:
    return cache_dir / f"{name}.{key[:16]}.json"


def cache_load_entry(cache_dir: Path, name: str, key: str) -> Optional[Dict]:
    """The full cache entry (output plus any stored run report)."""
    path = _cache_path(cache_dir, name, key)
    try:
        entry = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if entry.get("key") != key:
        return None
    return entry


def cache_load(cache_dir: Path, name: str, key: str) -> Optional[str]:
    entry = cache_load_entry(cache_dir, name, key)
    if entry is None:
        return None
    return entry.get("output")


def cache_store(
    cache_dir: Path,
    name: str,
    key: str,
    output: str,
    elapsed: float,
    report: Optional[Dict] = None,
) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    entry = {
        "key": key,
        "experiment": name,
        "output": output,
        "elapsed_s": round(elapsed, 3),
        "cache_version": CACHE_VERSION,
    }
    if report is not None:
        entry["report"] = report
    _cache_path(cache_dir, name, key).write_text(json.dumps(entry, indent=1))


# ---------------------------------------------------------------------------
# driver


@dataclass(frozen=True)
class ExperimentResult:
    name: str
    title: str
    output: str
    elapsed_s: float
    cached: bool
    #: RunReport dict when the run collected observability data.
    report: Optional[Dict] = None


def _execute(name: str, kwargs: Dict[str, object]) -> str:
    """Worker entry point: run one experiment to its rendered text."""
    return REGISTRY[name].runner(**kwargs)


def _execute_with_report(name: str, kwargs: Dict[str, object]) -> tuple:
    """Worker entry point for instrumented runs.

    Returns ``(output, machine_dicts, elapsed_s)``.  Elapsed time is
    measured here, inside the worker, so a report never charges an
    experiment for time it spent queued behind other work.  Kernel
    memoization is cleared first so every machine the experiment needs
    is actually built (and therefore monitored) inside the collection
    window — a worker process may have warm memo entries from an
    earlier experiment.
    """
    from repro.experiments.kernels_sim import _run_cached
    from repro.monitor.report import ReportCollector

    _run_cached.cache_clear()
    start = time.perf_counter()
    with ReportCollector() as collector:
        output = REGISTRY[name].runner(**kwargs)
    return output, collector.machine_dicts(), time.perf_counter() - start


def _build_report(
    name: str,
    kwargs: Dict[str, object],
    elapsed: float,
    cached: bool,
    machines: List[Dict],
) -> Dict:
    from repro.monitor.report import RunReport

    return RunReport(
        experiment=name,
        title=REGISTRY[name].title,
        kwargs=dict(kwargs),
        elapsed_s=elapsed,
        cached=cached,
        machines=machines,
    ).to_dict()


def run_experiment(
    name: str,
    fast: bool = False,
    cache_dir: Optional[Path] = None,
    config: CedarConfig = DEFAULT_CONFIG,
    collect_report: bool = False,
) -> ExperimentResult:
    """Run (or replay from cache) a single registered experiment."""
    exp = experiment(name)
    kwargs = exp.arguments(fast)
    key = cache_key(name, kwargs, config)
    if cache_dir is not None:
        entry = cache_load_entry(cache_dir, name, key)
        if entry is not None and entry.get("output") is not None:
            report = entry.get("report") if collect_report else None
            if not collect_report or report is not None:
                return ExperimentResult(
                    name, exp.title, entry["output"], 0.0, cached=True, report=report
                )
            # cached output but no stored report: fall through and re-run
    start = time.perf_counter()
    if collect_report:
        output, machines, elapsed = _execute_with_report(name, kwargs)
        report = _build_report(name, kwargs, elapsed, False, machines)
    else:
        output = _execute(name, kwargs)
        elapsed = time.perf_counter() - start
        report = None
    if cache_dir is not None:
        cache_store(cache_dir, name, key, output, elapsed, report=report)
    return ExperimentResult(name, exp.title, output, elapsed, cached=False, report=report)


def run_all(
    names: Optional[Iterable[str]] = None,
    jobs: int = 1,
    fast: bool = False,
    cache_dir: Optional[Path] = None,
    config: CedarConfig = DEFAULT_CONFIG,
    collect_reports: bool = False,
) -> List[ExperimentResult]:
    """Run a set of experiments (default: every registered one).

    Cache hits are resolved in-process; the misses fan out across
    ``jobs`` worker processes.  Results come back in registry order
    regardless of completion order.  With ``collect_reports`` every
    non-cached run is instrumented and its :class:`ExperimentResult`
    carries a RunReport dict (cache hits replay a stored report when
    the entry has one; entries without one are re-run).
    """
    selected = list(names) if names is not None else experiment_names()
    for name in selected:
        experiment(name)  # validate up front

    results: Dict[str, ExperimentResult] = {}
    misses: List[str] = []
    for name in selected:
        exp = REGISTRY[name]
        kwargs = exp.arguments(fast)
        key = cache_key(name, kwargs, config)
        entry = (
            cache_load_entry(cache_dir, name, key) if cache_dir is not None else None
        )
        hit = entry.get("output") if entry is not None else None
        report = entry.get("report") if entry is not None else None
        if hit is not None and (not collect_reports or report is not None):
            results[name] = ExperimentResult(
                name,
                exp.title,
                hit,
                0.0,
                cached=True,
                report=report if collect_reports else None,
            )
        else:
            misses.append(name)

    worker = _execute_with_report if collect_reports else _execute
    if misses and jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {}
            for name in misses:
                kwargs = REGISTRY[name].arguments(fast)
                futures[name] = (
                    pool.submit(worker, name, kwargs),
                    time.perf_counter(),
                    kwargs,
                )
            for name, (future, start, kwargs) in futures.items():
                outcome = future.result()
                if collect_reports:
                    output, machines, elapsed = outcome
                    report = _build_report(name, kwargs, elapsed, False, machines)
                else:
                    output, report = outcome, None
                    elapsed = time.perf_counter() - start
                if cache_dir is not None:
                    cache_store(
                        cache_dir,
                        name,
                        cache_key(name, kwargs, config),
                        output,
                        elapsed,
                        report=report,
                    )
                results[name] = ExperimentResult(
                    name,
                    REGISTRY[name].title,
                    output,
                    elapsed,
                    cached=False,
                    report=report,
                )
    else:
        for name in misses:
            results[name] = run_experiment(
                name, fast, cache_dir, config, collect_report=collect_reports
            )

    return [results[name] for name in selected]


def render_all(results: List[ExperimentResult]) -> str:
    """Join experiment outputs the way ``python -m repro all`` always has."""
    return "\n\n".join(result.output for result in results)
