"""Figures 1 and 2: the Cedar and cluster architecture diagrams.

These are structural figures; the reproduction builds the machine and
verifies/renders its topology: four 8-CE Alliant clusters, two
unidirectional two-stage 8x8-crossbar shuffle-exchange networks, 64 MB
of interleaved global memory with synchronization processors, per-CE
prefetch units, and the cluster-internal cache/memory/CCB structure.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine


def topology_summary(config: CedarConfig = CedarConfig()) -> Dict[str, object]:
    return CedarMachine(config).describe_topology()


def render_fig1(config: CedarConfig = CedarConfig()) -> str:
    info = topology_summary(config)
    clusters = int(info["clusters"])
    stage_desc = "x".join(str(r) for r in info["stage_radices"])
    cluster_boxes = "   ".join(f"[Cluster {i}: 8 CEs]" for i in range(clusters))
    return "\n".join(
        [
            "Figure 1: Cedar architecture (reconstructed from the live machine)",
            "",
            f"  {cluster_boxes}",
            "        |  (per-CE prefetch units)",
            f"  ==== forward network: {info['network_stages']}-stage "
            f"shuffle-exchange, {stage_desc} crossbars, 2-word port queues ====",
            f"  [ {info['memory_modules']} interleaved global memory modules, "
            f"{info['global_memory_mb']} MB, sync processor per module ]",
            f"  ==== reverse network: {info['network_stages']}-stage, "
            f"{stage_desc} ====",
            "",
            "Figure 2: cluster architecture",
            f"  8 CEs -- concurrency control bus; shared {info['cache_kb']} KB "
            "4-way interleaved write-back cache;",
            f"  {info['cluster_memory_mb']} MB cluster memory; IPs for I/O",
            "",
            f"  peak {info['peak_mflops']} MFLOPS "
            f"(effective {info['effective_peak_mflops']} after vector startup)",
        ]
    )
